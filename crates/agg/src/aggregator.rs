//! Fleet state: per-source frames, merged totals, alert dedup.
//!
//! An [`Aggregator`] is the in-memory model behind the `adcomp_agg`
//! daemon. Ingest is last-wins per source for metric frames (a frame is
//! full state, so replacing an older frame can never double-count),
//! exactly-once per `(source, epoch)` for drift alerts (a daemon that
//! dies between journaling an alert and pushing it re-pushes on resume;
//! the dedup set here is what turns that at-least-once delivery into
//! exactly-once observation), and a bounded ring for trace events.
//!
//! Rendering produces one Prometheus text document with every series
//! twice: per-source with a `source` label, and fleet-wide (the sum /
//! bucketwise merge across sources) without one — so a dashboard can
//! show both the fleet and any straggler from one scrape.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;

use adcomp_obs::trace::TraceEvent;
use adcomp_obs::RunReport;

use crate::telemetry::{AlertFrame, MetricsFrame, Telemetry};

/// A drift alert attributed to the source that pushed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetAlert {
    /// Pushing daemon's source name.
    pub source: String,
    /// Epoch the alert is for.
    pub epoch: u64,
    /// Ratios that crossed the four-fifths threshold.
    pub crossings: u32,
    /// Human-readable detail.
    pub detail: String,
}

#[derive(Default)]
struct SourceState {
    frame: MetricsFrame,
    pushes: u64,
    last_seq: u64,
}

#[derive(Default)]
struct Inner {
    sources: BTreeMap<String, SourceState>,
    alerts: Vec<FleetAlert>,
    alert_seen: BTreeSet<(String, u64)>,
    traces: VecDeque<TraceEvent>,
    pushes_total: u64,
    stale_pushes: u64,
    duplicate_alerts: u64,
    rejected: u64,
}

/// Capacity of the fleet trace ring.
pub const TRACE_RING_CAPACITY: usize = 8_192;

/// Thread-safe fleet telemetry state.
#[derive(Default)]
pub struct Aggregator {
    inner: Mutex<Inner>,
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Aggregator {
        Aggregator::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Ingests one pushed record. Returns `false` when the record was
    /// dropped as stale (metric frame with a sequence number at or
    /// below the source's last accepted one) or as a duplicate alert;
    /// the push is still acked either way — dedup is the point, not an
    /// error.
    pub fn ingest(&self, source: &str, seq: u64, telemetry: Telemetry) -> bool {
        let mut inner = self.lock();
        inner.pushes_total += 1;
        match telemetry {
            Telemetry::Metrics(frame) => {
                let state = inner.sources.entry(source.to_string()).or_default();
                state.pushes += 1;
                let stale = state.pushes > 1 && seq <= state.last_seq;
                if stale {
                    // A retried or reordered frame: the state we hold is
                    // at least as new.
                    inner.stale_pushes += 1;
                    return false;
                }
                state.last_seq = seq;
                state.frame = frame;
                true
            }
            Telemetry::Alert(AlertFrame {
                epoch,
                crossings,
                detail,
            }) => {
                if !inner.alert_seen.insert((source.to_string(), epoch)) {
                    inner.duplicate_alerts += 1;
                    return false;
                }
                inner.alerts.push(FleetAlert {
                    source: source.to_string(),
                    epoch,
                    crossings,
                    detail,
                });
                true
            }
            Telemetry::Trace(trace) => {
                for line in &trace.lines {
                    let Some(event) = TraceEvent::from_json(line) else {
                        inner.rejected += 1;
                        continue;
                    };
                    if inner.traces.len() == TRACE_RING_CAPACITY {
                        inner.traces.pop_front();
                    }
                    inner.traces.push_back(event);
                }
                true
            }
        }
    }

    /// The merged fleet frame: counters and gauges summed, histograms
    /// merged bucketwise, across every source.
    pub fn fleet(&self) -> MetricsFrame {
        let inner = self.lock();
        let mut fleet = MetricsFrame::default();
        for state in inner.sources.values() {
            fleet.merge(&state.frame);
        }
        fleet
    }

    /// Every alert accepted so far, in arrival order.
    pub fn alerts(&self) -> Vec<FleetAlert> {
        self.lock().alerts.clone()
    }

    /// The fleet trace ring's current contents, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.lock().traces.iter().cloned().collect()
    }

    /// Sources seen so far.
    pub fn sources(&self) -> Vec<String> {
        self.lock().sources.keys().cloned().collect()
    }

    /// Total pushes ingested (including stale and duplicate ones).
    pub fn pushes_total(&self) -> u64 {
        self.lock().pushes_total
    }

    /// One status line for the wire status probe.
    pub fn status_line(&self) -> String {
        let inner = self.lock();
        format!(
            "agg: sources={} pushes={} alerts={} stale={} duplicate_alerts={}",
            inner.sources.len(),
            inner.pushes_total,
            inner.alerts.len(),
            inner.stale_pushes,
            inner.duplicate_alerts,
        )
    }

    /// The whole fleet as one Prometheus text document: per-source
    /// series labelled `source="…"`, fleet series unlabelled, plus the
    /// aggregator's own meta-series.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.lock();
        let mut out = String::new();
        let mut typed: BTreeSet<String> = BTreeSet::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if typed.insert(name.to_string()) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
            }
        };

        // Fleet totals first — the series a dashboard scrapes.
        let mut fleet = MetricsFrame::default();
        for state in inner.sources.values() {
            fleet.merge(&state.frame);
        }
        let mut render_frame = |out: &mut String, frame: &MetricsFrame, source: Option<&str>| {
            for (key, value) in &frame.counters {
                type_line(out, &key.name, "counter");
                let series = match source {
                    Some(s) => key.render_with(("source", s)),
                    None => key.render(),
                };
                let _ = writeln!(out, "{series} {value}");
            }
            for (key, value) in &frame.gauges {
                type_line(out, &key.name, "gauge");
                let series = match source {
                    Some(s) => key.render_with(("source", s)),
                    None => key.render(),
                };
                let _ = writeln!(out, "{series} {value}");
            }
            for (key, data) in &frame.histograms {
                type_line(out, &key.name, "histogram");
                let bucket_key = adcomp_obs::metrics::MetricKey {
                    name: format!("{}_bucket", key.name),
                    labels: match source {
                        Some(s) => {
                            let mut labels = key.labels.clone();
                            labels.push(("source".to_string(), s.to_string()));
                            labels
                        }
                        None => key.labels.clone(),
                    },
                };
                for (bound, cum) in data.cumulative() {
                    let le = match bound {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    let _ = writeln!(out, "{} {cum}", bucket_key.render_with(("le", &le)));
                }
                let series = match source {
                    Some(s) => key.render_with(("source", s)),
                    None => key.render(),
                };
                let (name, labels) = match series.split_once('{') {
                    Some((n, l)) => (n.to_string(), format!("{{{l}")),
                    None => (series.clone(), String::new()),
                };
                let _ = writeln!(out, "{name}_sum{labels} {}", data.sum);
                let _ = writeln!(out, "{name}_count{labels} {}", data.count);
            }
        };
        render_frame(&mut out, &fleet, None);
        for (source, state) in &inner.sources {
            render_frame(&mut out, &state.frame, Some(source));
        }

        // Aggregator meta-series.
        let _ = writeln!(out, "# TYPE adcomp_agg_sources gauge");
        let _ = writeln!(out, "adcomp_agg_sources {}", inner.sources.len());
        let _ = writeln!(out, "# TYPE adcomp_agg_pushes_total counter");
        let _ = writeln!(out, "adcomp_agg_pushes_total {}", inner.pushes_total);
        let _ = writeln!(out, "# TYPE adcomp_agg_alerts_total counter");
        let _ = writeln!(out, "adcomp_agg_alerts_total {}", inner.alerts.len());
        let _ = writeln!(out, "# TYPE adcomp_agg_stale_pushes_total counter");
        let _ = writeln!(out, "adcomp_agg_stale_pushes_total {}", inner.stale_pushes);
        let _ = writeln!(out, "# TYPE adcomp_agg_duplicate_alerts_total counter");
        let _ = writeln!(
            out,
            "adcomp_agg_duplicate_alerts_total {}",
            inner.duplicate_alerts
        );
        for alert in &inner.alerts {
            let _ = writeln!(
                out,
                "adcomp_agg_alert{{source=\"{}\",epoch=\"{}\"}} {}",
                alert.source, alert.epoch, alert.crossings
            );
        }
        out
    }

    /// The fleet as a human-readable [`RunReport`]: one note per source,
    /// a degradation per alert.
    pub fn report(&self) -> RunReport {
        let inner = self.lock();
        let mut report = RunReport::new("fleet telemetry");
        for (source, state) in &inner.sources {
            report.note(format!(
                "{source}: {} push(es), {} series",
                state.pushes,
                state.frame.counters.len()
                    + state.frame.gauges.len()
                    + state.frame.histograms.len()
            ));
        }
        for alert in &inner.alerts {
            report.degradation(format!("[{}] {}", alert.source, alert.detail));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_obs::metrics::MetricKey;

    fn frame(epochs: u64) -> Telemetry {
        Telemetry::Metrics(MetricsFrame {
            counters: vec![(MetricKey::new("adcomp_serve_epochs_total", &[]), epochs)],
            ..MetricsFrame::default()
        })
    }

    #[test]
    fn fleet_counters_sum_across_sources() {
        let agg = Aggregator::new();
        assert!(agg.ingest("a", 1, frame(3)));
        assert!(agg.ingest("b", 1, frame(4)));
        // A newer frame from `a` replaces, never adds.
        assert!(agg.ingest("a", 2, frame(5)));
        assert_eq!(agg.fleet().counter("adcomp_serve_epochs_total"), 9);
        let text = agg.render_prometheus();
        assert!(text.contains("adcomp_serve_epochs_total 9"), "{text}");
        assert!(
            text.contains("adcomp_serve_epochs_total{source=\"a\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("adcomp_serve_epochs_total{source=\"b\"} 4"),
            "{text}"
        );
    }

    #[test]
    fn stale_frames_are_dropped_not_merged() {
        let agg = Aggregator::new();
        assert!(agg.ingest("a", 5, frame(10)));
        // A retry of an older push arrives late.
        assert!(!agg.ingest("a", 4, frame(8)));
        assert_eq!(agg.fleet().counter("adcomp_serve_epochs_total"), 10);
        assert!(agg
            .render_prometheus()
            .contains("adcomp_agg_stale_pushes_total 1"));
    }

    #[test]
    fn alerts_dedup_by_source_and_epoch() {
        let agg = Aggregator::new();
        let alert = Telemetry::Alert(AlertFrame {
            epoch: 3,
            crossings: 1,
            detail: "epoch 3 crossed".into(),
        });
        assert!(agg.ingest("a", 1, alert.clone()));
        // Redelivery after a daemon resume: observed exactly once.
        assert!(!agg.ingest("a", 2, alert.clone()));
        // The same epoch from a different daemon is a different alert.
        assert!(agg.ingest("b", 1, alert));
        let alerts = agg.alerts();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].source, "a");
        assert_eq!(alerts[1].source, "b");
        assert!(agg
            .render_prometheus()
            .contains("adcomp_agg_duplicate_alerts_total 1"));
    }

    #[test]
    fn trace_ring_is_bounded_and_parses_lines() {
        let agg = Aggregator::new();
        let lines: Vec<String> = (0..4)
            .map(|i| format!("{{\"seq\":{i},\"ts_us\":1,\"kind\":\"event\",\"name\":\"x\"}}"))
            .collect();
        assert!(agg.ingest(
            "a",
            1,
            Telemetry::Trace(crate::telemetry::TraceFrame { lines })
        ));
        let events = agg.trace_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].seq, 3);
    }
}
