//! The fleet telemetry aggregator daemon (and its smoke-test pusher).
//!
//! Serve mode (default) binds the wire sink and answers pushes and
//! scrapes until killed — or, with `--expect N`, until `N` pushes have
//! been ingested, then prints the merged Prometheus document and exits
//! (the CI smoke test's rendezvous).
//!
//! Push mode (`adcomp_agg push …`) sends telemetry from *this* process
//! through the real [`TelemetryPusher`] machinery, so a shell script
//! can stand up a multi-process fleet without writing Rust:
//!
//! ```text
//! adcomp_agg --listen 127.0.0.1:7171 --expect 3 &
//! adcomp_agg push --to 127.0.0.1:7171 --source a --counter adcomp_serve_epochs_total=3 --alert 5:2
//! adcomp_agg push --to 127.0.0.1:7171 --source b --counter adcomp_serve_epochs_total=4
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use adcomp_agg::{
    AggService, Aggregator, AlertFrame, MetricsFrame, PusherConfig, Telemetry, TelemetryPusher,
};
use adcomp_obs::metrics::MetricKey;
use adcomp_wire::{serve_service, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: adcomp_agg [--listen ADDR] [--expect N]\n\
         \x20      adcomp_agg push --to ADDR --source NAME \
         [--counter NAME=V]... [--alert EPOCH[:CROSSINGS]]... [--repeat K]"
    );
    ExitCode::FAILURE
}

fn serve_mode(args: &[String]) -> ExitCode {
    let mut listen = "127.0.0.1:0".to_string();
    let mut expect: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => match it.next() {
                Some(addr) => listen = addr.clone(),
                None => return usage(),
            },
            "--expect" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => expect = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let agg = Arc::new(Aggregator::new());
    let handle = match serve_service(
        Arc::new(AggService::new(agg.clone())),
        listen.as_str(),
        ServerConfig::default(),
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("adcomp_agg: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("adcomp_agg: listening on {}", handle.addr());
    match expect {
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        Some(n) => {
            while agg.pushes_total() < n {
                std::thread::sleep(Duration::from_millis(10));
            }
            print!("{}", agg.render_prometheus());
            handle.shutdown();
            ExitCode::SUCCESS
        }
    }
}

fn push_mode(args: &[String]) -> ExitCode {
    let mut to = None;
    let mut source = None;
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut alerts: Vec<(u64, u32)> = Vec::new();
    let mut repeat = 1u32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--to" => to = it.next().cloned(),
            "--source" => source = it.next().cloned(),
            "--counter" => match it.next().and_then(|spec| {
                let (name, value) = spec.split_once('=')?;
                Some((name.to_string(), value.parse().ok()?))
            }) {
                Some(pair) => counters.push(pair),
                None => return usage(),
            },
            "--alert" => match it.next().map(|spec| match spec.split_once(':') {
                Some((epoch, crossings)) => {
                    (epoch.parse().unwrap_or(0), crossings.parse().unwrap_or(1))
                }
                None => (spec.parse().unwrap_or(0), 1),
            }) {
                Some(pair) => alerts.push(pair),
                None => return usage(),
            },
            "--repeat" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => repeat = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(to), Some(source)) = (to, source) else {
        return usage();
    };
    let pusher = TelemetryPusher::start(PusherConfig::new(to, source));
    for _ in 0..repeat.max(1) {
        if !counters.is_empty() {
            pusher.push(Telemetry::Metrics(MetricsFrame {
                counters: counters
                    .iter()
                    .map(|(name, value)| (MetricKey::new(name, &[]), *value))
                    .collect(),
                ..MetricsFrame::default()
            }));
        }
        for (epoch, crossings) in &alerts {
            pusher.push(Telemetry::Alert(AlertFrame {
                epoch: *epoch,
                crossings: *crossings,
                detail: format!("epoch {epoch}: {crossings} four-fifths crossing(s)"),
            }));
        }
    }
    if !pusher.flush(Duration::from_secs(10)) || pusher.failed() > 0 {
        eprintln!("adcomp_agg push: delivery failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("push") => push_mode(&args[1..]),
        Some("--help" | "-h") => usage(),
        _ => serve_mode(&args),
    }
}
