//! Live terminal dashboard over a fleet aggregator (or any process
//! answering `Request::Metrics`).
//!
//! ```text
//! adcomp_top --scrape 127.0.0.1:7171 [--interval-ms 1000] [--frames N]
//! ```
//!
//! Scrapes the target's Prometheus text over the audit wire protocol,
//! folds it through [`Dashboard`], and redraws. `--frames N` renders N
//! frames then exits (CI and demos); the default runs until killed.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use adcomp_agg::Dashboard;
use adcomp_obs::MonotonicClock;
use adcomp_wire::Client;

fn usage() -> ExitCode {
    eprintln!("usage: adcomp_top --scrape ADDR [--interval-ms MS] [--frames N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut interval = Duration::from_millis(1000);
    let mut frames: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scrape" => addr = it.next().cloned(),
            "--interval-ms" => match it.next().and_then(|n| n.parse().ok()) {
                Some(ms) => interval = Duration::from_millis(ms),
                None => return usage(),
            },
            "--frames" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => frames = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        return usage();
    };
    let client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("adcomp_top: cannot reach {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut dashboard = Dashboard::new(Arc::new(MonotonicClock::new()));
    let mut rendered = 0u64;
    loop {
        match client.metrics() {
            Ok(text) => {
                let frame = dashboard.observe(&text);
                // Clear and redraw only on a tty-ish endless run; with
                // --frames the frames just append (pipeable output).
                if frames.is_none() {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{frame}");
            }
            Err(e) => eprintln!("adcomp_top: scrape failed: {e}"),
        }
        rendered += 1;
        if let Some(n) = frames {
            if rendered >= n {
                return ExitCode::SUCCESS;
            }
        }
        std::thread::sleep(interval);
    }
}
