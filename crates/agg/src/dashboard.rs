//! The `adcomp_top` view: a deterministic terminal dashboard over
//! Prometheus text.
//!
//! [`Scrape::parse`] is a minimal parser for the exposition format this
//! workspace renders (`name{label="v",…} value` lines, `# TYPE`
//! comments) — enough to read back what `render_prometheus` wrote,
//! not a general Prometheus client. [`Dashboard`] folds successive
//! scrapes into a rendered frame: fleet rates (epochs/s, lease churn)
//! from counter deltas against the injected [`Clock`], latency
//! quantiles (p50/p95/p99) recovered from histogram buckets, and the
//! alert roll. Time is injected, so tests drive frames by hand and the
//! rendering is byte-deterministic for a given scrape sequence.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::Clock;

/// One parsed sample: name, sorted labels, value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// Sample value (Prometheus values are floats).
    pub value: f64,
}

impl Sample {
    /// The label's value, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed Prometheus text document.
#[derive(Clone, Debug, Default)]
pub struct Scrape {
    /// Every sample line, in document order.
    pub samples: Vec<Sample>,
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"")?;
        let key = rest[..eq].trim_start_matches(',').to_string();
        rest = &rest[eq + 2..];
        // Values this workspace writes never contain escaped quotes.
        let end = rest.find('"')?;
        labels.push((key, rest[..end].to_string()));
        rest = &rest[end + 1..];
    }
    Some(labels)
}

impl Scrape {
    /// Parses an exposition document, skipping comments and anything
    /// malformed.
    pub fn parse(text: &str) -> Scrape {
        let mut samples = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<f64>() else {
                continue;
            };
            let (name, labels) = match series.split_once('{') {
                Some((name, body)) => {
                    let body = body.strip_suffix('}').unwrap_or(body);
                    let Some(labels) = parse_labels(body) else {
                        continue;
                    };
                    (name.to_string(), labels)
                }
                None => (series.to_string(), Vec::new()),
            };
            samples.push(Sample {
                name,
                labels,
                value,
            });
        }
        Scrape { samples }
    }

    /// The value of the unlabelled (fleet) series `name`, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// Sum of every series named `name`.
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Per-series latency quantiles recovered from `<name>_bucket`
    /// cumulative counts: `(series label, p50, p95, p99, count)`,
    /// sorted by series label.
    pub fn quantiles(&self, name: &str) -> Vec<(String, u64, u64, u64, u64)> {
        let bucket_name = format!("{name}_bucket");
        // Group by the label set minus `le`.
        let mut groups: BTreeMap<String, Vec<(Option<u64>, f64)>> = BTreeMap::new();
        for sample in self.samples.iter().filter(|s| s.name == bucket_name) {
            let le = match sample.label("le") {
                Some("+Inf") => None,
                Some(b) => match b.parse::<u64>() {
                    Ok(b) => Some(b),
                    Err(_) => continue,
                },
                None => continue,
            };
            let series: Vec<String> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            groups
                .entry(series.join(","))
                .or_default()
                .push((le, sample.value));
        }
        let mut out = Vec::new();
        for (series, mut buckets) in groups {
            buckets.sort_by_key(|(le, _)| le.unwrap_or(u64::MAX));
            let total = buckets.last().map(|(_, c)| *c).unwrap_or(0.0);
            if total <= 0.0 {
                continue;
            }
            let q = |q: f64| -> u64 {
                let rank = total * q;
                for (le, cum) in &buckets {
                    if *cum >= rank {
                        // +Inf reports the top finite bound (saturated).
                        return le.unwrap_or_else(|| {
                            buckets
                                .iter()
                                .rev()
                                .find_map(|(le, _)| *le)
                                .unwrap_or(u64::MAX)
                        });
                    }
                }
                u64::MAX
            };
            out.push((series, q(0.50), q(0.95), q(0.99), total as u64));
        }
        out
    }
}

/// Folds successive scrapes into rendered dashboard frames.
pub struct Dashboard {
    clock: Arc<dyn Clock>,
    last: Option<(Duration, Scrape)>,
}

/// Counter families shown as per-second rates, `(label, metric)`.
const RATES: &[(&str, &str)] = &[
    ("epochs/s", "adcomp_serve_epochs_total"),
    ("lease churn/s", "adcomp_sched_lease_expired_total"),
    ("requeues/s", "adcomp_sched_units_requeued"),
    ("pushes/s", "adcomp_agg_pushes_total"),
];

/// Histogram families shown with quantiles.
const LATENCIES: &[&str] = &[
    "adcomp_wire_rtt_us",
    "adcomp_sched_unit_latency_us",
    "adcomp_engine_batch_latency_us",
];

impl Dashboard {
    /// A dashboard on `clock`; the first frame has no rates (no delta
    /// yet).
    pub fn new(clock: Arc<dyn Clock>) -> Dashboard {
        Dashboard { clock, last: None }
    }

    /// Ingests one scrape and renders the frame it implies.
    pub fn observe(&mut self, text: &str) -> String {
        use std::fmt::Write as _;
        let now = self.clock.now();
        let scrape = Scrape::parse(text);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "adcomp top — fleet @ {:>8.1}s   sources={} pushes={} alerts={}",
            now.as_secs_f64(),
            scrape.value("adcomp_agg_sources").unwrap_or(0.0) as u64,
            scrape.value("adcomp_agg_pushes_total").unwrap_or(0.0) as u64,
            scrape.value("adcomp_agg_alerts_total").unwrap_or(0.0) as u64,
        );

        let _ = writeln!(out, "── rates ──");
        for (label, metric) in RATES {
            let current = scrape.value(metric).unwrap_or(0.0);
            let rate = match &self.last {
                Some((at, prev)) if now > *at => {
                    let dt = (now - *at).as_secs_f64();
                    (current - prev.value(metric).unwrap_or(0.0)).max(0.0) / dt
                }
                _ => 0.0,
            };
            let _ = writeln!(out, "  {label:<16} {rate:>10.2}   (total {current:.0})");
        }

        let _ = writeln!(out, "── latency (µs) ──");
        let mut any = false;
        for family in LATENCIES {
            for (series, p50, p95, p99, count) in scrape.quantiles(family) {
                let tag = if series.is_empty() {
                    format!("{family} (fleet)")
                } else {
                    format!("{family}{{{series}}}")
                };
                let _ = writeln!(
                    out,
                    "  {tag:<52} p50≤{p50:<8} p95≤{p95:<8} p99≤{p99:<8} n={count}"
                );
                any = true;
            }
        }
        if !any {
            let _ = writeln!(out, "  (no latency histograms yet)");
        }

        let alerts: Vec<&Sample> = scrape
            .samples
            .iter()
            .filter(|s| s.name == "adcomp_agg_alert")
            .collect();
        if !alerts.is_empty() {
            let _ = writeln!(out, "── four-fifths alerts ──");
            for alert in alerts {
                let _ = writeln!(
                    out,
                    "  [{}] epoch {}: {} crossing(s)",
                    alert.label("source").unwrap_or("?"),
                    alert.label("epoch").unwrap_or("?"),
                    alert.value as u64,
                );
            }
        }

        self.last = Some((now, scrape));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_obs::ManualClock;

    const FRAME_A: &str = "\
# TYPE adcomp_serve_epochs_total counter
adcomp_serve_epochs_total 4
adcomp_serve_epochs_total{source=\"a\"} 4
# TYPE adcomp_wire_rtt_us histogram
adcomp_wire_rtt_us_bucket{le=\"100\"} 6
adcomp_wire_rtt_us_bucket{le=\"1000\"} 9
adcomp_wire_rtt_us_bucket{le=\"+Inf\"} 10
adcomp_wire_rtt_us_sum 4000
adcomp_wire_rtt_us_count 10
adcomp_agg_sources 1
adcomp_agg_pushes_total 2
adcomp_agg_alerts_total 1
adcomp_agg_alert{source=\"a\",epoch=\"3\"} 2
";

    const FRAME_B: &str = "\
adcomp_serve_epochs_total 10
adcomp_agg_sources 1
adcomp_agg_pushes_total 4
adcomp_agg_alerts_total 1
";

    #[test]
    fn scrape_parses_labels_and_values() {
        let scrape = Scrape::parse(FRAME_A);
        assert_eq!(scrape.value("adcomp_serve_epochs_total"), Some(4.0));
        assert_eq!(scrape.sum("adcomp_serve_epochs_total"), 8.0);
        let alert = scrape
            .samples
            .iter()
            .find(|s| s.name == "adcomp_agg_alert")
            .unwrap();
        assert_eq!(alert.label("source"), Some("a"));
        assert_eq!(alert.label("epoch"), Some("3"));
    }

    #[test]
    fn quantiles_come_from_buckets() {
        let scrape = Scrape::parse(FRAME_A);
        let q = scrape.quantiles("adcomp_wire_rtt_us");
        assert_eq!(q.len(), 1);
        let (series, p50, p95, p99, count) = &q[0];
        assert_eq!(series, "");
        assert_eq!(*p50, 100); // rank 5 of 10 falls in the first bucket
        assert_eq!(*p95, 1000); // rank 9.5 needs the +Inf bucket? no: cum 9 < 9.5 → +Inf → top finite
        assert_eq!(*p99, 1000);
        assert_eq!(*count, 10);
    }

    #[test]
    fn frames_are_deterministic_and_rates_use_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let mut dash = Dashboard::new(clock.clone());
        let first = dash.observe(FRAME_A);
        assert!(first.contains("epochs/s"), "{first}");
        assert!(first.contains("p50≤100"), "{first}");
        assert!(first.contains("[a] epoch 3: 2 crossing(s)"), "{first}");

        clock.advance(Duration::from_secs(2));
        let second = dash.observe(FRAME_B);
        // (10 - 4) epochs over 2 s.
        assert!(second.contains("3.00"), "{second}");

        // Same scrape sequence, same clock → byte-identical frames.
        let clock2 = Arc::new(ManualClock::new());
        let mut dash2 = Dashboard::new(clock2.clone());
        let first2 = dash2.observe(FRAME_A);
        clock2.advance(Duration::from_secs(2));
        let second2 = dash2.observe(FRAME_B);
        assert_eq!(first, first2);
        assert_eq!(second, second2);
    }
}
