//! Push-based fleet telemetry aggregation.
//!
//! A continuous-audit fleet is many daemons in many processes; this
//! crate is where their telemetry converges. Each daemon runs a
//! [`TelemetryPusher`] — a bounded queue draining through a background
//! `adcomp-wire` client, so the audit hot path *never* blocks on
//! telemetry (overflow drops and counts) — pushing
//! [`Telemetry`] records: full [`MetricsFrame`] snapshots (mergeable
//! histograms included), drift [`AlertFrame`]s, and trace-event
//! batches. The `adcomp_agg` daemon receives them through
//! [`AggService`] on the ordinary wire server, folds them in an
//! [`Aggregator`] (last-wins per source for metric state, exactly-once
//! per `(source, epoch)` for alerts), and renders one combined
//! Prometheus document: per-source series labelled `source="…"` plus
//! fleet-wide merged totals.
//!
//! [`Dashboard`] (the `adcomp_top` binary) scrapes that document and
//! renders a live terminal view — rates, histogram quantiles, the
//! alert roll — off an injected [`Clock`](adcomp_obs::Clock), so its
//! frames are deterministic under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod dashboard;
pub mod push;
pub mod sink;
pub mod telemetry;

pub use aggregator::{Aggregator, FleetAlert};
pub use dashboard::{Dashboard, Sample, Scrape};
pub use push::{PusherConfig, TelemetryPusher};
pub use sink::AggService;
pub use telemetry::{AlertFrame, MetricsFrame, Telemetry, TraceFrame};
