//! The push side: a never-blocking telemetry exporter.
//!
//! [`TelemetryPusher`] sits between an audit daemon's hot path and the
//! aggregator. [`TelemetryPusher::push`] enqueues onto a *bounded*
//! channel with `try_send` — when the queue is full the record is
//! dropped and `adcomp_agg_push_dropped_total` is incremented, but the
//! caller never waits. A background thread drains the queue, lazily
//! connects an `adcomp-wire` [`Client`] (inheriting its reconnect,
//! retry-with-backoff, and circuit-breaker machinery), and pushes each
//! record as a `Request::TelemetryPush` frame.
//!
//! Push sequence numbers start from a wall-clock-derived base, so a
//! restarted daemon's frames outrank its previous incarnation's at the
//! aggregator (which keeps the *latest* frame per source) instead of
//! being dropped as stale replays.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use adcomp_obs::metrics::{Counter, Registry};
use adcomp_wire::{to_bytes, Client, ClientConfig};
use crossbeam::channel::{self, TrySendError};

use crate::telemetry::Telemetry;

/// Tuning for a [`TelemetryPusher`].
#[derive(Clone, Debug)]
pub struct PusherConfig {
    /// Aggregator sink address (`host:port`).
    pub addr: String,
    /// Source name attached to every push (one per daemon).
    pub source: String,
    /// Bounded queue capacity; overflow drops, never blocks.
    pub capacity: usize,
    /// Wire client tuning (timeouts, retry schedule, breaker).
    pub client: ClientConfig,
}

impl PusherConfig {
    /// Defaults: a 64-record queue and the stock client policy.
    pub fn new(addr: impl Into<String>, source: impl Into<String>) -> PusherConfig {
        PusherConfig {
            addr: addr.into(),
            source: source.into(),
            capacity: 64,
            client: ClientConfig::default(),
        }
    }
}

/// Background telemetry exporter; see the module docs.
pub struct TelemetryPusher {
    tx: Option<channel::Sender<Telemetry>>,
    pending: Arc<AtomicU64>,
    delivered: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
    dropped: Arc<Counter>,
    handle: Option<JoinHandle<()>>,
    source: String,
}

impl TelemetryPusher {
    /// Starts the exporter thread. Connection to the aggregator is
    /// lazy: a sink that is down costs nothing until a push is queued,
    /// and failed deliveries count rather than crash.
    pub fn start(config: PusherConfig) -> TelemetryPusher {
        let (tx, rx) = channel::bounded::<Telemetry>(config.capacity.max(1));
        let pending = Arc::new(AtomicU64::new(0));
        let delivered = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let source = config.source.clone();
        let worker = Worker {
            rx,
            config,
            pending: pending.clone(),
            delivered: delivered.clone(),
            failed: failed.clone(),
        };
        let handle = std::thread::Builder::new()
            .name("adcomp-telemetry-push".into())
            .spawn(move || worker.run())
            .expect("spawn telemetry pusher");
        TelemetryPusher {
            tx: Some(tx),
            pending,
            delivered,
            failed,
            dropped: Registry::global().counter("adcomp_agg_push_dropped_total"),
            handle: Some(handle),
            source,
        }
    }

    /// The source name pushes are attributed to.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Enqueues one record without ever blocking. Returns `false` (and
    /// bumps the drop counter) when the queue is full or the exporter
    /// has shut down.
    pub fn push(&self, telemetry: Telemetry) -> bool {
        let Some(tx) = &self.tx else {
            return false;
        };
        // Count before handing over so `flush` never observes a gap.
        self.pending.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(telemetry) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.dropped.inc();
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                false
            }
        }
    }

    /// Waits (bounded by `timeout`) until every queued record has been
    /// delivered or given up on. Returns `true` when the queue drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.pending.load(Ordering::Acquire) > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Records delivered to the aggregator so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Acquire)
    }

    /// Records given up on (sink unreachable through the client's whole
    /// retry schedule).
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Acquire)
    }

    /// Drains the queue and joins the exporter thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryPusher {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

struct Worker {
    rx: channel::Receiver<Telemetry>,
    config: PusherConfig,
    pending: Arc<AtomicU64>,
    delivered: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
}

impl Worker {
    fn run(self) {
        let mut client: Option<Client> = None;
        // Outrank the previous incarnation's frames at the aggregator.
        let mut seq = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(1);
        while let Ok(telemetry) = self.rx.recv() {
            seq += 1;
            let payload = to_bytes(&telemetry);
            let mut ok = false;
            // Two rounds: if a held connection went bad, reconnect once
            // and retry — the client itself retries transport errors
            // with backoff inside each attempt.
            for _ in 0..2 {
                if client.is_none() {
                    client = Client::connect_with(&self.config.addr, self.config.client.clone())
                        .map_err(|e| {
                            adcomp_obs::warn!(
                                "telemetry push: cannot reach {} ({e})",
                                self.config.addr
                            );
                        })
                        .ok();
                }
                let Some(c) = &client else { break };
                match c.telemetry_push(&self.config.source, seq, payload.clone()) {
                    Ok(_) => {
                        ok = true;
                        break;
                    }
                    Err(e) => {
                        adcomp_obs::warn!("telemetry push to {} failed: {e}", self.config.addr);
                        client = None;
                    }
                }
            }
            if ok {
                self.delivered.fetch_add(1, Ordering::AcqRel);
            } else {
                self.failed.fetch_add(1, Ordering::AcqRel);
            }
            self.pending.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use crate::sink::AggService;
    use crate::telemetry::{AlertFrame, MetricsFrame};
    use adcomp_obs::metrics::MetricKey;
    use adcomp_wire::{serve_service, ClientConfig, ServerConfig};

    fn frame(n: u64) -> Telemetry {
        Telemetry::Metrics(MetricsFrame {
            counters: vec![(MetricKey::new("pushed", &[]), n)],
            ..MetricsFrame::default()
        })
    }

    #[test]
    fn pushes_reach_the_aggregator_over_the_wire() {
        let agg = Arc::new(Aggregator::new());
        let handle = serve_service(
            Arc::new(AggService::new(agg.clone())),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap();
        let pusher = TelemetryPusher::start(PusherConfig::new(handle.addr().to_string(), "unit"));
        assert!(pusher.push(frame(7)));
        assert!(pusher.push(Telemetry::Alert(AlertFrame {
            epoch: 0,
            crossings: 1,
            detail: "x".into(),
        })));
        assert!(pusher.flush(Duration::from_secs(5)));
        assert_eq!(pusher.delivered(), 2);
        assert_eq!(pusher.failed(), 0);
        assert_eq!(agg.fleet().counter("pushed"), 7);
        assert_eq!(agg.alerts().len(), 1);
        pusher.shutdown();
        handle.shutdown();
    }

    #[test]
    fn overflow_drops_without_blocking() {
        // A listener that never accepts: the worker's connect lands in
        // the kernel backlog and its first push blocks on the io
        // timeout, so the 2-slot queue fills deterministically.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut cfg = PusherConfig::new(addr.to_string(), "unit");
        cfg.capacity = 2;
        cfg.client = ClientConfig::fast();
        cfg.client.io_timeout = Some(Duration::from_millis(100));
        cfg.client.retry.max_retries = 0;
        let pusher = TelemetryPusher::start(cfg);
        let before = Registry::global()
            .counter("adcomp_agg_push_dropped_total")
            .get();
        let mut dropped = 0;
        let started = std::time::Instant::now();
        for i in 0..64 {
            if !pusher.push(frame(i)) {
                dropped += 1;
            }
        }
        // try_send never blocks: 64 pushes complete quickly even with a
        // dead sink.
        assert!(started.elapsed() < Duration::from_secs(2));
        assert!(dropped > 0, "a 2-slot queue must overflow");
        let after = Registry::global()
            .counter("adcomp_agg_push_dropped_total")
            .get();
        assert!(after >= before + dropped);
        pusher.shutdown();
    }
}
