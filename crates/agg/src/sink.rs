//! The aggregator's wire-facing sink.
//!
//! [`AggService`] implements [`WireService`] so the aggregator rides
//! the same `adcomp-wire` server (draining shutdown, rate limiting,
//! per-connection executors) as every other daemon in the stack:
//!
//! * `Request::TelemetryPush` — decode the opaque payload as a
//!   [`Telemetry`](crate::telemetry::Telemetry) record, ingest, ack by
//!   sequence number (an ack for a deduplicated record is still an ack:
//!   the pusher must stop retrying it);
//! * `Request::Metrics` — the combined fleet Prometheus text;
//! * `Request::Status` — a one-line health summary.
//!
//! Everything else is a `BadRequest`; the aggregator is not a platform.

use std::sync::Arc;

use adcomp_wire::{from_bytes, ErrorCode, Request, Response, WireService};

use crate::aggregator::Aggregator;
use crate::telemetry::Telemetry;

/// [`WireService`] exposing an [`Aggregator`] as a push sink.
pub struct AggService {
    agg: Arc<Aggregator>,
}

impl AggService {
    /// A service ingesting into `agg`.
    pub fn new(agg: Arc<Aggregator>) -> AggService {
        AggService { agg }
    }

    /// The shared aggregator state.
    pub fn aggregator(&self) -> Arc<Aggregator> {
        self.agg.clone()
    }
}

impl WireService for AggService {
    fn handle(&self, request: Request) -> Response {
        match request {
            Request::TelemetryPush {
                source,
                seq,
                payload,
            } => match from_bytes::<Telemetry>(&payload) {
                Ok(telemetry) => {
                    self.agg.ingest(&source, seq, telemetry);
                    Response::TelemetryAck { seq }
                }
                Err(e) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("undecodable telemetry payload: {e}"),
                    retry_after: None,
                },
            },
            Request::Metrics => Response::MetricsText {
                text: self.agg.render_prometheus(),
            },
            Request::Status => Response::StatusReport {
                healthy: true,
                body: self.agg.status_line(),
            },
            _ => Response::Error {
                code: ErrorCode::BadRequest,
                message: "the aggregator accepts telemetry pushes and scrapes only".into(),
                retry_after: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{AlertFrame, MetricsFrame};
    use adcomp_obs::metrics::MetricKey;
    use adcomp_wire::to_bytes;

    #[test]
    fn pushes_are_acked_and_ingested() {
        let service = AggService::new(Arc::new(Aggregator::new()));
        let frame = Telemetry::Metrics(MetricsFrame {
            counters: vec![(MetricKey::new("epochs", &[]), 2)],
            ..MetricsFrame::default()
        });
        let response = service.handle(Request::TelemetryPush {
            source: "a".into(),
            seq: 9,
            payload: to_bytes(&frame),
        });
        assert_eq!(response, Response::TelemetryAck { seq: 9 });
        assert_eq!(service.aggregator().fleet().counter("epochs"), 2);
    }

    #[test]
    fn duplicate_alert_still_acks() {
        let service = AggService::new(Arc::new(Aggregator::new()));
        let alert = to_bytes(&Telemetry::Alert(AlertFrame {
            epoch: 1,
            crossings: 1,
            detail: "x".into(),
        }));
        for seq in [1, 2] {
            let response = service.handle(Request::TelemetryPush {
                source: "a".into(),
                seq,
                payload: alert.clone(),
            });
            assert_eq!(response, Response::TelemetryAck { seq });
        }
        assert_eq!(service.aggregator().alerts().len(), 1);
    }

    #[test]
    fn garbage_payload_is_rejected() {
        let service = AggService::new(Arc::new(Aggregator::new()));
        let response = service.handle(Request::TelemetryPush {
            source: "a".into(),
            seq: 1,
            payload: vec![0xFF, 0x01],
        });
        assert!(matches!(
            response,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn scrape_and_status_answered_estimate_rejected() {
        let service = AggService::new(Arc::new(Aggregator::new()));
        assert!(matches!(
            service.handle(Request::Metrics),
            Response::MetricsText { .. }
        ));
        assert!(matches!(
            service.handle(Request::Status),
            Response::StatusReport { healthy: true, .. }
        ));
        assert!(matches!(
            service.handle(Request::Describe),
            Response::Error { .. }
        ));
    }
}
