//! The telemetry records daemons push and the aggregator ingests.
//!
//! A [`Telemetry`] value is what rides inside the opaque `payload` of an
//! `adcomp-wire` `Request::TelemetryPush` frame: a full [`MetricsFrame`]
//! snapshot of a source's instruments, one drift [`AlertFrame`], or a
//! batch of trace JSONL lines ([`TraceFrame`]). The codec lives here —
//! `MetricKey` and `HistogramData` belong to `adcomp-obs`, which knows
//! nothing about wire encodings, so this module encodes them field by
//! field with the same conventions as the wire codec (big-endian ints,
//! length-prefixed strings and vectors).
//!
//! Metric frames are *state*, not deltas: each push carries the source's
//! current counter/gauge/histogram values, and the aggregator keeps the
//! latest frame per source (last-wins by push sequence number). That
//! makes pushes idempotent — a retried or duplicated frame cannot
//! double-count — which is what lets the push path ride the wire
//! client's retry machinery unchanged.

use adcomp_obs::metrics::{HistogramData, MetricKey, Registry};
use adcomp_wire::codec::{CodecError, WireDecode, WireEncode, Writer};

/// One source's full instrument state at a point in time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsFrame {
    /// Counter values.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Full histogram state (bounds + buckets, mergeable).
    pub histograms: Vec<(MetricKey, HistogramData)>,
}

impl MetricsFrame {
    /// Captures every instrument in `registry` as one frame.
    pub fn capture(registry: &Registry) -> MetricsFrame {
        let snap = registry.snapshot();
        MetricsFrame {
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: registry.export_histograms(),
        }
    }

    /// The value of a counter, summed across label combinations.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Merges another frame into this one: counters and gauges sum by
    /// key, histograms merge bucketwise (mismatched bounds are skipped
    /// rather than corrupted). The fleet view is a fold of per-source
    /// frames through this.
    pub fn merge(&mut self, other: &MetricsFrame) {
        for (key, value) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v += value,
                None => self.counters.push((key.clone(), *value)),
            }
        }
        for (key, value) in &other.gauges {
            match self.gauges.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v += value,
                None => self.gauges.push((key.clone(), *value)),
            }
        }
        for (key, data) in &other.histograms {
            match self.histograms.iter_mut().find(|(k, _)| k == key) {
                Some((_, mine)) => {
                    let _ = mine.merge(data);
                }
                None => self.histograms.push((key.clone(), data.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

/// One drift alert, pushed by a serve daemon's wire alert sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertFrame {
    /// Epoch whose drift crossed the four-fifths threshold.
    pub epoch: u64,
    /// How many ratios crossed.
    pub crossings: u32,
    /// Human-readable alert line (matches the journaled detail).
    pub detail: String,
}

/// A batch of trace events, as the JSONL lines the tracer writes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceFrame {
    /// `TraceEvent::to_json` lines.
    pub lines: Vec<String>,
}

/// Everything a source can push to the aggregator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Telemetry {
    /// Full metric state (last-wins per source).
    Metrics(MetricsFrame),
    /// One drift alert (deduplicated by `(source, epoch)`).
    Alert(AlertFrame),
    /// Trace events for the fleet trace ring.
    Trace(TraceFrame),
}

fn encode_key(key: &MetricKey, buf: &mut Writer) {
    key.name.encode(buf);
    (key.labels.len() as u32).encode(buf);
    for (k, v) in &key.labels {
        k.encode(buf);
        v.encode(buf);
    }
}

fn decode_key(buf: &mut &[u8]) -> Result<MetricKey, CodecError> {
    let name = String::decode(buf)?;
    let len = u32::decode(buf)?;
    let mut labels = Vec::with_capacity(len.min(64) as usize);
    for _ in 0..len {
        labels.push((String::decode(buf)?, String::decode(buf)?));
    }
    Ok(MetricKey { name, labels })
}

fn encode_hist(data: &HistogramData, buf: &mut Writer) {
    data.bounds.encode(buf);
    data.buckets.encode(buf);
    data.count.encode(buf);
    data.sum.encode(buf);
    data.saturated.encode(buf);
}

fn decode_hist(buf: &mut &[u8]) -> Result<HistogramData, CodecError> {
    Ok(HistogramData {
        bounds: Vec::<u64>::decode(buf)?,
        buckets: Vec::<u64>::decode(buf)?,
        count: u64::decode(buf)?,
        sum: u64::decode(buf)?,
        saturated: u64::decode(buf)?,
    })
}

impl WireEncode for MetricsFrame {
    fn encode(&self, buf: &mut Writer) {
        (self.counters.len() as u32).encode(buf);
        for (key, value) in &self.counters {
            encode_key(key, buf);
            value.encode(buf);
        }
        (self.gauges.len() as u32).encode(buf);
        for (key, value) in &self.gauges {
            encode_key(key, buf);
            // Two's-complement through u64: the codec has no signed ints.
            (*value as u64).encode(buf);
        }
        (self.histograms.len() as u32).encode(buf);
        for (key, data) in &self.histograms {
            encode_key(key, buf);
            encode_hist(data, buf);
        }
    }
}

impl WireDecode for MetricsFrame {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let mut frame = MetricsFrame::default();
        for _ in 0..u32::decode(buf)? {
            frame.counters.push((decode_key(buf)?, u64::decode(buf)?));
        }
        for _ in 0..u32::decode(buf)? {
            frame
                .gauges
                .push((decode_key(buf)?, u64::decode(buf)? as i64));
        }
        for _ in 0..u32::decode(buf)? {
            frame.histograms.push((decode_key(buf)?, decode_hist(buf)?));
        }
        Ok(frame)
    }
}

impl WireEncode for Telemetry {
    fn encode(&self, buf: &mut Writer) {
        match self {
            Telemetry::Metrics(frame) => {
                0u8.encode(buf);
                frame.encode(buf);
            }
            Telemetry::Alert(alert) => {
                1u8.encode(buf);
                alert.epoch.encode(buf);
                alert.crossings.encode(buf);
                alert.detail.encode(buf);
            }
            Telemetry::Trace(trace) => {
                2u8.encode(buf);
                trace.lines.encode(buf);
            }
        }
    }
}

impl WireDecode for Telemetry {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(buf)? {
            0 => Ok(Telemetry::Metrics(MetricsFrame::decode(buf)?)),
            1 => Ok(Telemetry::Alert(AlertFrame {
                epoch: u64::decode(buf)?,
                crossings: u32::decode(buf)?,
                detail: String::decode(buf)?,
            })),
            2 => Ok(Telemetry::Trace(TraceFrame {
                lines: Vec::<String>::decode(buf)?,
            })),
            tag => Err(CodecError::InvalidTag {
                what: "Telemetry",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_wire::{from_bytes, to_bytes};

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey::new(name, labels)
    }

    #[test]
    fn telemetry_roundtrips() {
        let frame = MetricsFrame {
            counters: vec![
                (key("adcomp_serve_epochs_total", &[]), 7),
                (
                    key("adcomp_wire_requests_total", &[("kind", "estimate")]),
                    42,
                ),
            ],
            gauges: vec![(key("adcomp_queue_depth", &[]), -3)],
            histograms: vec![(
                key("adcomp_wire_rtt_us", &[]),
                HistogramData {
                    bounds: vec![100, 1000],
                    buckets: vec![1, 2, 3],
                    count: 6,
                    sum: 4200,
                    saturated: 3,
                },
            )],
        };
        for t in [
            Telemetry::Metrics(frame),
            Telemetry::Alert(AlertFrame {
                epoch: 3,
                crossings: 2,
                detail: "epoch 3: 2 crossings".into(),
            }),
            Telemetry::Trace(TraceFrame {
                lines: vec!["{\"seq\":1}".into()],
            }),
        ] {
            let bytes = to_bytes(&t);
            assert_eq!(from_bytes::<Telemetry>(&bytes).unwrap(), t);
        }
    }

    #[test]
    fn bad_tag_is_an_error_not_a_panic() {
        assert!(from_bytes::<Telemetry>(&[9]).is_err());
        assert!(from_bytes::<Telemetry>(&[]).is_err());
    }

    #[test]
    fn frames_merge_by_key() {
        let mut a = MetricsFrame {
            counters: vec![(key("epochs", &[]), 3), (key("alerts", &[]), 1)],
            gauges: vec![(key("depth", &[]), 2)],
            histograms: vec![(
                key("rtt", &[]),
                HistogramData {
                    bounds: vec![10],
                    buckets: vec![1, 0],
                    count: 1,
                    sum: 5,
                    saturated: 0,
                },
            )],
        };
        let b = MetricsFrame {
            counters: vec![(key("epochs", &[]), 4)],
            gauges: vec![(key("depth", &[]), -1)],
            histograms: vec![(
                key("rtt", &[]),
                HistogramData {
                    bounds: vec![10],
                    buckets: vec![0, 2],
                    count: 2,
                    sum: 40,
                    saturated: 2,
                },
            )],
        };
        a.merge(&b);
        assert_eq!(a.counter("epochs"), 7);
        assert_eq!(a.counter("alerts"), 1);
        assert_eq!(a.gauges[0].1, 1);
        let hist = &a.histograms[0].1;
        assert_eq!(hist.buckets, vec![1, 2]);
        assert_eq!(hist.count, 3);
        assert_eq!(hist.sum, 45);
        assert_eq!(hist.saturated, 2);
    }
}
