//! Bitset micro-benchmarks and the container-strategy ablation.
//!
//! DESIGN.md §6: compare the chunked array/bitmap/run containers against
//! a plain sorted `Vec<u32>` representation on the audit's hot operation
//! (intersection counting between audience sets).

use adcomp_bitset::Bitset;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};

const UNIVERSE: u32 = 250_000;

fn sample(seed: u64, density: f64) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..UNIVERSE).filter(|_| rng.gen_bool(density)).collect()
}

fn bench_intersection_len(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection_len");
    for (label, da, db) in [
        ("sparse_sparse", 0.01, 0.01),
        ("sparse_dense", 0.01, 0.4),
        ("dense_dense", 0.4, 0.4),
    ] {
        let va = sample(1, da);
        let vb = sample(2, db);
        let ba: Bitset = va.iter().copied().collect();
        let bb: Bitset = vb.iter().copied().collect();
        group.bench_function(format!("bitset/{label}"), |bencher| {
            bencher.iter(|| std::hint::black_box(ba.intersection_len(&bb)))
        });
        // Baseline: sorted-vec merge.
        group.bench_function(format!("sorted_vec/{label}"), |bencher| {
            bencher.iter(|| {
                let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
                while i < va.len() && j < vb.len() {
                    match va[i].cmp(&vb[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            n += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                std::hint::black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_materialised_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_ops");
    let a: Bitset = sample(3, 0.05).into_iter().collect();
    let b: Bitset = sample(4, 0.05).into_iter().collect();
    group.bench_function("and", |bencher| {
        bencher.iter(|| std::hint::black_box(a.and(&b)))
    });
    group.bench_function("or", |bencher| {
        bencher.iter(|| std::hint::black_box(a.or(&b)))
    });
    group.bench_function("and_not", |bencher| {
        bencher.iter(|| std::hint::black_box(a.and_not(&b)))
    });
    group.finish();
}

fn bench_run_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_encoding");
    // Clustered data (contiguous blocks) where run encoding shines.
    let clustered: Vec<u32> = (0..UNIVERSE).filter(|v| (v / 1000) % 3 == 0).collect();
    let dense: Bitset = clustered.iter().copied().collect();
    let mut run = dense.clone();
    run.run_optimize();
    let probe: Bitset = sample(5, 0.02).into_iter().collect();
    group.bench_function("dense_intersection", |bencher| {
        bencher.iter(|| std::hint::black_box(dense.intersection_len(&probe)))
    });
    group.bench_function("run_intersection", |bencher| {
        bencher.iter(|| std::hint::black_box(run.intersection_len(&probe)))
    });
    group.bench_function("run_optimize_cost", |bencher| {
        bencher.iter_batched(
            || dense.clone(),
            |mut s| {
                s.run_optimize();
                std::hint::black_box(s)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    let values = sample(6, 0.05);
    group.bench_function("from_sorted_iter", |bencher| {
        bencher.iter(|| std::hint::black_box(Bitset::from_sorted_iter(values.iter().copied())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_intersection_len,
    bench_materialised_ops,
    bench_run_encoding,
    bench_construction
);
criterion_main!(benches);
