//! Discovery benchmarks and the greedy-vs-exhaustive ablation
//! (DESIGN.md §6): the paper's greedy method against measuring every
//! eligible pair.

use adcomp_core::AuditTarget;
use adcomp_core::{
    compose_and_measure, rank_individuals, survey_individuals, top_compositions, Direction,
    DiscoveryConfig, SensitiveClass,
};
use adcomp_platform::{SimScale, Simulation};
use adcomp_population::Gender;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_survey(c: &mut Criterion) {
    let sim = Simulation::build(82, SimScale::Test);
    let target = AuditTarget::for_platform(&sim.linkedin, &sim);
    c.bench_function("survey_individuals_linkedin_test_scale", |bencher| {
        bencher.iter(|| std::hint::black_box(survey_individuals(&target).unwrap()))
    });
}

fn bench_greedy_vs_exhaustive(c: &mut Criterion) {
    let sim = Simulation::build(83, SimScale::Test);
    let target = AuditTarget::for_platform(&sim.linkedin, &sim);
    let survey = survey_individuals(&target).unwrap();
    let male = SensitiveClass::Gender(Gender::Male);
    let ranked = rank_individuals(&survey, male, Direction::Toward, 10_000);
    let cfg = DiscoveryConfig {
        top_k: 50,
        min_reach: 10_000,
        arity: 2,
        seed: 1,
    };

    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    group.bench_function("greedy_top50", |bencher| {
        bencher.iter(|| {
            std::hint::black_box(top_compositions(&target, &survey, &ranked, &cfg).unwrap())
        })
    });
    // Exhaustive ablation: measure every pair among the top 40 ranked
    // (greedy needs ~11 individuals for 50 pairs; exhaustive scans many
    // more pairs for the same answer quality).
    let prefix: Vec<_> = ranked
        .iter()
        .take(40)
        .map(|&i| survey.entries[i].attrs[0])
        .collect();
    group.bench_function("exhaustive_40x40", |bencher| {
        bencher.iter(|| {
            let mut best = Vec::new();
            for i in 0..prefix.len() {
                for j in i + 1..prefix.len() {
                    let mt = compose_and_measure(&target, &[prefix[i], prefix[j]]).unwrap();
                    if mt.measurement.total >= 10_000 {
                        best.push(mt);
                    }
                }
            }
            std::hint::black_box(best)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_survey, bench_greedy_vs_exhaustive);
criterion_main!(benches);
