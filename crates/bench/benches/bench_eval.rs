//! Targeting-evaluation benchmarks: the cost of one audience computation,
//! by spec shape — what one size-estimate query costs the platform.

use adcomp_platform::{SimScale, Simulation};
use adcomp_population::{AgeBucket, Gender};
use adcomp_targeting::{AttributeId, TargetingSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_eval(c: &mut Criterion) {
    let sim = Simulation::build(80, SimScale::Test);
    let fb = &sim.facebook;
    let mut group = c.benchmark_group("evaluate");
    let specs = [
        ("individual", TargetingSpec::and_of([AttributeId(0)])),
        (
            "pair",
            TargetingSpec::and_of([AttributeId(0), AttributeId(1)]),
        ),
        (
            "triple",
            TargetingSpec::and_of([AttributeId(0), AttributeId(1), AttributeId(2)]),
        ),
        (
            "or_group",
            TargetingSpec::builder()
                .any_of((0..8).map(AttributeId))
                .build(),
        ),
        (
            "demographic_and",
            TargetingSpec::builder()
                .gender(Gender::Female)
                .age(AgeBucket::A25_34)
                .attribute(AttributeId(0))
                .build(),
        ),
        (
            "exclusion",
            TargetingSpec::builder()
                .attribute(AttributeId(0))
                .exclude([AttributeId(1)])
                .build(),
        ),
    ];
    for (label, spec) in &specs {
        group.bench_function(*label, |bencher| {
            bencher.iter(|| std::hint::black_box(fb.exact_audience(spec).unwrap()))
        });
    }
    group.finish();
}

fn bench_estimate_endpoint(c: &mut Criterion) {
    // Full advertiser-visible path: validate → evaluate → scale → round.
    use adcomp_platform::EstimateRequest;
    let sim = Simulation::build(81, SimScale::Test);
    let fb = &sim.facebook;
    let spec = TargetingSpec::and_of([AttributeId(0), AttributeId(1)]);
    let req = EstimateRequest::new(spec, fb.config().default_objective);
    c.bench_function("reach_estimate_endpoint", |bencher| {
        bencher.iter(|| std::hint::black_box(fb.reach_estimate(&req).unwrap()))
    });
}

fn bench_lookalike(c: &mut Criterion) {
    use adcomp_platform::LookalikeConfig;
    let sim = Simulation::build(86, SimScale::Test);
    let fb = &sim.facebook;
    // Seed: first sufficiently large attribute audience.
    let seed = (0..fb.catalog().len())
        .map(|idx| fb.attribute_audience_raw(idx).unwrap())
        .find(|a| a.len() >= 500)
        .expect("large audience exists")
        .clone();
    let mut group = c.benchmark_group("lookalike");
    group.sample_size(20);
    group.bench_function("regular", |bencher| {
        bencher.iter(|| {
            std::hint::black_box(fb.lookalike(&seed, &LookalikeConfig::default()).unwrap())
        })
    });
    group.bench_function("special_ad_audience", |bencher| {
        bencher.iter(|| {
            std::hint::black_box(
                fb.lookalike(&seed, &LookalikeConfig::special_ad_audience())
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_eval,
    bench_estimate_endpoint,
    bench_lookalike
);
criterion_main!(benches);
