//! Inclusion–exclusion benchmarks: cost versus truncation order
//! (DESIGN.md §6 — the paper adds higher-order terms until convergence).

use adcomp_core::{union_recall, AuditTarget, Selector, SensitiveClass};
use adcomp_platform::{SimScale, Simulation};
use adcomp_population::Gender;
use adcomp_targeting::{AttributeId, TargetingSpec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_union_orders(c: &mut Criterion) {
    let sim = Simulation::build(84, SimScale::Test);
    let target = AuditTarget::for_platform(&sim.facebook, &sim);
    let female = Selector::Class(SensitiveClass::Gender(Gender::Female));
    let specs: Vec<TargetingSpec> = (0..8)
        .map(|i| TargetingSpec::and_of([AttributeId(i)]))
        .collect();

    let mut group = c.benchmark_group("union_recall");
    group.sample_size(10);
    for order in [1usize, 2, 4, 8] {
        group.bench_function(format!("order_{order}"), |bencher| {
            bencher.iter(|| {
                std::hint::black_box(union_recall(&target, &specs, female, order).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_union_orders);
criterion_main!(benches);
