//! Wire benchmarks: codec throughput and loopback query round-trips —
//! the measurement infrastructure's own overhead.

use adcomp_platform::{SimScale, Simulation};
use adcomp_targeting::{AttributeId, TargetingSpec};
use adcomp_wire::{from_bytes, serve, to_bytes, Client, Request, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_codec(c: &mut Criterion) {
    let spec = TargetingSpec::builder()
        .any_of((0..10).map(AttributeId))
        .all_of((10..14).map(AttributeId))
        .exclude([AttributeId(20)])
        .build();
    let request = Request::Estimate { spec };
    let bytes = to_bytes(&request);
    let mut group = c.benchmark_group("codec");
    group.bench_function("encode_request", |bencher| {
        bencher.iter(|| std::hint::black_box(to_bytes(&request)))
    });
    group.bench_function("decode_request", |bencher| {
        bencher.iter(|| std::hint::black_box(from_bytes::<Request>(&bytes).unwrap()))
    });
    group.finish();
}

fn bench_loopback(c: &mut Criterion) {
    let sim = Simulation::build(85, SimScale::Test);
    let handle = serve(sim.linkedin.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::connect(handle.addr()).unwrap();
    let spec = TargetingSpec::and_of([AttributeId(0)]);
    let mut group = c.benchmark_group("loopback");
    group.sample_size(30);
    group.bench_function("estimate_roundtrip", |bencher| {
        bencher.iter(|| std::hint::black_box(client.estimate(&spec).unwrap()))
    });
    group.finish();
    drop(client);
    handle.shutdown();
}

criterion_group!(benches, bench_codec, bench_loopback);
criterion_main!(benches);
