//! Ablation studies for the design choices DESIGN.md §6 calls out.
//!
//! 1. **Rounding ablation** — how much error do the platforms' rounding
//!    ladders inject into representation ratios, per platform? Uses the
//!    simulator's ground truth (exact audiences), which the audit itself
//!    never touches; quantifies why the paper's interval analysis was
//!    necessary and why it succeeds.
//! 2. **Greedy-vs-exhaustive discovery** — the paper's greedy method
//!    measures ~1 000 pairs; an exhaustive crawl of all eligible pairs
//!    measures orders of magnitude more. How much of the true top-K does
//!    greedy find, at what query cost?

use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::{
    compose_and_measure, measure_spec, rank_individuals, rep_ratio, rep_ratio_of,
    survey_individuals, top_compositions, Direction, DiscoveryConfig, SensitiveClass,
};
use adcomp_platform::InterfaceKind;
use adcomp_population::Gender;
use adcomp_targeting::TargetingSpec;

fn main() {
    let cli = Cli::parse();
    let ctx = context(cli);
    rounding_ablation(&ctx);
    greedy_ablation(&ctx);
    finish("ablations");
}

/// Per-platform distribution of |rounded ratio − exact ratio| / exact.
fn rounding_ablation(ctx: &adcomp_core::experiments::ExperimentContext) {
    say!("== Ablation 1: ratio error from estimate rounding ==");
    say!("(the audit sees only rounded estimates; ground truth from the simulator)");
    let male = SensitiveClass::Gender(Gender::Male);
    let mut rows = Vec::new();
    for kind in adcomp_core::experiments::INTERFACE_ORDER {
        let platform = match kind {
            InterfaceKind::FacebookNormal => &ctx.simulation.facebook,
            InterfaceKind::FacebookRestricted => &ctx.simulation.facebook_restricted,
            InterfaceKind::GoogleDisplay => &ctx.simulation.google,
            InterfaceKind::LinkedIn => &ctx.simulation.linkedin,
        };
        let target = ctx.target(kind);
        let base = measure_spec(&target, &TargetingSpec::everyone()).expect("base");
        let universe = platform.universe();
        let males = universe.gender_audience(Gender::Male);
        let females = universe.gender_audience(Gender::Female);

        let mut errors: Vec<f64> = Vec::new();
        let n = platform.catalog().len().min(400);
        for id in 0..n as u32 {
            let spec = TargetingSpec::and_of([adcomp_targeting::AttributeId(id)]);
            let m = measure_spec(&target, &spec).expect("measurement");
            if m.total < 100_000 {
                continue;
            }
            let Some(rounded) = rep_ratio_of(&m, &base, male) else {
                continue;
            };
            // Ground truth from exact sets.
            let audience = platform.exact_audience(&spec).expect("exact");
            let Some(exact) = rep_ratio(
                audience.intersection_len(males),
                audience.intersection_len(females),
                males.len(),
                females.len(),
            ) else {
                continue;
            };
            if exact > 0.0 {
                errors.push(((rounded - exact) / exact).abs());
            }
        }
        let stats = adcomp_core::BoxStats::from_samples(&errors).expect("non-empty");
        say!(
            "{:<14} n={:<4} median-rel-err={:.4} p90={:.4} max={:.4}",
            platform.label(),
            stats.n,
            stats.median,
            stats.p90,
            stats.max
        );
        rows.push(format!(
            "{}\t{}\t{:.5}\t{:.5}\t{:.5}",
            platform.label(),
            stats.n,
            stats.median,
            stats.p90,
            stats.max
        ));
    }
    print_block(
        "rounding_ablation.tsv",
        "interface\tn\tmedian_rel_err\tp90\tmax",
        rows,
    );
}

/// Greedy top-K quality vs an exhaustive pairwise crawl.
fn greedy_ablation(ctx: &adcomp_core::experiments::ExperimentContext) {
    say!("\n== Ablation 2: greedy discovery vs exhaustive crawl (LinkedIn, males) ==");
    let kind = InterfaceKind::LinkedIn;
    let target = ctx.target(kind);
    let survey = timed("survey", || survey_individuals(&target)).expect("survey");
    let male = SensitiveClass::Gender(Gender::Male);
    let cfg = DiscoveryConfig {
        top_k: 100,
        ..ctx.config.discovery
    };
    let ranked = rank_individuals(&survey, male, Direction::Toward, cfg.min_reach);

    // Greedy: measure ~top_k pairs.
    let greedy = timed("greedy", || {
        top_compositions(&target, &survey, &ranked, &cfg)
    })
    .expect("greedy discovery");
    let greedy_queries = greedy.len() * 7;

    // Exhaustive crawl over the top 60 ranked individuals (ground truth
    // for "the true top pairs" within a tractable pool).
    let pool: Vec<_> = ranked
        .iter()
        .take(60)
        .map(|&i| survey.entries[i].attrs[0])
        .collect();
    let exhaustive = timed("exhaustive", || {
        let mut all = Vec::new();
        for i in 0..pool.len() {
            for j in i + 1..pool.len() {
                if !target.targeting.can_compose(pool[i], pool[j]) {
                    continue;
                }
                let mt = compose_and_measure(&target, &[pool[i], pool[j]]).expect("measure");
                if mt.measurement.total >= cfg.min_reach {
                    all.push(mt);
                }
            }
        }
        all
    });
    let exhaustive_queries = exhaustive.len() * 7;

    let ratio_of =
        |mt: &adcomp_core::MeasuredTargeting| mt.ratio(&survey.base, male).unwrap_or(0.0);
    let top_set = |set: &[adcomp_core::MeasuredTargeting], k: usize| {
        let mut sorted: Vec<_> = set.iter().collect();
        sorted.sort_by(|a, b| ratio_of(b).partial_cmp(&ratio_of(a)).expect("finite"));
        sorted
            .into_iter()
            .take(k)
            .map(|mt| mt.attrs.clone())
            .collect::<std::collections::HashSet<_>>()
    };

    for k in [10usize, 25, 50] {
        let g = top_set(&greedy, k);
        let e = top_set(&exhaustive, k);
        let hit = g.intersection(&e).count();
        println!(
            "top-{k}: greedy recovers {hit}/{k} of the exhaustive top pairs \
             ({greedy_queries} vs {exhaustive_queries} estimate queries)"
        );
    }
    let g_best = greedy.iter().map(&ratio_of).fold(0.0f64, f64::max);
    let e_best = exhaustive.iter().map(ratio_of).fold(0.0f64, f64::max);
    println!("best ratio: greedy {g_best:.2} vs exhaustive {e_best:.2}");
    say!(
        "(the paper's method finds the same extreme compositions at ~{:.0}% of the query cost)",
        100.0 * greedy_queries as f64 / exhaustive_queries.max(1) as f64
    );
}
