//! Runs every experiment in paper order, writing TSV artifacts to
//! `results/` — the one-command full reproduction.

use std::fs;
use std::path::Path;

use adcomp_bench::{context, finish, say, timed, Cli};
use adcomp_core::experiments::distributions::{figure1, figure2, figure4, DistributionRow};
use adcomp_core::experiments::examples::{table2, table3, ExampleRow};
use adcomp_core::experiments::lookalike_exp::{lookalike_experiment, LookalikeRow};
use adcomp_core::experiments::methodology::{methodology, ProbeConfig};
use adcomp_core::experiments::recall_exp::{figure5, RecallRow};
use adcomp_core::experiments::removal_exp::{figure3, figure6, sweeps_tsv};
use adcomp_core::experiments::report::ReportBuilder;
use adcomp_core::experiments::table1::{table1, table1_tsv};
use adcomp_platform::SimScale;

fn write(dir: &Path, name: &str, contents: String) {
    let path = dir.join(name);
    fs::write(&path, contents).expect("write result file");
    adcomp_obs::info!("wrote {}", path.display());
}

fn main() {
    let cli = Cli::parse();
    let probe = match cli.scale {
        SimScale::Paper => ProbeConfig::paper(),
        SimScale::Test => ProbeConfig::test(),
    };
    let ctx = context(cli);
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");

    let f1 = timed("figure 1", || figure1(&ctx)).expect("fig1");
    write(dir, "fig1.tsv", tsv_rows(&f1));
    let f2 = timed("figure 2", || figure2(&ctx)).expect("fig2");
    write(dir, "fig2.tsv", tsv_rows(&f2));
    let f3 = timed("figure 3", || figure3(&ctx)).expect("fig3");
    write(dir, "fig3.tsv", sweeps_tsv(&f3));
    let f4 = timed("figure 4", || figure4(&ctx)).expect("fig4");
    write(dir, "fig4.tsv", tsv_rows(&f4));
    let f5 = timed("figure 5", || figure5(&ctx)).expect("fig5");
    let mut out = RecallRow::tsv_header();
    out.push('\n');
    for r in &f5 {
        out.push_str(&r.tsv());
        out.push('\n');
    }
    write(dir, "fig5.tsv", out);
    let f6 = timed("figure 6", || figure6(&ctx)).expect("fig6");
    write(dir, "fig6.tsv", sweeps_tsv(&f6));
    let t1 = timed("table 1", || table1(&ctx)).expect("table1");
    write(dir, "table1.tsv", table1_tsv(&t1));
    let t2 = timed("table 2", || table2(&ctx, 5)).expect("table2");
    let t3 = timed("table 3", || table3(&ctx, 5)).expect("table3");
    let mut out = ExampleRow::tsv_header().to_string();
    out.push('\n');
    for r in t2.iter().chain(&t3) {
        out.push_str(&r.tsv());
        out.push('\n');
    }
    write(dir, "tables23.tsv", out);
    let m = timed("methodology", || methodology(&ctx, &probe)).expect("methodology");
    let mut out = String::new();
    for r in &m {
        out.push_str(&r.summary());
        out.push('\n');
    }
    write(dir, "methodology.txt", out);

    let lal = timed("lookalike", || lookalike_experiment(&ctx, 5)).expect("lookalike");
    let mut out = LookalikeRow::tsv_header().to_string();
    out.push('\n');
    for r in &lal {
        out.push_str(&r.tsv());
        out.push('\n');
    }
    write(dir, "lookalike.tsv", out);

    // One self-contained markdown report over everything above.
    let mut report = ReportBuilder::new();
    report
        .distributions("Figure 1 — FB-restricted ratio distributions", &f1)
        .distributions("Figure 2 — all interfaces (male, 18-24)", &f2)
        .removal("Figure 3 — removal sweep (male)", &f3)
        .distributions("Figure 4 — older age ranges", &f4)
        .recalls("Figure 5 — recalls of skewed targetings", &f5)
        .removal("Figure 6 — removal sweep (ages)", &f6)
        .table1("Table 1 — overlap and union recall", &t1)
        .lookalike("Extension — lookalike / Special Ad Audiences", &lal)
        .examples(
            "Tables 2–3 — illustrative compositions",
            &t2.iter().chain(&t3).cloned().collect::<Vec<_>>(),
        )
        .methodology("§3 methodology probes", &m);
    write(dir, "report.md", report.render("paper-scale simulation"));
    say!("all experiments complete");
    finish("all");
}

fn tsv_rows(rows: &[DistributionRow]) -> String {
    let mut out = DistributionRow::tsv_header();
    out.push('\n');
    for r in rows {
        out.push_str(&r.tsv());
        out.push('\n');
    }
    out
}
