//! Drives millions of auction rounds through the delivery engine and
//! records the verdict in `BENCH_delivery.json`.
//!
//! Three things are measured and gated:
//!
//! 1. **Determinism** — the multi-threaded scoring path must produce an
//!    impression log byte-identical (digest-identical) to the serial
//!    run; a mismatch fails the bench outright, on any hardware.
//! 2. **Stage separation** — the paired job-ad vs baseline-ad audit
//!    must put neutral targeting *above* the four-fifths line and the
//!    loaded creative's delivery *below* it. This is the subsystem's
//!    reason to exist; a bench that is fast but wrong must fail.
//! 3. **Throughput** — auction rounds per second, serial and threaded.
//!    The threaded floor (≥ 1.1× at 4 scoring threads) is only enforced
//!    where the hardware can express parallelism; scoring parallelizes
//!    but settlement is serial by design, so the ceiling is Amdahl's.

use std::time::Instant;

use adcomp_bench::{finish, say, Cli};
use adcomp_core::experiments::delivery_exp::{paired_campaigns, PairedAdConfig};
use adcomp_core::source::{ApiSource, AuditTarget, SensitiveClass};
use adcomp_core::{four_fifths_band, measure_spec, rep_ratio, SkewBand, FOUR_FIFTHS_THRESHOLD};
use adcomp_delivery::{deliver, DeliveryConfig, DeliveryOutcome, DeliverySetup};
use adcomp_platform::{SimScale, Simulation};
use adcomp_population::Gender;
use adcomp_targeting::TargetingSpec;

/// Timed passes per thread count (best-of).
const ROUNDS_BEST_OF: usize = 2;
/// Required speedup of 4 scoring threads over 1.
const THRESHOLD_SPEEDUP: f64 = 1.1;

struct Params {
    /// Auction rounds per timed pass.
    rounds: u64,
    /// Pacing-window length.
    window: u64,
}

impl Params {
    fn for_scale(scale: SimScale) -> Params {
        match scale {
            // ~2M rounds × 8 campaigns ≈ 16M bid evaluations per pass.
            SimScale::Paper => Params {
                rounds: 2_000_000,
                window: 4_000,
            },
            SimScale::Test => Params {
                rounds: 200_000,
                window: 2_000,
            },
        }
    }
}

fn best_of(
    setup: &DeliverySetup,
    sim: &Simulation,
    config: &DeliveryConfig,
) -> (f64, DeliveryOutcome) {
    let universe = sim.facebook.universe();
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..ROUNDS_BEST_OF {
        let start = Instant::now();
        let pass = deliver(universe, universe.everyone(), setup, config);
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(pass);
    }
    (best, outcome.expect("at least one pass"))
}

fn main() {
    let cli = Cli::parse();
    let p = Params::for_scale(cli.scale);
    let sim = Simulation::build(cli.seed, cli.scale);

    // The paired-ad roster at audit configuration, but with the bench's
    // own round count scaled into the budgets so pacing stays engaged.
    let audit_cfg = PairedAdConfig::for_scale(cli.scale);
    let mut campaigns = paired_campaigns(cli.seed, &audit_cfg);
    for c in &mut campaigns {
        c.budget_micros = p.rounds.saturating_mul(4_000);
    }
    let setup = DeliverySetup::for_platform(&sim.facebook, campaigns).expect("resolve audiences");
    say!(
        "{} campaigns, {} rounds/pass, window {}",
        setup.len(),
        p.rounds,
        p.window
    );

    let serial_cfg = DeliveryConfig::new(p.rounds, cli.seed)
        .window(p.window)
        .label("bench-serial");
    let threaded_cfg = DeliveryConfig::new(p.rounds, cli.seed)
        .window(p.window)
        .threads(4)
        .label("bench-threaded");

    let (serial_s, serial) = best_of(&setup, &sim, &serial_cfg);
    let (threaded_s, threaded) = best_of(&setup, &sim, &threaded_cfg);

    // Gate 1: determinism across thread counts, digest-level.
    let byte_identical = serial.digest() == threaded.digest();
    assert_eq!(
        serial.impressions, threaded.impressions,
        "threaded scoring must not change the impression log"
    );

    // Gate 2: stage separation on the job ad (index 0) vs the measured
    // base rates — neutral targeting above the line, delivery below it.
    let target = AuditTarget::direct(std::sync::Arc::new(ApiSource(sim.facebook.clone())));
    let base = measure_spec(&target, &TargetingSpec::everyone()).expect("measure base");
    let class = SensitiveClass::Gender(Gender::Female);
    let targeting_ratio = adcomp_core::rep_ratio_of(&base, &base, class).unwrap_or(1.0);
    let universe = sim.facebook.universe();
    let ratio_of = |index: usize| {
        let tally = serial.delivered(index, &setup, universe);
        rep_ratio(
            tally.by_gender[Gender::Female.index()],
            tally.by_gender[Gender::Male.index()],
            base.by_gender[Gender::Female.index()],
            base.by_gender[Gender::Male.index()],
        )
        .unwrap_or(1.0)
    };
    let job_ratio = ratio_of(0);
    let baseline_ratio = ratio_of(1);
    let separated =
        four_fifths_band(targeting_ratio) == SkewBand::Within && job_ratio < FOUR_FIFTHS_THRESHOLD;

    // Gate 3: throughput floor, where enforceable.
    let rounds_per_s = p.rounds as f64 / serial_s;
    let threaded_rounds_per_s = p.rounds as f64 / threaded_s;
    let speedup = serial_s / threaded_s;
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor_enforced = hardware_threads >= 2;
    let pass = byte_identical && separated && (!floor_enforced || speedup >= THRESHOLD_SPEEDUP);

    let json = format!(
        "{{\n  \"bench\": \"delivery_skew\",\n  \"rounds_per_pass\": {rounds},\n  \
         \"campaigns\": {campaigns},\n  \"hardware_threads\": {hardware_threads},\n  \
         \"serial_s\": {serial_s:.4},\n  \"threaded_s\": {threaded_s:.4},\n  \
         \"auction_rounds_per_s\": {rounds_per_s:.0},\n  \
         \"threaded_rounds_per_s\": {threaded_rounds_per_s:.0},\n  \
         \"speedup_4_threads\": {speedup:.2},\n  \
         \"threshold_speedup\": {THRESHOLD_SPEEDUP:.1},\n  \
         \"impressions\": {impressions},\n  \"unfilled\": {unfilled},\n  \
         \"targeting_ratio\": {targeting_ratio:.4},\n  \
         \"job_delivery_ratio\": {job_ratio:.4},\n  \
         \"baseline_delivery_ratio\": {baseline_ratio:.4},\n  \
         \"stage_separated\": {separated},\n  \
         \"byte_identical\": {byte_identical},\n  \
         \"floor_enforced\": {floor_enforced},\n  \"pass\": {pass}\n}}\n",
        rounds = p.rounds,
        campaigns = setup.len(),
        impressions = serial.impressions.len(),
        unfilled = serial.unfilled,
    );
    std::fs::write("BENCH_delivery.json", &json).expect("write BENCH_delivery.json");
    say!("{json}");
    adcomp_obs::info!(
        "delivery: {rounds_per_s:.0} rounds/s serial, {speedup:.2}x at 4 threads; \
         targeting {targeting_ratio:.2} vs job delivery {job_ratio:.2}"
    );
    if !floor_enforced {
        adcomp_obs::warn!(
            "only {hardware_threads} hardware thread(s) available; the {THRESHOLD_SPEEDUP}x \
             scaling floor cannot be enforced on this machine"
        );
    }
    finish("delivery_skew");
    if !pass {
        adcomp_obs::error!(
            "delivery bench failed: byte_identical={byte_identical} separated={separated} \
             speedup={speedup:.2}"
        );
        std::process::exit(1);
    }
}
