//! Figure 1: representation-ratio distributions on Facebook's restricted
//! interface — Individual / Random 2-way / Top & Bottom 2-way / Top &
//! Bottom 3-way for males, and the 2-way sets for ages 18–24.

use adcomp_bench::plot::{render_log2, PlotRow};
use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::experiments::distributions::{figure1, DistributionRow};

fn main() {
    let ctx = context(Cli::parse());
    let rows = timed("figure 1", || figure1(&ctx)).expect("figure 1 drivers");

    say!("Figure 1 — Facebook restricted interface");
    say!("(paper: Individual p90/p10 male ≈ 1.84/0.50; Top 2-way p90 ≈ 8.98;");
    say!(" Bottom 2-way p10 ≈ 0.10; Top 3-way p90 ≈ 19.77; Bottom 3-way p10 ≈ 0.11)\n");
    for r in &rows {
        say!(
            "{:<14} {:<8} n={:<5} p10={:<8.3} median={:<8.3} p90={:<8.3} violating={:.0}%",
            r.set.to_string(),
            r.class.to_string(),
            r.stats.n,
            r.stats.p10,
            r.stats.median,
            r.stats.p90,
            r.violating * 100.0
        );
    }
    // ASCII rendition of the paper's box plots (log2 axis, M = median,
    // ':' marks the four-fifths thresholds).
    let plots: Vec<PlotRow> = rows
        .iter()
        .map(|r| PlotRow {
            label: format!("{} ({})", r.set, r.class),
            stats: r.stats,
        })
        .collect();
    say!("\n{}", render_log2(&plots, 1.0 / 64.0, 64.0, 64));

    print_block(
        "fig1.tsv",
        &DistributionRow::tsv_header(),
        rows.iter().map(|r| r.tsv()),
    );
    finish("fig1");
}
