//! Figure 3: effect of removing the most skewed individual targetings on
//! the skew of Top/Bottom 2-way compositions (gender), per interface.

use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::experiments::removal_exp::{figure3, sweeps_tsv};

fn main() {
    let ctx = context(Cli::parse());
    let sweeps = timed("figure 3", || figure3(&ctx)).expect("figure 3 drivers");

    say!("Figure 3 — removal of skewed individual targetings (males)");
    say!("(paper: after removing the top 10th percentile on FB-restricted,");
    say!(" the Top 2-way p90 was still ≈ 3.02 — outside the four-fifths band)\n");
    for s in &sweeps {
        say!(
            "--- {} / {} / {} 2-way ---",
            s.target,
            s.class,
            s.direction.label()
        );
        for p in &s.points {
            say!(
                "  removed {:>4.0}% ({:>3} attrs): tail={:<8.3} extreme={:<8.3} n={}",
                p.removed_percentile,
                p.removed_count,
                p.tail_ratio,
                p.extreme_ratio,
                p.compositions
            );
        }
        say!(
            "  still violating after removal: {}",
            s.still_violating_after_removal()
        );
    }
    let tsv = sweeps_tsv(&sweeps);
    let mut lines = tsv.lines();
    let header = lines.next().unwrap_or_default().to_string();
    print_block("fig3.tsv", &header, lines.map(|l| l.to_string()));
    finish("fig3");
}
