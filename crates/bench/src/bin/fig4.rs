//! Figure 4 (appendix): representation-ratio distributions for the older
//! age ranges (25–34, 35–54, 55+) on all four interfaces.

use adcomp_bench::plot::{render_log2, PlotRow};
use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::experiments::distributions::{figure4, DistributionRow};

fn main() {
    let ctx = context(Cli::parse());
    let rows = timed("figure 4", || figure4(&ctx)).expect("figure 4 drivers");

    say!("Figure 4 — skew across age ranges, all interfaces\n");
    let mut last = String::new();
    for r in &rows {
        if r.target != last {
            say!("--- {} ---", r.target);
            last = r.target.clone();
        }
        say!(
            "{:<14} {:<8} n={:<5} p10={:<8.3} median={:<8.3} p90={:<8.3} violating={:.0}%",
            r.set.to_string(),
            r.class.to_string(),
            r.stats.n,
            r.stats.p10,
            r.stats.median,
            r.stats.p90,
            r.violating * 100.0
        );
    }
    // ASCII box plots per interface (log2 axis; M = median, ':' marks
    // the four-fifths thresholds).
    let mut last = String::new();
    let mut plots: Vec<PlotRow> = Vec::new();
    for r in &rows {
        if r.target != last && !plots.is_empty() {
            say!("\n--- {last} ---");
            say!("{}", render_log2(&plots, 1.0 / 64.0, 64.0, 56));
            plots.clear();
        }
        last = r.target.clone();
        plots.push(PlotRow {
            label: format!("{} ({})", r.set, r.class),
            stats: r.stats,
        });
    }
    if !plots.is_empty() {
        say!("\n--- {last} ---");
        say!("{}", render_log2(&plots, 1.0 / 64.0, 64.0, 56));
    }

    print_block(
        "fig4.tsv",
        &DistributionRow::tsv_header(),
        rows.iter().map(|r| r.tsv()),
    );
    finish("fig4");
}
