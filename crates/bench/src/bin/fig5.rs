//! Figure 5 (appendix): recall distributions of skewed targetings across
//! interfaces, genders and age ranges, with sensitive-population totals.

use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::experiments::recall_exp::{figure5, RecallRow};

fn main() {
    let ctx = context(Cli::parse());
    let rows = timed("figure 5", || figure5(&ctx)).expect("figure 5 drivers");

    say!("Figure 5 — recalls of skewed targetings");
    say!("(paper: median Top 2-way recalls 570K/1.9M/170K/46K across the four");
    say!(" interfaces for females; pairs recall less than individuals)\n");
    let mut last = String::new();
    for r in &rows {
        if r.target != last {
            say!("--- {} ---", r.target);
            last = r.target.clone();
        }
        say!(
            "{:<20} {:<8} {:<8} n={:<5} median-recall={}",
            r.set.to_string(),
            r.class.to_string(),
            if r.including { "include" } else { "exclude" },
            r.stats.n,
            r.median_summary()
        );
    }
    print_block(
        "fig5.tsv",
        &RecallRow::tsv_header(),
        rows.iter().map(|r| r.tsv()),
    );
    finish("fig5");
}
