//! Figure 6 (appendix): the removal sweep for the age ranges.

use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::experiments::removal_exp::{figure6, sweeps_tsv};

fn main() {
    let ctx = context(Cli::parse());
    let sweeps = timed("figure 6", || figure6(&ctx)).expect("figure 6 drivers");

    say!("Figure 6 — removal of skewed individual targetings (age ranges)\n");
    for s in &sweeps {
        say!(
            "--- {} / {} / {} 2-way ---",
            s.target,
            s.class,
            s.direction.label()
        );
        for p in &s.points {
            say!(
                "  removed {:>4.0}% ({:>3} attrs): tail={:<8.3} extreme={:<8.3} n={}",
                p.removed_percentile,
                p.removed_count,
                p.tail_ratio,
                p.extreme_ratio,
                p.compositions
            );
        }
    }
    let tsv = sweeps_tsv(&sweeps);
    let mut lines = tsv.lines();
    let header = lines.next().unwrap_or_default().to_string();
    print_block("fig6.tsv", &header, lines.map(|l| l.to_string()));
    finish("fig6");
}
