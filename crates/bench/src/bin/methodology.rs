//! §3 methodology checks: estimate consistency (repeated queries) and
//! granularity (significant-digit ladders, reporting floors).

use adcomp_bench::{context, finish, say, timed, Cli};
use adcomp_core::experiments::methodology::{methodology, ProbeConfig};
use adcomp_platform::SimScale;

fn main() {
    let cli = Cli::parse();
    let probe = match cli.scale {
        SimScale::Paper => ProbeConfig::paper(),
        SimScale::Test => ProbeConfig::test(),
    };
    let ctx = context(cli);
    let rows =
        timed("methodology probes", || methodology(&ctx, &probe)).expect("methodology drivers");

    say!("§3 methodology — size-estimate characterisation");
    say!("(paper: all platforms consistent; FB 2 sig digits min 1000,");
    say!(" Google 1→2 sig digits min 40, LinkedIn 2 sig digits min 300)\n");
    for r in &rows {
        println!("{}", r.summary());
        say!(
            "  digits/decade: {:?}  zero-seen: {}",
            r.granularity.digits_per_decade,
            r.granularity.saw_zero
        );
    }
    finish("methodology");
}
