//! Measures the cost of the `adcomp-obs` instrumentation on the estimate
//! hot path and records the verdict in `BENCH_obs_overhead.json`.
//!
//! The same workload — [`measure_spec`] over every catalog attribute,
//! i.e. 7 estimate queries per spec through the full platform stack
//! (validation, rounding, metrics, budget) — runs twice: once with
//! recording on, once with the global kill switch off
//! ([`adcomp_obs::set_enabled`]), which leaves only the relaxed
//! load-and-branch the switch itself costs. Each mode takes the best of
//! several rounds to shed scheduler noise. The budget is **<5 %**
//! overhead; the binary exits non-zero beyond it, so CI can gate on it.

use std::time::Instant;

use adcomp_bench::{context, say, Cli};
use adcomp_core::{measure_spec, AuditTarget};
use adcomp_platform::InterfaceKind;
use adcomp_targeting::{AttributeId, TargetingSpec};

/// Timed rounds per mode (best-of).
const ROUNDS: usize = 5;
/// Catalog attributes per pass (keeps paper-scale runs tractable).
const MAX_SPECS: usize = 200;
/// Estimate queries issued by one `measure_spec` call (total + 2 genders
/// + 4 ages).
const QUERIES_PER_SPEC: u64 = 7;
/// Overhead budget, in percent.
const THRESHOLD_PCT: f64 = 5.0;

fn workload(target: &AuditTarget, specs: &[TargetingSpec]) -> u64 {
    let mut ops = 0u64;
    for spec in specs {
        let m = measure_spec(target, spec).expect("estimate");
        std::hint::black_box(m.total);
        ops += QUERIES_PER_SPEC;
    }
    ops
}

/// Best-of-`ROUNDS` ns per estimate query with recording `enabled`.
fn measure_mode(target: &AuditTarget, specs: &[TargetingSpec], enabled: bool) -> (f64, u64) {
    adcomp_obs::set_enabled(enabled);
    workload(target, specs); // warm-up
    let mut best = f64::INFINITY;
    let mut ops = 0;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        ops = workload(target, specs);
        let ns = start.elapsed().as_nanos() as f64 / ops as f64;
        best = best.min(ns);
    }
    (best, ops)
}

fn main() {
    let cli = Cli::parse();
    let ctx = context(cli);
    let target = ctx.target(InterfaceKind::FacebookNormal);
    let n = ctx.simulation.facebook.catalog().len().min(MAX_SPECS);
    let specs: Vec<TargetingSpec> = (0..n as u32)
        .map(|id| TargetingSpec::and_of([AttributeId(id)]))
        .collect();

    let (instrumented, ops) = measure_mode(&target, &specs, true);
    let (baseline, _) = measure_mode(&target, &specs, false);
    adcomp_obs::set_enabled(true);

    let overhead_pct = if baseline > 0.0 {
        (instrumented - baseline) / baseline * 100.0
    } else {
        0.0
    };
    let pass = overhead_pct < THRESHOLD_PCT;

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"ops_per_round\": {ops},\n  \
         \"rounds\": {ROUNDS},\n  \"baseline_ns_per_op\": {baseline:.1},\n  \
         \"instrumented_ns_per_op\": {instrumented:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"threshold_pct\": {THRESHOLD_PCT:.1},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write("BENCH_obs_overhead.json", &json).expect("write BENCH_obs_overhead.json");
    say!("{json}");
    adcomp_obs::info!(
        "obs overhead: {overhead_pct:.2}% ({instrumented:.1} vs {baseline:.1} ns/query, \
         budget {THRESHOLD_PCT}%)"
    );
    if !pass {
        adcomp_obs::error!("instrumentation overhead exceeds the {THRESHOLD_PCT}% budget");
        std::process::exit(1);
    }
}
