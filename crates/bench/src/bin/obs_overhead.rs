//! Measures the cost of the `adcomp-obs` instrumentation on the estimate
//! hot path and records the verdict in `BENCH_obs_overhead.json`.
//!
//! The same workload — [`measure_spec`] over every catalog attribute,
//! i.e. 7 estimate queries per spec through the full platform stack
//! (validation, rounding, metrics, budget) — runs twice: once with
//! recording on, once with the global kill switch off
//! ([`adcomp_obs::set_enabled`]), which leaves only the relaxed
//! load-and-branch the switch itself costs — and once more with the
//! fleet push exporter live, a [`TelemetryPusher`] exporting metric
//! frames to a real aggregator while the workload runs. Each mode takes
//! the best of several rounds to shed scheduler noise. The budget is
//! **<5 %** overhead for both instrumented modes; the binary exits
//! non-zero beyond it, so CI can gate on it.

use std::sync::Arc;
use std::time::Instant;

use adcomp_agg::{AggService, Aggregator, PusherConfig, Telemetry, TelemetryPusher};
use adcomp_bench::{context, say, Cli};
use adcomp_core::{measure_spec, AuditTarget};
use adcomp_platform::InterfaceKind;
use adcomp_serve::{status_frame, DaemonStatus};
use adcomp_targeting::{AttributeId, TargetingSpec};
use adcomp_wire::{serve_service, ServerConfig};

/// Workload passes per timed round — lengthens each round so the
/// best-of comparison is not dominated by scheduler jitter at small
/// scales.
const PASSES_PER_ROUND: usize = 4;
/// Timed rounds per mode (best-of).
const ROUNDS: usize = 9;
/// Catalog attributes per pass (keeps paper-scale runs tractable).
const MAX_SPECS: usize = 200;
/// Estimate queries issued by one `measure_spec` call (total + 2 genders
/// + 4 ages).
const QUERIES_PER_SPEC: u64 = 7;
/// Overhead budget, in percent.
const THRESHOLD_PCT: f64 = 5.0;
/// Status-frame exports per workload pass in push mode (the daemon
/// pushes once per epoch; one pass is the bench's epoch).
const PUSHES_PER_PASS: usize = 1;

fn workload(
    target: &AuditTarget,
    specs: &[TargetingSpec],
    pusher: Option<(&TelemetryPusher, &DaemonStatus)>,
) -> u64 {
    let mut ops = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let m = measure_spec(target, spec).expect("estimate");
        std::hint::black_box(m.total);
        ops += QUERIES_PER_SPEC;
        if let Some((pusher, status)) = pusher {
            if i % (specs.len() / PUSHES_PER_PASS).max(1) == 0 {
                status
                    .epochs
                    .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                pusher.push(Telemetry::Metrics(status_frame(status)));
            }
        }
    }
    ops
}

/// One timed round — `PASSES_PER_ROUND` workload passes with recording
/// `enabled` and, optionally, the push exporter live. Rounds for the
/// different modes are interleaved by the caller so slow load drift on
/// the host hits every mode equally.
fn timed_round(
    target: &AuditTarget,
    specs: &[TargetingSpec],
    enabled: bool,
    pusher: Option<(&TelemetryPusher, &DaemonStatus)>,
) -> (f64, u64) {
    adcomp_obs::set_enabled(enabled);
    let start = Instant::now();
    let mut ops = 0;
    for _ in 0..PASSES_PER_ROUND {
        ops += workload(target, specs, pusher);
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops)
}

fn main() {
    let cli = Cli::parse();
    let ctx = context(cli);
    let target = ctx.target(InterfaceKind::FacebookNormal);
    let n = ctx.simulation.facebook.catalog().len().min(MAX_SPECS);
    let specs: Vec<TargetingSpec> = (0..n as u32)
        .map(|id| TargetingSpec::and_of([AttributeId(id)]))
        .collect();

    // A live aggregator so the push mode exports into a real sink.
    let agg = Arc::new(Aggregator::new());
    let handle = serve_service(
        Arc::new(AggService::new(agg.clone())),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind aggregator");
    let pusher =
        TelemetryPusher::start(PusherConfig::new(handle.addr().to_string(), "obs-overhead"));

    let status = DaemonStatus::new();
    let push = Some((&pusher, status.as_ref()));
    // Warm-up: one untimed round per mode (caches, pusher connection).
    timed_round(&target, &specs, true, None);
    timed_round(&target, &specs, true, push);
    timed_round(&target, &specs, false, None);
    let (mut instrumented, mut with_push, mut baseline) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut ops = 0;
    for _ in 0..ROUNDS {
        let (ns, o) = timed_round(&target, &specs, true, None);
        instrumented = instrumented.min(ns);
        ops = o;
        let (ns, _) = timed_round(&target, &specs, true, push);
        with_push = with_push.min(ns);
        let (ns, _) = timed_round(&target, &specs, false, None);
        baseline = baseline.min(ns);
    }
    adcomp_obs::set_enabled(true);
    drop(pusher);
    handle.shutdown();

    let pct = |mode: f64| {
        if baseline > 0.0 {
            (mode - baseline) / baseline * 100.0
        } else {
            0.0
        }
    };
    let overhead_pct = pct(instrumented);
    let push_overhead_pct = pct(with_push);
    let pass = overhead_pct < THRESHOLD_PCT && push_overhead_pct < THRESHOLD_PCT;

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"ops_per_round\": {ops},\n  \
         \"rounds\": {ROUNDS},\n  \"baseline_ns_per_op\": {baseline:.1},\n  \
         \"instrumented_ns_per_op\": {instrumented:.1},\n  \
         \"push_ns_per_op\": {with_push:.1},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"push_overhead_pct\": {push_overhead_pct:.2},\n  \
         \"threshold_pct\": {THRESHOLD_PCT:.1},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write("BENCH_obs_overhead.json", &json).expect("write BENCH_obs_overhead.json");
    say!("{json}");
    adcomp_obs::info!(
        "obs overhead: {overhead_pct:.2}% recording, {push_overhead_pct:.2}% with push exporter \
         ({instrumented:.1}/{with_push:.1} vs {baseline:.1} ns/query, budget {THRESHOLD_PCT}%)"
    );
    if !pass {
        adcomp_obs::error!("instrumentation overhead exceeds the {THRESHOLD_PCT}% budget");
        std::process::exit(1);
    }
}
