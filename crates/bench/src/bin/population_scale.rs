//! Millions-of-users composition discovery over a streamed segment
//! store, recorded in `BENCH_population_scale.json`.
//!
//! The paper's Table-1 pipeline at platform scale: a ≥20M-user universe
//! is generated segment-at-a-time straight to disk (never materialised
//! whole — the monolithic latent buffer alone would be ~960 MB), served
//! through a [`SegmentedPlatform`] with a bounded audience cache, and
//! audited twice with the identical candidate schedule:
//!
//! * **greedy** — [`top_compositions`], which measures every sampled
//!   candidate with seven estimate queries and then filters by the
//!   min-reach floor;
//! * **bounded** — [`top_compositions_bounded`], which prunes candidates
//!   below the floor through the [`ReachOracle`] (min-cardinality bounds
//!   and thresholded intersections) before issuing any estimate queries.
//!
//! Both searches run serially (no engine attached), so the reported
//! speedup is a single-thread number. Gates:
//!
//! * the two searches return **byte-identical** results;
//! * peak RSS (`VmHWM`) stays under a configured ceiling despite the
//!   20M-user universe;
//! * the bounded search issues ≤ half the estimate queries of greedy;
//! * survey throughput meets a conservative serial qps floor;
//! * at paper scale only: ≥2x single-threaded wall-clock speedup.

use std::sync::Arc;
use std::time::Instant;

use adcomp_bench::{say, Cli};
use adcomp_core::source::{ApiSource, AuditTarget, SensitiveClass};
use adcomp_core::{
    rank_individuals, survey_individuals, top_compositions, top_compositions_bounded, Direction,
    DiscoveryConfig, DEFAULT_MIN_REACH, QUERIES_PER_SPEC,
};
use adcomp_platform::{
    Catalog, CategorySpec, EstimateKind, InterfaceKind, Objective, PlatformConfig, RoundingRule,
    SegmentedPlatform, SimScale, SkewProfile,
};
use adcomp_population::{DemographicProfile, Gender, SegmentStore, UniverseConfig, SEGMENT_ALIGN};
use adcomp_targeting::Capabilities;

/// Everything that differs between the CI-sized and paper-sized runs.
struct Params {
    /// Total users; a multiple of the segment size.
    n_users: u32,
    /// Users per on-disk segment.
    segment_users: u32,
    /// Decoded-audience cache budget.
    cache_bytes: usize,
    /// Attribute popularity range (log-uniform). Chosen per scale so a
    /// realistic majority of sampled pairs falls below the reach floor —
    /// the regime the paper's 10k floor creates at real platform sizes.
    popularity: (f64, f64),
    /// Discovery min-reach floor.
    min_reach: u64,
    /// Peak-RSS ceiling in MiB.
    rss_ceiling_mib: u64,
    /// Serial survey throughput floor (queries/sec).
    survey_qps_floor: f64,
    /// Wall-clock speedup gate for bounded vs greedy (paper scale only;
    /// the query-count gate is enforced at both scales).
    wall_speedup_floor: Option<f64>,
}

impl Params {
    fn for_scale(scale: SimScale) -> Params {
        match scale {
            // 20 × 1 Mi-user segments = 20 971 520 users. At the paper's
            // 10k floor, pairs need |A∧B| ≳ 9 950, so popularities in
            // (0.0008, 0.045) leave the large majority of sampled pairs
            // prunable — the regime a 10k floor creates on a real
            // platform — while individual attributes (~17k users and up)
            // stay eligible.
            SimScale::Paper => Params {
                n_users: 20 * 16 * SEGMENT_ALIGN,
                segment_users: 16 * SEGMENT_ALIGN,
                cache_bytes: 192 << 20,
                popularity: (0.0008, 0.045),
                min_reach: DEFAULT_MIN_REACH,
                rss_ceiling_mib: 1024,
                survey_qps_floor: 10.0,
                wall_speedup_floor: Some(2.0),
            },
            // Three minimal segments; the floor and popularity range are
            // rescaled so the pass/fail mix matches the paper regime.
            SimScale::Test => Params {
                n_users: 3 * SEGMENT_ALIGN,
                segment_users: SEGMENT_ALIGN,
                cache_bytes: 4 << 20,
                popularity: (0.01, 0.3),
                min_reach: 3_000,
                rss_ceiling_mib: 512,
                survey_qps_floor: 50.0,
                wall_speedup_floor: None,
            },
        }
    }
}

/// (VmRSS, VmHWM) in MiB from `/proc/self/status`; zeros if unreadable
/// (non-Linux dev hosts — the RSS gate then passes trivially there, but
/// CI is Linux).
fn rss_mib() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<u64>().ok())
            .map_or(0, |kb| kb / 1024)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

fn catalog_for(seed: u64, popularity: (f64, f64)) -> Catalog {
    let skew = |lean: f32| {
        let mut s = SkewProfile::neutral().lean_male(lean);
        s.popularity_range = popularity;
        s
    };
    Catalog::generate(
        seed,
        &[
            CategorySpec {
                name: "Interests",
                domain: "interests",
                feature: adcomp_targeting::FeatureId(0),
                count: 28,
                skew: skew(0.35),
            },
            CategorySpec {
                name: "Lifestyle",
                domain: "lifestyle",
                feature: adcomp_targeting::FeatureId(1),
                count: 28,
                skew: skew(-0.2),
            },
        ],
    )
}

fn main() {
    let cli = Cli::parse();
    let p = Params::for_scale(cli.scale);
    let dir = std::env::temp_dir().join(format!("adcomp-population-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = UniverseConfig {
        n_users: p.n_users,
        seed: cli.seed,
        scale: 1.0,
        profile: DemographicProfile::balanced(),
    };
    let catalog = catalog_for(cli.seed ^ 0x5eed, p.popularity);
    let models: Vec<_> = catalog.entries().iter().map(|e| e.model.clone()).collect();

    say!(
        "generating {} users in {}-user segments ({} attributes)...",
        p.n_users,
        p.segment_users,
        models.len()
    );
    let gen_start = Instant::now();
    let store = SegmentStore::create(&dir, &config, p.segment_users, &models, p.cache_bytes)
        .expect("create segment store");
    let gen_secs = gen_start.elapsed().as_secs_f64();
    let (rss_after_gen, _) = rss_mib();
    say!(
        "generated {} segments in {gen_secs:.1}s ({:.0} users/sec), RSS {rss_after_gen} MiB",
        store.n_segments(),
        f64::from(p.n_users) / gen_secs
    );

    let platform = Arc::new(SegmentedPlatform::new(
        PlatformConfig {
            kind: InterfaceKind::FacebookNormal,
            capabilities: Capabilities::permissive(),
            rounding: RoundingRule::facebook(),
            estimate_kind: EstimateKind::Users,
            supported_objectives: vec![Objective::Reach],
            default_objective: Objective::Reach,
        },
        store,
        catalog,
    ));
    let target = AuditTarget::direct(Arc::new(ApiSource(platform.clone())));

    // Serial survey: one estimate query per attribute plus demographics.
    let survey_start = Instant::now();
    let survey = survey_individuals(&target).expect("survey");
    let survey_secs = survey_start.elapsed().as_secs_f64();
    let survey_queries = platform.stats().estimates;
    let survey_qps = survey_queries as f64 / survey_secs;
    say!("surveyed {survey_queries} queries in {survey_secs:.2}s ({survey_qps:.0} qps)");

    let cfg = DiscoveryConfig {
        top_k: cli.top_k,
        min_reach: p.min_reach,
        arity: 2,
        seed: cli.seed,
    };
    let ranked = rank_individuals(
        &survey,
        SensitiveClass::Gender(Gender::Male),
        Direction::Toward,
        cfg.min_reach,
    );

    // Greedy first so its cold-cache penalty (if any) favours greedy,
    // then bounded over the identical candidate schedule. Both serial.
    let before = platform.stats().estimates;
    let greedy_start = Instant::now();
    let greedy = top_compositions(&target, &survey, &ranked, &cfg).expect("greedy search");
    let greedy_secs = greedy_start.elapsed().as_secs_f64();
    let greedy_queries = platform.stats().estimates - before;

    let before = platform.stats().estimates;
    let bounded_start = Instant::now();
    let bounded = top_compositions_bounded(&target, &survey, &ranked, &cfg, platform.as_ref())
        .expect("bounded search");
    let bounded_secs = bounded_start.elapsed().as_secs_f64();
    let bounded_queries = platform.stats().estimates - before;

    let identical = greedy == bounded;
    let speedup_wall = greedy_secs / bounded_secs.max(1e-9);
    let speedup_queries = greedy_queries as f64 / bounded_queries.max(1) as f64;
    let survivors = bounded_queries / QUERIES_PER_SPEC as u64;
    let (rss_now, rss_peak) = rss_mib();
    let cache = platform.store().cache_stats();

    say!(
        "greedy: {} compositions, {greedy_queries} queries, {greedy_secs:.2}s",
        greedy.len()
    );
    say!(
        "bounded: {} compositions, {bounded_queries} queries ({survivors} survivors), \
         {bounded_secs:.2}s — {speedup_wall:.1}x wall, {speedup_queries:.1}x queries",
        bounded.len()
    );
    say!(
        "RSS now {rss_now} MiB, peak {rss_peak} MiB (ceiling {} MiB)",
        p.rss_ceiling_mib
    );

    let rss_ok = rss_peak < p.rss_ceiling_mib;
    let queries_ok = speedup_queries >= 2.0;
    let qps_ok = survey_qps >= p.survey_qps_floor;
    let wall_ok = p.wall_speedup_floor.is_none_or(|f| speedup_wall >= f);
    let pass = identical && rss_ok && queries_ok && qps_ok && wall_ok;

    let scale_name = match cli.scale {
        SimScale::Paper => "paper",
        SimScale::Test => "test",
    };
    let json = format!(
        "{{\n  \"bench\": \"population_scale\",\n  \"scale\": \"{scale_name}\",\n  \
         \"n_users\": {},\n  \"segment_users\": {},\n  \"n_segments\": {},\n  \
         \"attributes\": {},\n  \"top_k\": {},\n  \"min_reach\": {},\n  \
         \"generate\": {{ \"seconds\": {gen_secs:.2}, \"users_per_sec\": {:.0} }},\n  \
         \"survey\": {{ \"queries\": {survey_queries}, \"seconds\": {survey_secs:.3}, \
         \"qps\": {survey_qps:.0}, \"qps_floor\": {} }},\n  \
         \"greedy\": {{ \"compositions\": {}, \"queries\": {greedy_queries}, \
         \"seconds\": {greedy_secs:.3} }},\n  \
         \"bounded\": {{ \"compositions\": {}, \"queries\": {bounded_queries}, \
         \"survivors\": {survivors}, \"seconds\": {bounded_secs:.3} }},\n  \
         \"speedup_wall\": {speedup_wall:.2},\n  \"speedup_queries\": {speedup_queries:.2},\n  \
         \"identical\": {identical},\n  \
         \"rss\": {{ \"peak_mib\": {rss_peak}, \"ceiling_mib\": {} }},\n  \
         \"cache\": {{ \"hits\": {}, \"misses\": {}, \"resident_bytes\": {} }},\n  \
         \"pass\": {pass}\n}}\n",
        p.n_users,
        p.segment_users,
        platform.store().n_segments(),
        platform.catalog().len(),
        cfg.top_k,
        cfg.min_reach,
        f64::from(p.n_users) / gen_secs,
        p.survey_qps_floor,
        greedy.len(),
        bounded.len(),
        p.rss_ceiling_mib,
        cache.hits,
        cache.misses,
        cache.resident_bytes,
    );
    std::fs::write("BENCH_population_scale.json", &json)
        .expect("write BENCH_population_scale.json");
    say!("{json}");

    let _ = std::fs::remove_dir_all(&dir);
    if !pass {
        adcomp_obs::error!(
            "population_scale failed: identical={identical} rss_ok={rss_ok} \
             queries_ok={queries_ok} qps_ok={qps_ok} wall_ok={wall_ok}"
        );
        std::process::exit(1);
    }
    adcomp_obs::info!(
        "population scale: {} users, bounded search {speedup_wall:.1}x wall / \
         {speedup_queries:.1}x queries vs greedy, peak RSS {rss_peak} MiB",
        p.n_users
    );
}
