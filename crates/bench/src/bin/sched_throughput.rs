//! Measures distributed-scheduler throughput at 1, 2 and 4 wire
//! endpoints and records the verdict in `BENCH_sched_throughput.json`.
//!
//! The workload is [`survey_individuals`] with the measurement side
//! sharded by [`AuditTarget::with_scheduler_cfg`] across N loopback
//! wire servers, every server wrapping the **same** simulated LinkedIn.
//! All endpoint counts must produce surveys byte-identical to the
//! in-process serial run (asserted here, not just in the test suite) —
//! the scheduler's determinism guarantee is half the point of the
//! bench.
//!
//! The budget is a **≥ 1.2×** speedup of 4 endpoints over 1; the binary
//! exits non-zero below it so CI can gate on it. The floor is only
//! enforceable where the hardware can express parallelism: with fewer
//! than two available threads the endpoints serialize anyway, so the
//! verdict records `floor_enforced: false` and passes (the numbers are
//! still written).

use std::sync::Arc;
use std::time::{Duration, Instant};

use adcomp_bench::{say, Cli};
use adcomp_core::{
    survey_individuals, AuditTarget, EstimateSource, IndividualSurvey, SchedulerConfig,
};
use adcomp_platform::Simulation;
use adcomp_wire::{serve, ServerConfig, ServerHandle};
use discrimination_via_composition::RemoteSource;

/// Timed passes per endpoint count (best-of).
const ROUNDS: usize = 3;
/// Required speedup of 4 endpoints over 1.
const THRESHOLD_SPEEDUP: f64 = 1.2;

/// `n` wire servers over one platform plus their connected clients.
fn spawn_endpoints(
    sim: &Simulation,
    n: usize,
) -> (Vec<ServerHandle>, Vec<Arc<dyn EstimateSource>>) {
    let mut handles = Vec::with_capacity(n);
    let mut endpoints = Vec::with_capacity(n);
    for _ in 0..n {
        let handle = serve(
            sim.linkedin.clone(),
            "127.0.0.1:0",
            ServerConfig::default().with_executors(2),
        )
        .expect("loopback server");
        let remote = Arc::new(RemoteSource::connect(handle.addr()).expect("connect"));
        handles.push(handle);
        endpoints.push(remote as Arc<dyn EstimateSource>);
    }
    (handles, endpoints)
}

/// Best-of-`ROUNDS` wall seconds for one full survey through an
/// `n`-endpoint scheduler, plus the survey for equality checks.
fn measure(sim: &Simulation, n: usize) -> (f64, IndividualSurvey) {
    let (handles, endpoints) = spawn_endpoints(sim, n);
    let cfg = SchedulerConfig {
        unit_size: 8,
        lease_ttl: Duration::from_secs(5),
        ..SchedulerConfig::default()
    };
    let target =
        AuditTarget::for_platform(&sim.linkedin, sim).with_scheduler_cfg(endpoints, cfg, None);
    let survey = survey_individuals(&target).expect("survey"); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let pass = survey_individuals(&target).expect("survey");
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(pass.entries, survey.entries, "survey must be stable");
    }
    for handle in handles {
        handle.shutdown();
    }
    (best, survey)
}

fn main() {
    let cli = Cli::parse();
    let sim = Simulation::build(cli.seed, cli.scale);

    // In-process serial reference: the bytes every endpoint count must
    // reproduce.
    let serial =
        survey_individuals(&AuditTarget::for_platform(&sim.linkedin, &sim)).expect("serial survey");
    let queries = serial.entries.len() as u64 + 1;

    let (s1, survey1) = measure(&sim, 1);
    let (s2, survey2) = measure(&sim, 2);
    let (s4, survey4) = measure(&sim, 4);
    for (n, survey) in [(1usize, &survey1), (2, &survey2), (4, &survey4)] {
        assert_eq!(
            survey.entries, serial.entries,
            "{n}-endpoint survey must be byte-identical to the serial run"
        );
        assert_eq!(survey.base, serial.base);
    }

    let speedup_2 = s1 / s2;
    let speedup_4 = s1 / s4;
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor_enforced = hardware_threads >= 2;
    let pass = !floor_enforced || speedup_4 >= THRESHOLD_SPEEDUP;

    let json = format!(
        "{{\n  \"bench\": \"sched_throughput\",\n  \"queries_per_pass\": {queries},\n  \
         \"rounds\": {ROUNDS},\n  \"hardware_threads\": {hardware_threads},\n  \
         \"endpoints_1_s\": {s1:.4},\n  \"endpoints_2_s\": {s2:.4},\n  \
         \"endpoints_4_s\": {s4:.4},\n  \
         \"speedup_2_endpoints\": {speedup_2:.2},\n  \
         \"speedup_4_endpoints\": {speedup_4:.2},\n  \
         \"threshold_speedup\": {THRESHOLD_SPEEDUP:.1},\n  \
         \"byte_identical\": true,\n  \
         \"floor_enforced\": {floor_enforced},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write("BENCH_sched_throughput.json", &json)
        .expect("write BENCH_sched_throughput.json");
    say!("{json}");
    adcomp_obs::info!(
        "scheduler throughput: {speedup_2:.2}x at 2 endpoints, {speedup_4:.2}x at 4 \
         ({queries} queries/pass, floor {THRESHOLD_SPEEDUP}x at 4 endpoints)"
    );
    if !floor_enforced {
        adcomp_obs::warn!(
            "only {hardware_threads} hardware thread(s) available; the {THRESHOLD_SPEEDUP}x \
             scaling floor cannot be enforced on this machine"
        );
    }
    if !pass {
        adcomp_obs::error!(
            "4-endpoint speedup {speedup_4:.2}x is below the {THRESHOLD_SPEEDUP}x floor"
        );
        std::process::exit(1);
    }
}
