//! Measures the continuous-audit daemon's resilience costs and records
//! the verdict in `BENCH_serve_resilience.json`.
//!
//! Three numbers, all with `fsync` journaling on (the recovery
//! guarantees under test are durability guarantees):
//!
//! * **epochs/sec** — full survey epochs through the supervisor loop,
//!   every lifecycle event fsynced into the journal WAL;
//! * **recovery-time-to-first-query** — the daemon is killed between
//!   epochs and restarted; how long from constructing the new
//!   incarnation until the resumed epoch's first estimate reaches the
//!   platform (journal recovery + store replay all happen in here);
//! * **alert latency** — how long the drift stage takes to diff two
//!   recorded epochs and detect the four-fifths crossings, measured on
//!   an epoch pair whose drift genuinely alerts.
//!
//! The budget is recovery under **2 s**: a supervisor that takes longer
//! than that to pick an audit back up after a crash would turn every
//! restart into a visible gap in the longitudinal record. The binary
//! exits non-zero above it so CI can gate on it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use adcomp_bench::{say, Cli};
use adcomp_core::{drift_between, EstimateSource, SourceError};
use adcomp_obs::MonotonicClock;
use adcomp_platform::{FaultKind, FaultPlan, Schedule};
use adcomp_serve::{
    run_clean, Daemon, FaultInjector, FaultPoint, ServeConfig, SimProvider, SourceProvider, Tick,
    CHAOS_KILL,
};
use adcomp_store::RunStore;
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};

/// Epochs in the timed throughput run.
const THROUGHPUT_EPOCHS: u64 = 3;
/// Required recovery-time-to-first-query ceiling.
const RECOVERY_FLOOR_MS: f64 = 2000.0;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("adcomp-bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config_at(root: &std::path::Path, cli: &Cli, max_epochs: u64) -> ServeConfig {
    let mut cfg = ServeConfig::default_at(root);
    cfg.seed = cli.seed;
    cfg.scale = cli.scale;
    cfg.max_epochs = max_epochs;
    cfg.interval_ms = 0; // back-to-back epochs: measuring work, not waits
    cfg.epoch_retries = 0;
    cfg.fsync = true;
    cfg
}

/// Noise + monotone drift: guarantees four-fifths crossings against a
/// clean previous epoch, so the alert path actually runs.
fn drifting_plan() -> FaultPlan {
    FaultPlan::new(41)
        .with(
            FaultKind::Noise { amplitude: 0.35 },
            Schedule::EveryNth {
                period: 2,
                offset: 0,
            },
        )
        .with(
            FaultKind::Drift { rate: 0.0005 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        )
}

/// Dies exactly once at one lifecycle fault point.
struct DieOnce {
    target: FaultPoint,
    armed: AtomicBool,
}

impl FaultInjector for DieOnce {
    fn should_die(&self, point: FaultPoint) -> bool {
        point == self.target && self.armed.swap(false, Ordering::AcqRel)
    }
}

/// Stamps the instant the first estimate after a reset reaches the
/// platform — the "first query" end of the recovery measurement.
struct TimestampSource {
    inner: Arc<dyn EstimateSource>,
    slot: Arc<Mutex<Option<Instant>>>,
}

impl EstimateSource for TimestampSource {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        {
            let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(Instant::now());
            }
        }
        self.inner.estimate(spec)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

struct TimestampProvider {
    inner: SimProvider,
    slot: Arc<Mutex<Option<Instant>>>,
}

impl SourceProvider for TimestampProvider {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn endpoints(&self, epoch: u64) -> Vec<Arc<dyn EstimateSource>> {
        self.inner
            .endpoints(epoch)
            .into_iter()
            .map(|inner| {
                Arc::new(TimestampSource {
                    inner,
                    slot: self.slot.clone(),
                }) as Arc<dyn EstimateSource>
            })
            .collect()
    }

    fn answered(&self) -> Option<u64> {
        self.inner.answered()
    }
}

fn main() {
    let cli = Cli::parse();

    // ── Epochs/sec with fsync journaling. ───────────────────────────
    let throughput_root = tmp_root("throughput");
    let throughput_cfg = config_at(&throughput_root, &cli, THROUGHPUT_EPOCHS);
    let provider = Arc::new(SimProvider::from_config(&throughput_cfg));
    let start = Instant::now();
    let outcome = run_clean(&throughput_cfg, provider).expect("throughput run");
    let throughput_s = start.elapsed().as_secs_f64();
    assert_eq!(outcome.digests.len(), THROUGHPUT_EPOCHS as usize);
    let epochs_per_sec = THROUGHPUT_EPOCHS as f64 / throughput_s;
    let queries_per_epoch = outcome.answered.unwrap_or(0) / THROUGHPUT_EPOCHS;

    // ── Recovery-time-to-first-query after a kill. ──────────────────
    //
    // Incarnation 1 dies between epochs 0 and 1; incarnation 2 must
    // recover the journal, see epoch 0 is done, and get epoch 1's first
    // fresh estimate onto the platform. The clock starts before the
    // daemon is even constructed — journal recovery is part of the bill.
    let recovery_root = tmp_root("recovery");
    let recovery_cfg = config_at(&recovery_root, &cli, 2);
    let slot = Arc::new(Mutex::new(None));
    let provider: Arc<dyn SourceProvider> = Arc::new(TimestampProvider {
        inner: SimProvider::from_config(&recovery_cfg),
        slot: slot.clone(),
    });
    let injector = Arc::new(DieOnce {
        target: FaultPoint::BetweenEpochs { epoch: 0 },
        armed: AtomicBool::new(true),
    });
    let mut daemon = Daemon::open(
        recovery_cfg.clone(),
        provider.clone(),
        Arc::new(MonotonicClock::new()),
    )
    .expect("incarnation 1")
    .with_injector(injector);
    let died = loop {
        match daemon.tick() {
            Ok(Tick::Finished) => break false,
            Ok(_) => {}
            Err(e) if e.to_string().contains(CHAOS_KILL) => break true,
            Err(e) => panic!("incarnation 1 failed: {e}"),
        }
    };
    assert!(died, "the injector must have killed incarnation 1");
    drop(daemon);

    *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
    let restart = Instant::now();
    let mut daemon = Daemon::open(recovery_cfg, provider, Arc::new(MonotonicClock::new()))
        .expect("incarnation 2");
    while daemon.tick().expect("resumed run") != Tick::Finished {}
    let first_query = slot
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .expect("the resumed epoch must query the platform");
    let recovery_ms = first_query.duration_since(restart).as_secs_f64() * 1e3;
    drop(daemon);

    // ── Alert latency: diff two recorded epochs, detect crossings. ──
    let alert_root = tmp_root("alert");
    let alert_cfg = config_at(&alert_root, &cli, 2);
    let provider = Arc::new(SimProvider::from_config(&alert_cfg).with_fault(1, drifting_plan()));
    let alert_outcome = run_clean(&alert_cfg, provider).expect("alerting run");
    assert!(
        alert_outcome.alerted_epochs.contains(&1),
        "the drifting epoch must alert"
    );
    let alert_start = Instant::now();
    let prev = RunStore::open(alert_cfg.epoch_dir(0)).expect("epoch 0 store");
    let cur = RunStore::open(alert_cfg.epoch_dir(1)).expect("epoch 1 store");
    let report = drift_between(&prev.snapshot(), &cur.snapshot());
    let crossings = report.ratio_moves.iter().filter(|m| m.crossed()).count();
    let alert_latency_ms = alert_start.elapsed().as_secs_f64() * 1e3;
    assert!(crossings > 0, "the alerting pair must show crossings");

    // ── Verdict. ────────────────────────────────────────────────────
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor_enforced = true; // recovery is single-threaded work: no hardware gate
    let pass = recovery_ms <= RECOVERY_FLOOR_MS;

    let json = format!(
        "{{\n  \"bench\": \"serve_resilience\",\n  \
         \"epochs\": {THROUGHPUT_EPOCHS},\n  \
         \"queries_per_epoch\": {queries_per_epoch},\n  \
         \"fsync\": true,\n  \
         \"epochs_per_sec\": {epochs_per_sec:.3},\n  \
         \"recovery_to_first_query_ms\": {recovery_ms:.2},\n  \
         \"alert_latency_ms\": {alert_latency_ms:.2},\n  \
         \"crossings\": {crossings},\n  \
         \"recovery_floor_ms\": {RECOVERY_FLOOR_MS:.0},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"floor_enforced\": {floor_enforced},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write("BENCH_serve_resilience.json", &json)
        .expect("write BENCH_serve_resilience.json");
    say!("{json}");
    adcomp_obs::info!(
        "serve resilience: {epochs_per_sec:.2} epochs/s fsynced, recovery to first query \
         {recovery_ms:.1} ms, alert latency {alert_latency_ms:.1} ms ({crossings} crossings)"
    );
    for root in [throughput_root, recovery_root, alert_root] {
        let _ = std::fs::remove_dir_all(root);
    }
    if !pass {
        adcomp_obs::error!(
            "recovery to first query {recovery_ms:.1} ms is above the {RECOVERY_FLOOR_MS:.0} ms \
             ceiling"
        );
        std::process::exit(1);
    }
}
