//! Measures run-store write and replay throughput and records the
//! numbers in `BENCH_store_throughput.json`.
//!
//! Three rates, all over realistic records (encoded `TargetingSpec` +
//! estimate payloads, the store's production workload):
//!
//! * **append, fsync-per-record** — every append is durable before the
//!   next query is issued (the paranoid multi-day-audit setting);
//! * **append, batched group-commit** — the default
//!   [`SyncPolicy::Batched`] durability, one fsync per 64 records;
//! * **replay** — cold-opening the store, which scans and checksums the
//!   whole WAL to rebuild the snapshot index (what a resumed or
//!   replayed experiment pays at startup).
//!
//! The batched/fsync ratio is the price of per-record durability; the
//! binary only fails if the store loses or corrupts records, never on
//! speed, so CI stays robust to noisy runners.

use std::time::Instant;

use adcomp_bench::{say, Cli};
use adcomp_core::recording::{encode_estimate, normalized_spec_key, KIND_ESTIMATE};
use adcomp_store::{RunStore, SyncPolicy, WalOptions};
use adcomp_targeting::{AttributeId, TargetingSpec};

/// Records per timed append run (kept modest so the fsync-per-record
/// mode finishes quickly even on slow disks).
const BATCHED_RECORDS: u32 = 50_000;
const FSYNC_RECORDS: u32 = 2_000;

fn spec_for(i: u32) -> TargetingSpec {
    // Two-attribute AND compositions over a synthetic catalog: the spec
    // shape discovery actually records.
    TargetingSpec::and_of([AttributeId(i % 997), AttributeId(997 + i / 997)]).normalized()
}

/// Appends `n` estimate records under `sync`, returning records/sec.
fn append_run(dir: &std::path::Path, sync: SyncPolicy, n: u32) -> f64 {
    let store = RunStore::open_with(
        dir,
        WalOptions {
            sync,
            ..WalOptions::default()
        },
    )
    .expect("open store");
    let start = Instant::now();
    for i in 0..n {
        let spec = spec_for(i);
        let key = normalized_spec_key("bench", &spec);
        let payload = encode_estimate(&spec, u64::from(i) * 10);
        store.append(KIND_ESTIMATE, key, &payload).expect("append");
    }
    store.sync().expect("final sync");
    n as f64 / start.elapsed().as_secs_f64()
}

/// Cold-opens the store and returns (records/sec recovered, records).
fn replay_run(dir: &std::path::Path) -> (f64, u64) {
    let start = Instant::now();
    let store = RunStore::open(dir).expect("reopen store");
    let recovered = store.stats().recovered;
    let secs = start.elapsed().as_secs_f64();
    (recovered as f64 / secs, recovered)
}

fn main() {
    let _cli = Cli::parse();
    let dir = std::env::temp_dir().join(format!("adcomp-bench-store-{}", std::process::id()));

    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let fsync_rate = append_run(&dir, SyncPolicy::EveryRecord, FSYNC_RECORDS);

    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let batched_rate = append_run(&dir, SyncPolicy::Batched(64), BATCHED_RECORDS);

    let (replay_rate, recovered) = replay_run(&dir);

    // Correctness gate: replay must see every unique key with the right
    // value (appends with duplicate keys are latest-wins in the index).
    let store = RunStore::open(&dir).expect("verify store");
    let mut pass = recovered == u64::from(BATCHED_RECORDS);
    for i in (0..BATCHED_RECORDS).step_by(977) {
        let spec = spec_for(i);
        let key = normalized_spec_key("bench", &spec);
        match store.get(key) {
            Some((KIND_ESTIMATE, payload)) => {
                let (decoded, value) =
                    adcomp_core::recording::decode_estimate(&payload).expect("decode");
                if decoded != spec || value != u64::from(i) * 10 {
                    pass = false;
                }
            }
            _ => pass = false,
        }
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    let durability_cost = batched_rate / fsync_rate.max(1.0);
    let json = format!(
        "{{\n  \"bench\": \"store_throughput\",\n  \
         \"append_fsync_per_record\": {{ \"records\": {FSYNC_RECORDS}, \"records_per_sec\": {fsync_rate:.0} }},\n  \
         \"append_batched_64\": {{ \"records\": {BATCHED_RECORDS}, \"records_per_sec\": {batched_rate:.0} }},\n  \
         \"replay\": {{ \"records\": {recovered}, \"records_per_sec\": {replay_rate:.0} }},\n  \
         \"batched_over_fsync\": {durability_cost:.1},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write("BENCH_store_throughput.json", &json)
        .expect("write BENCH_store_throughput.json");
    say!("{json}");
    adcomp_obs::info!(
        "store throughput: append {batched_rate:.0}/s batched, {fsync_rate:.0}/s fsync-per-record \
         ({durability_cost:.1}x), replay {replay_rate:.0}/s over {recovered} records"
    );
    if !pass {
        adcomp_obs::error!("store lost or corrupted records during the throughput run");
        std::process::exit(1);
    }
}
