//! Measures audit survey throughput in three execution modes and records
//! the verdict in `BENCH_survey_throughput.json`.
//!
//! The workload is [`survey_individuals`] — the base-population query
//! plus one constrained estimate per catalog attribute, the opening move
//! of every discovery experiment. It runs three ways:
//!
//! 1. **serial** — the plain in-process [`AuditTarget`], one query at a
//!    time (the pre-engine baseline);
//! 2. **pooled** — the same target with a 4-worker [`QueryEngine`]
//!    attached, so the one survey batch fans out across threads;
//! 3. **wire** — the pooled target pointed at a loopback wire server
//!    through [`RemoteSource`], whose pipelined `estimate_batch` keeps a
//!    window of tagged requests in flight per round-trip.
//!
//! All three modes must produce byte-identical surveys (asserted here,
//! not just in the test suite). The budget is an in-process pooled
//! speedup of **≥ 2×** at 4 workers; the binary exits non-zero below it,
//! so CI can gate on it. The floor is only enforceable where the
//! hardware can express parallelism: on a machine with fewer than two
//! available threads no pool can beat serial, so the verdict records
//! `floor_enforced: false` and passes (the numbers are still written).
//! The wire mode is recorded for the report but not gated — loopback
//! TCP cost is environment noise CI should not fail on.
//!
//! Also recorded: the per-query cost of cloning a `TargetingSpec`, i.e.
//! the allocation that `EstimateRequest::borrowed` (`Cow`) now avoids on
//! the platform hot path.

use std::sync::Arc;
use std::time::Instant;

use adcomp_bench::{context, say, Cli};
use adcomp_core::{
    survey_individuals, AuditTarget, EngineConfig, IndividualSurvey, QueryEngine, QUERIES_PER_SPEC,
};
use adcomp_platform::InterfaceKind;
use adcomp_targeting::{AttributeId, TargetingSpec};
use adcomp_wire::{serve, ServerConfig};
use discrimination_via_composition::RemoteSource;

/// Timed passes per mode (best-of).
const ROUNDS: usize = 5;
/// Engine worker threads — the size the speedup floor is defined at.
const WORKERS: usize = 4;
/// Required in-process pooled speedup over serial.
const THRESHOLD_SPEEDUP: f64 = 2.0;

/// Best-of-`ROUNDS` wall seconds for one full survey, plus the survey
/// itself (for cross-mode equality checks) and the query count.
fn measure_mode(target: &AuditTarget) -> (f64, IndividualSurvey, u64) {
    let survey = survey_individuals(target).expect("survey"); // warm-up
    let ops = (survey.entries.len() as u64 + 1) * QUERIES_PER_SPEC as u64; // (attrs + base) × 7
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let pass = survey_individuals(target).expect("survey");
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(pass.entries, survey.entries, "survey must be stable");
    }
    (best, survey, ops)
}

/// Best-of-`ROUNDS` ns per `TargetingSpec::clone` — the allocation the
/// `Cow`-borrowing `EstimateRequest` removes from each estimate query.
fn clone_cost_ns(catalog_len: u32) -> f64 {
    let specs: Vec<TargetingSpec> = (0..catalog_len)
        .map(|id| TargetingSpec::and_of([AttributeId(id)]))
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for spec in &specs {
            std::hint::black_box(spec.clone());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / specs.len() as f64);
    }
    best
}

fn main() {
    let cli = Cli::parse();
    let ctx = context(cli);
    let serial_target = ctx.target(InterfaceKind::FacebookNormal);
    let engine = Arc::new(QueryEngine::new(EngineConfig::with_workers(WORKERS)));
    let pooled_target = serial_target.with_engine(engine.clone());

    // The same platform behind a loopback wire server, queried through
    // the pipelined client by the same engine.
    let handle = serve(
        ctx.simulation.facebook.clone(),
        "127.0.0.1:0",
        ServerConfig::default().with_executors(WORKERS),
    )
    .expect("loopback server");
    let remote = Arc::new(RemoteSource::connect(handle.addr()).expect("connect"));
    let wire_target = AuditTarget::direct(remote).with_engine(engine);

    let (serial_s, serial_survey, ops) = measure_mode(&serial_target);
    let (pooled_s, pooled_survey, _) = measure_mode(&pooled_target);
    let (wire_s, wire_survey, _) = measure_mode(&wire_target);
    handle.shutdown();

    assert_eq!(
        serial_survey.entries, pooled_survey.entries,
        "pooled survey must be bit-identical to serial"
    );
    assert_eq!(
        serial_survey.entries, wire_survey.entries,
        "wire survey must be bit-identical to serial"
    );

    let qps = |s: f64| ops as f64 / s;
    let speedup_pooled = serial_s / pooled_s;
    let speedup_wire = serial_s / wire_s;
    let avoided_clone_ns = clone_cost_ns(serial_survey.entries.len() as u32);
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor_enforced = hardware_threads >= 2;
    let pass = !floor_enforced || speedup_pooled >= THRESHOLD_SPEEDUP;

    let json = format!(
        "{{\n  \"bench\": \"survey_throughput\",\n  \"queries_per_pass\": {ops},\n  \
         \"rounds\": {ROUNDS},\n  \"workers\": {WORKERS},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"serial_s\": {serial_s:.4},\n  \"pooled_s\": {pooled_s:.4},\n  \
         \"wire_pipelined_s\": {wire_s:.4},\n  \
         \"serial_qps\": {:.0},\n  \"pooled_qps\": {:.0},\n  \
         \"wire_pipelined_qps\": {:.0},\n  \
         \"speedup_pooled\": {speedup_pooled:.2},\n  \
         \"speedup_wire\": {speedup_wire:.2},\n  \
         \"threshold_speedup\": {THRESHOLD_SPEEDUP:.1},\n  \
         \"floor_enforced\": {floor_enforced},\n  \
         \"avoided_clone_ns_per_query\": {avoided_clone_ns:.1},\n  \
         \"pass\": {pass}\n}}\n",
        qps(serial_s),
        qps(pooled_s),
        qps(wire_s),
    );
    std::fs::write("BENCH_survey_throughput.json", &json)
        .expect("write BENCH_survey_throughput.json");
    say!("{json}");
    adcomp_obs::info!(
        "survey throughput: pooled {speedup_pooled:.2}x, wire {speedup_wire:.2}x over serial \
         ({ops} queries/pass, floor {THRESHOLD_SPEEDUP}x at {WORKERS} workers)"
    );
    if !floor_enforced {
        adcomp_obs::warn!(
            "only {hardware_threads} hardware thread(s) available; the {THRESHOLD_SPEEDUP}x \
             speedup floor cannot be enforced on this machine"
        );
    }
    if !pass {
        adcomp_obs::error!(
            "pooled speedup {speedup_pooled:.2}x is below the {THRESHOLD_SPEEDUP}x floor"
        );
        std::process::exit(1);
    }
}
