//! Table 1: median pairwise overlaps of the top-100 skewed compositions,
//! and Top-1 vs Top-10 (inclusion–exclusion) recall, per favoured
//! population and interface.

use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::experiments::table1::{table1, table1_tsv};

fn main() {
    let ctx = context(Cli::parse());
    let cells = timed("table 1", || table1(&ctx)).expect("table 1 drivers");

    say!("Table 1 — increasing recall across multiple skewed compositions");
    say!("(paper: median overlaps 17–23% FB-r / 2–15% FB / ~0–14% LinkedIn;");
    say!(" Top-10 recall far above Top-1, e.g. 6.1M vs 1.1M for FB-r females)\n");
    say!(
        "{:<12} {:<14} {:>10} {:>18} {:>18}",
        "favoured",
        "interface",
        "overlap",
        "top-1",
        "top-10"
    );
    for c in &cells {
        say!(
            "{:<12} {:<14} {:>10} {:>18} {:>18}",
            c.favoured.to_string(),
            c.target,
            c.median_overlap
                .map_or("-".into(), |v| format!("{:.2}%", v * 100.0)),
            c.top1_summary(),
            c.top10_summary()
        );
    }
    let tsv = table1_tsv(&cells);
    let mut lines = tsv.lines();
    let header = lines.next().unwrap_or_default().to_string();
    print_block("table1.tsv", &header, lines.map(|l| l.to_string()));
    finish("table1");
}
