//! Tables 2 and 3: illustrative Top 2-way compositions whose skew far
//! exceeds either component's, per platform and gender/age.

use adcomp_bench::{context, finish, print_block, say, timed, Cli};
use adcomp_core::experiments::examples::{table2, table3, ExampleRow};

const PER_CELL: usize = 5;

fn main() {
    let ctx = context(Cli::parse());
    let t2 = timed("table 2", || table2(&ctx, PER_CELL)).expect("table 2 drivers");
    let t3 = timed("table 3", || table3(&ctx, PER_CELL)).expect("table 3 drivers");

    say!("Tables 2 & 3 — illustrative amplifying compositions");
    say!("(paper: e.g. Electrical engineering (3.71) ∧ Cars (2.18) → 12.43)\n");
    for (name, rows) in [("Table 2 (gender)", &t2), ("Table 3 (age)", &t3)] {
        say!("--- {name} ---");
        for r in rows {
            say!(
                "{:<14} {:<8} {:<45} ∧ {:<45} {:>5.2} {:>5.2} → {:>6.2}",
                r.target,
                r.class.to_string(),
                r.name1,
                r.name2,
                r.ratio1,
                r.ratio2,
                r.combined
            );
        }
    }
    print_block(
        "tables23.tsv",
        ExampleRow::tsv_header(),
        t2.iter().chain(&t3).map(|r| r.tsv()),
    );
    finish("tables23");
}
