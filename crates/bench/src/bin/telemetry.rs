//! Measures the fleet-telemetry pipeline and records the verdict in
//! `BENCH_telemetry.json`.
//!
//! Two questions, both CI-gated:
//!
//! 1. **Push overhead** — the estimate hot path ([`measure_spec`] over
//!    the catalog) runs once with the kill switch off and once with
//!    telemetry fully on *and* a [`TelemetryPusher`] exporting a metric
//!    frame to a live aggregator every few specs. The pusher hands
//!    frames to a bounded queue and a background thread; the budget for
//!    everything together is **<5 %** over the kill-switch baseline.
//! 2. **Ingest throughput** — how many captured metric frames per
//!    second one [`Aggregator`] merges, both called directly and pushed
//!    through the wire service. Reported, not gated (it is hardware
//!    dependent); the JSON records it so regressions are visible in CI
//!    artifact diffs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adcomp_agg::{AggService, Aggregator, MetricsFrame, PusherConfig, Telemetry, TelemetryPusher};
use adcomp_bench::{context, say, Cli};
use adcomp_core::{measure_spec, AuditTarget};
use adcomp_obs::Registry;
use adcomp_platform::InterfaceKind;
use adcomp_serve::{status_frame, DaemonStatus};
use adcomp_targeting::{AttributeId, TargetingSpec};
use adcomp_wire::{serve_service, ServerConfig};

/// Workload passes per timed round — lengthens each round so the
/// best-of comparison is not dominated by scheduler jitter at small
/// scales.
const PASSES_PER_ROUND: usize = 4;
/// Timed rounds per mode (best-of).
const ROUNDS: usize = 9;
/// Catalog attributes per pass.
const MAX_SPECS: usize = 200;
/// Estimate queries issued by one `measure_spec` call.
const QUERIES_PER_SPEC: u64 = 7;
/// Push-overhead budget, in percent.
const THRESHOLD_PCT: f64 = 5.0;
/// Status-frame exports per workload pass in push mode — the daemon
/// pushes one [`status_frame`] per epoch, and one pass over the specs
/// is the bench's epoch; matching production cadence.
const PUSHES_PER_PASS: usize = 1;
/// Frames merged when timing aggregator ingest.
const INGEST_FRAMES: u64 = 2_000;

fn workload(
    target: &AuditTarget,
    specs: &[TargetingSpec],
    pusher: Option<(&TelemetryPusher, &DaemonStatus)>,
) -> u64 {
    let mut ops = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let m = measure_spec(target, spec).expect("estimate");
        std::hint::black_box(m.total);
        ops += QUERIES_PER_SPEC;
        if let Some((pusher, status)) = pusher {
            if i % (specs.len() / PUSHES_PER_PASS).max(1) == 0 {
                status
                    .epochs
                    .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                pusher.push(Telemetry::Metrics(status_frame(status)));
            }
        }
    }
    ops
}

/// One timed round — `PASSES_PER_ROUND` workload passes. Rounds for
/// the two modes are interleaved by the caller so slow load drift on
/// the host hits both equally.
fn timed_round(
    target: &AuditTarget,
    specs: &[TargetingSpec],
    enabled: bool,
    pusher: Option<(&TelemetryPusher, &DaemonStatus)>,
) -> (f64, u64) {
    adcomp_obs::set_enabled(enabled);
    let start = Instant::now();
    let mut ops = 0;
    for _ in 0..PASSES_PER_ROUND {
        ops += workload(target, specs, pusher);
    }
    (start.elapsed().as_nanos() as f64 / ops as f64, ops)
}

/// Frames per second the aggregator merges, direct and over the wire.
fn ingest_throughput(frame: &Telemetry) -> (f64, f64) {
    // Direct: the merge cost alone.
    let agg = Aggregator::new();
    let start = Instant::now();
    for seq in 0..INGEST_FRAMES {
        agg.ingest("bench-direct", seq + 1, frame.clone());
    }
    let direct = INGEST_FRAMES as f64 / start.elapsed().as_secs_f64();

    // Wire: decode + merge behind the TCP service, one client, one
    // connection — the shape a daemon's pusher produces.
    let agg = Arc::new(Aggregator::new());
    let handle = serve_service(
        Arc::new(AggService::new(agg.clone())),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind aggregator");
    let client = adcomp_wire::Client::connect(handle.addr()).expect("connect");
    let payload = adcomp_wire::to_bytes(frame);
    let start = Instant::now();
    for seq in 0..INGEST_FRAMES {
        client
            .telemetry_push("bench-wire", seq + 1, payload.clone())
            .expect("push");
    }
    let wire = INGEST_FRAMES as f64 / start.elapsed().as_secs_f64();
    handle.shutdown();
    (direct, wire)
}

fn main() {
    let cli = Cli::parse();
    let ctx = context(cli);
    let target = ctx.target(InterfaceKind::FacebookNormal);
    let n = ctx.simulation.facebook.catalog().len().min(MAX_SPECS);
    let specs: Vec<TargetingSpec> = (0..n as u32)
        .map(|id| TargetingSpec::and_of([AttributeId(id)]))
        .collect();

    // A live aggregator for the push mode to export into.
    let agg = Arc::new(Aggregator::new());
    let handle = serve_service(
        Arc::new(AggService::new(agg.clone())),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind aggregator");
    let pusher = TelemetryPusher::start(PusherConfig::new(handle.addr().to_string(), "bench-push"));

    let status = DaemonStatus::new();
    let push = Some((&pusher, status.as_ref()));
    // Warm-up: one untimed round per mode (caches, pusher connection).
    timed_round(&target, &specs, false, None);
    timed_round(&target, &specs, true, push);
    let (mut baseline, mut pushed) = (f64::INFINITY, f64::INFINITY);
    let mut ops = 0;
    for _ in 0..ROUNDS {
        let (ns, _) = timed_round(&target, &specs, false, None);
        baseline = baseline.min(ns);
        let (ns, o) = timed_round(&target, &specs, true, push);
        pushed = pushed.min(ns);
        ops = o;
    }
    adcomp_obs::set_enabled(true);
    pusher.flush(Duration::from_secs(5));
    let frames_pushed = agg.pushes_total();
    drop(pusher);
    handle.shutdown();

    let overhead_pct = if baseline > 0.0 {
        (pushed - baseline) / baseline * 100.0
    } else {
        0.0
    };
    let pass = overhead_pct < THRESHOLD_PCT;

    // Ingest throughput on a frame the size the workload produced.
    let frame = Telemetry::Metrics(MetricsFrame::capture(Registry::global()));
    let (ingest_direct, ingest_wire) = ingest_throughput(&frame);

    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"ops_per_round\": {ops},\n  \
         \"rounds\": {ROUNDS},\n  \"baseline_ns_per_op\": {baseline:.1},\n  \
         \"push_ns_per_op\": {pushed:.1},\n  \
         \"push_overhead_pct\": {overhead_pct:.2},\n  \
         \"threshold_pct\": {THRESHOLD_PCT:.1},\n  \
         \"frames_pushed\": {frames_pushed},\n  \
         \"ingest_direct_frames_per_sec\": {ingest_direct:.0},\n  \
         \"ingest_wire_frames_per_sec\": {ingest_wire:.0},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");
    say!("{json}");
    adcomp_obs::info!(
        "telemetry push overhead: {overhead_pct:.2}% ({pushed:.1} vs {baseline:.1} ns/query, \
         budget {THRESHOLD_PCT}%); ingest {ingest_direct:.0}/s direct, {ingest_wire:.0}/s wire"
    );
    if !pass {
        adcomp_obs::error!("telemetry push overhead exceeds the {THRESHOLD_PCT}% budget");
        std::process::exit(1);
    }
}
