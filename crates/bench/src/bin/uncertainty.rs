//! Benchmarks bootstrap replicate throughput for the uncertainty
//! subsystem and records the verdict in `BENCH_uncertainty.json`.
//!
//! Three things are measured and gated:
//!
//! 1. **Determinism** — replicate `r` is a pure function of
//!    `(seed, r)`, so fanning the bootstrap out through the query
//!    engine at any worker count must reproduce the serial run
//!    byte-for-byte (`f64::to_bits` on every replicate). A mismatch
//!    fails the bench outright, on any hardware.
//! 2. **Coverage sanity** — the confident ratio assembled from the
//!    replicates must contain its own point estimate; an interval that
//!    excluded the statistic it resampled from would be an artefact.
//! 3. **Throughput** — replicates per second, serial vs engine-pooled.
//!    The pooled floor (≥ 1.0× at 4 workers: pooling must at least not
//!    cost throughput) is only enforced where the hardware can express
//!    parallelism; a single replicate is a handful of binomial draws,
//!    so the engine's dispatch overhead is the quantity under test.

use std::sync::Arc;
use std::time::Instant;

use adcomp_bench::{finish, say, Cli};
use adcomp_core::source::{ApiSource, AuditTarget, SensitiveClass};
use adcomp_core::{
    bootstrap_ratios, confident_rep_ratio, measure_spec, ClassChannel, EngineConfig, MeasuredPair,
    QueryEngine, UncertaintyConfig,
};
use adcomp_platform::{SimScale, Simulation};
use adcomp_population::{AttributeInference, Gender};
use adcomp_targeting::{AttributeId, TargetingSpec};

/// Timed passes per configuration (best-of).
const ROUNDS_BEST_OF: usize = 2;
/// Pooled throughput floor relative to serial, at 4 workers.
const THRESHOLD_SPEEDUP: f64 = 1.0;

struct Params {
    /// Bootstrap replicates per timed pass.
    replicates: u32,
}

impl Params {
    fn for_scale(scale: SimScale) -> Params {
        match scale {
            SimScale::Paper => Params {
                replicates: 200_000,
            },
            SimScale::Test => Params { replicates: 50_000 },
        }
    }
}

fn best_of(f: impl Fn() -> Vec<f64>) -> (f64, Vec<f64>) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..ROUNDS_BEST_OF {
        let start = Instant::now();
        let pass = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(pass);
    }
    (best, out.expect("at least one pass"))
}

fn main() {
    let cli = Cli::parse();
    let p = Params::for_scale(cli.scale);
    let sim = Simulation::build(cli.seed, cli.scale);

    // Real measured counts through the audited pipeline: the whole
    // universe as the base, the first catalog attribute as the target,
    // observed through a noisy inference channel so the deconvolution
    // path is part of every replicate.
    let audit = AuditTarget::direct(Arc::new(ApiSource(sim.facebook.clone())));
    let base_m = measure_spec(&audit, &TargetingSpec::everyone()).expect("measure base");
    let target_m =
        measure_spec(&audit, &TargetingSpec::and_of([AttributeId(0)])).expect("measure target");
    let class = SensitiveClass::Gender(Gender::Female);
    let rounding = sim.facebook.config().rounding;
    let base = MeasuredPair::of(&base_m, class, rounding);
    let target = MeasuredPair::of(&target_m, class, rounding);
    let inference = AttributeInference::noisy(cli.seed ^ 0x1A7E5, 0.08, 0.12);
    let channel = ClassChannel::for_class(Some(&inference), class);
    say!(
        "{} replicates/pass over target {}/{} vs base {}/{}",
        p.replicates,
        target.class_count,
        target.complement_count,
        base.class_count,
        base.complement_count
    );

    let run = |engine: Option<&Arc<QueryEngine>>| {
        bootstrap_ratios(cli.seed, &target, &base, &channel, p.replicates, engine)
    };
    let (serial_s, serial) = best_of(|| run(None));
    let pooled2 = Arc::new(QueryEngine::new(EngineConfig::with_workers(2)));
    let pooled4 = Arc::new(QueryEngine::new(EngineConfig::with_workers(4)));
    let (_, two_worker) = best_of(|| run(Some(&pooled2)));
    let (pooled_s, pooled) = best_of(|| run(Some(&pooled4)));

    // Gate 1: byte-identity across serial and both pool widths.
    let bits = |v: &[f64]| v.iter().map(|r| r.to_bits()).collect::<Vec<u64>>();
    let byte_identical = bits(&serial) == bits(&pooled) && bits(&serial) == bits(&two_worker);

    // Gate 2: the assembled confident ratio contains its point.
    let ucfg = UncertaintyConfig {
        replicates: p.replicates.min(512),
        confidence: 0.95,
    };
    let ratio = confident_rep_ratio(&target, &base, &channel, cli.seed, &ucfg, None);
    let contains_point = ratio.interval.contains(ratio.point);

    // Gate 3: throughput floor, where enforceable.
    let serial_per_s = p.replicates as f64 / serial_s;
    let pooled_per_s = p.replicates as f64 / pooled_s;
    let speedup = serial_s / pooled_s;
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor_enforced = hardware_threads >= 2;
    let pass =
        byte_identical && contains_point && (!floor_enforced || speedup >= THRESHOLD_SPEEDUP);

    let json = format!(
        "{{\n  \"bench\": \"uncertainty\",\n  \"replicates_per_pass\": {replicates},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"serial_s\": {serial_s:.4},\n  \"pooled_s\": {pooled_s:.4},\n  \
         \"serial_replicates_per_s\": {serial_per_s:.0},\n  \
         \"pooled_replicates_per_s\": {pooled_per_s:.0},\n  \
         \"speedup_4_workers\": {speedup:.2},\n  \
         \"threshold_speedup\": {THRESHOLD_SPEEDUP:.1},\n  \
         \"ratio_point\": {point:.4},\n  \
         \"ratio_lo\": {lo:.4},\n  \"ratio_hi\": {hi:.4},\n  \
         \"verdict\": \"{verdict}\",\n  \
         \"contains_point\": {contains_point},\n  \
         \"byte_identical\": {byte_identical},\n  \
         \"floor_enforced\": {floor_enforced},\n  \"pass\": {pass}\n}}\n",
        replicates = p.replicates,
        point = ratio.point,
        lo = ratio.interval.lo,
        hi = ratio.interval.hi,
        verdict = ratio.verdict().label(),
    );
    std::fs::write("BENCH_uncertainty.json", &json).expect("write BENCH_uncertainty.json");
    say!("{json}");
    adcomp_obs::info!(
        "uncertainty: {serial_per_s:.0} replicates/s serial, {speedup:.2}x at 4 workers; \
         ratio {:.2} in [{:.2}, {:.2}]",
        ratio.point,
        ratio.interval.lo,
        ratio.interval.hi
    );
    if !floor_enforced {
        adcomp_obs::warn!(
            "only {hardware_threads} hardware thread(s) available; the {THRESHOLD_SPEEDUP}x \
             pooling floor cannot be enforced on this machine"
        );
    }
    finish("uncertainty");
    if !pass {
        adcomp_obs::error!(
            "uncertainty bench failed: byte_identical={byte_identical} \
             contains_point={contains_point} speedup={speedup:.2}"
        );
        std::process::exit(1);
    }
}
