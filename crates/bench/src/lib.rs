//! Shared harness for the experiment binaries.
//!
//! Every binary regenerates one paper artifact (figure or table). They
//! all accept the same flags:
//!
//! ```text
//! --scale test|paper   simulation size (default: paper)
//! --seed N             simulation seed (default: 2020)
//! --top-k N            discovery size (default: 1000 at paper scale)
//! --quiet              only warnings/errors on stderr, no narration
//! ```
//!
//! Output convention: a human-readable summary on stdout (suppressed by
//! `--quiet`; emit it with [`say!`]), then the machine-readable TSV
//! blocks (separated by `== <name> ==` markers) that EXPERIMENTS.md's
//! numbers are drawn from. Diagnostics (build/stage timings) go through
//! the `adcomp-obs` logging facade to stderr. Each binary ends with
//! [`finish`], which snapshots the global metrics registry next to its
//! TSVs and prints the end-of-run report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use adcomp_core::experiments::{ExperimentConfig, ExperimentContext};
use adcomp_core::DiscoveryConfig;
use adcomp_obs::{Registry, RunReport};
use adcomp_platform::SimScale;

/// Parsed command-line flags.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Simulation size.
    pub scale: SimScale,
    /// Simulation seed.
    pub seed: u64,
    /// Discovery top-k.
    pub top_k: usize,
    /// Suppress narration and info-level diagnostics.
    pub quiet: bool,
}

impl Cli {
    /// Parses `std::env::args`; exits with a usage message on bad flags.
    /// Also applies `--quiet` to the global logging facade, so every
    /// layer honours it.
    pub fn parse() -> Cli {
        let mut scale = SimScale::Paper;
        let mut seed = 2020u64;
        let mut top_k: Option<usize> = None;
        let mut quiet = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => match args.next().as_deref() {
                    Some("test") => scale = SimScale::Test,
                    Some("paper") => scale = SimScale::Paper,
                    other => usage(&format!("bad --scale value: {other:?}")),
                },
                "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => seed = v,
                    None => usage("--seed needs an integer"),
                },
                "--top-k" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => top_k = Some(v),
                    None => usage("--top-k needs an integer"),
                },
                "--quiet" | "-q" => quiet = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        let top_k = top_k.unwrap_or(match scale {
            SimScale::Paper => 1000,
            SimScale::Test => 100,
        });
        adcomp_obs::log::set_quiet(quiet);
        Cli {
            scale,
            seed,
            top_k,
            quiet,
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <bin> [--scale test|paper] [--seed N] [--top-k N] [--quiet]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Whether stdout narration is on (off under `--quiet`). The [`say!`]
/// macro checks this; TSV blocks print unconditionally.
pub fn narrating() -> bool {
    adcomp_obs::log::enabled(adcomp_obs::log::Level::Info)
}

/// `println!` for human narration: suppressed under `--quiet`, so stdout
/// can be piped clean. Machine-readable blocks still use
/// [`print_block`].
#[macro_export]
macro_rules! say {
    ($($arg:tt)*) => {
        if $crate::narrating() {
            println!($($arg)*);
        }
    };
}

/// Builds the experiment context, reporting build time.
pub fn context(cli: Cli) -> ExperimentContext {
    let start = Instant::now();
    let config = ExperimentConfig {
        seed: cli.seed,
        scale: cli.scale,
        discovery: DiscoveryConfig {
            top_k: cli.top_k,
            ..DiscoveryConfig::default()
        },
        resilience: None,
        inference: None,
    };
    let ctx = ExperimentContext::new(config);
    adcomp_obs::info!(
        "simulation built in {:.1}s (scale {:?}, seed {}, top-k {})",
        start.elapsed().as_secs_f64(),
        cli.scale,
        cli.seed,
        cli.top_k
    );
    ctx
}

/// Prints a named TSV block.
pub fn print_block(name: &str, header: &str, rows: impl IntoIterator<Item = String>) {
    println!("\n== {name} ==");
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}

/// Runs a stage inside a trace span, logging its wall time.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let _span = adcomp_obs::Tracer::global().span_with("bench:stage", &[("label", label.into())]);
    let start = Instant::now();
    let out = f();
    adcomp_obs::info!("{label}: {:.1}s", start.elapsed().as_secs_f64());
    out
}

/// Ends a binary's run: writes the Prometheus snapshot of the global
/// registry to `results/<name>_metrics.prom` and prints the end-of-run
/// report (always when degraded; otherwise only when narrating).
/// Returns the snapshot path.
pub fn finish(name: &str) -> PathBuf {
    let dir = Path::new("results");
    let _ = fs::create_dir_all(dir);
    let path = dir.join(format!("{name}_metrics.prom"));
    let registry = Registry::global();
    match fs::write(&path, registry.render_prometheus()) {
        Ok(()) => adcomp_obs::info!("metrics snapshot: {}", path.display()),
        Err(e) => adcomp_obs::warn!("could not write {}: {e}", path.display()),
    }

    let snap = registry.snapshot();
    let mut report = RunReport::new(name);
    let skipped = snap.counter("adcomp_skipped_total");
    if skipped > 0 {
        report.degradation(format!("{skipped} spec(s) skipped after exhausted retries"));
    }
    let probe_warnings = snap.counter("adcomp_probe_warnings_total");
    if probe_warnings > 0 {
        report.degradation(format!("{probe_warnings} consistency-probe warning(s)"));
    }
    let low_budget = snap.counter("adcomp_budget_low_warnings_total");
    if low_budget > 0 {
        report.degradation(format!("query budget ran low {low_budget} time(s)"));
    }
    report.note(format!("snapshot: {}", path.display()));
    if report.degraded() || narrating() {
        eprint!("{}", report.render());
    }
    path
}
