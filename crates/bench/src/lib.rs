//! Shared harness for the experiment binaries.
//!
//! Every binary regenerates one paper artifact (figure or table). They
//! all accept the same flags:
//!
//! ```text
//! --scale test|paper   simulation size (default: paper)
//! --seed N             simulation seed (default: 2020)
//! --top-k N            discovery size (default: 1000 at paper scale)
//! ```
//!
//! Output convention: a human-readable summary on stdout, then the
//! machine-readable TSV blocks (separated by `== <name> ==` markers) that
//! EXPERIMENTS.md's numbers are drawn from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;

use std::time::Instant;

use adcomp_core::experiments::{ExperimentConfig, ExperimentContext};
use adcomp_core::DiscoveryConfig;
use adcomp_platform::SimScale;

/// Parsed command-line flags.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Simulation size.
    pub scale: SimScale,
    /// Simulation seed.
    pub seed: u64,
    /// Discovery top-k.
    pub top_k: usize,
}

impl Cli {
    /// Parses `std::env::args`; exits with a usage message on bad flags.
    pub fn parse() -> Cli {
        let mut scale = SimScale::Paper;
        let mut seed = 2020u64;
        let mut top_k: Option<usize> = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => match args.next().as_deref() {
                    Some("test") => scale = SimScale::Test,
                    Some("paper") => scale = SimScale::Paper,
                    other => usage(&format!("bad --scale value: {other:?}")),
                },
                "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => seed = v,
                    None => usage("--seed needs an integer"),
                },
                "--top-k" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => top_k = Some(v),
                    None => usage("--top-k needs an integer"),
                },
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        let top_k = top_k.unwrap_or(match scale {
            SimScale::Paper => 1000,
            SimScale::Test => 100,
        });
        Cli { scale, seed, top_k }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <bin> [--scale test|paper] [--seed N] [--top-k N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Builds the experiment context, reporting build time.
pub fn context(cli: Cli) -> ExperimentContext {
    let start = Instant::now();
    let config = ExperimentConfig {
        seed: cli.seed,
        scale: cli.scale,
        discovery: DiscoveryConfig {
            top_k: cli.top_k,
            ..DiscoveryConfig::default()
        },
        resilience: None,
    };
    let ctx = ExperimentContext::new(config);
    eprintln!(
        "# simulation built in {:.1}s (scale {:?}, seed {}, top-k {})",
        start.elapsed().as_secs_f64(),
        cli.scale,
        cli.seed,
        cli.top_k
    );
    ctx
}

/// Prints a named TSV block.
pub fn print_block(name: &str, header: &str, rows: impl IntoIterator<Item = String>) {
    println!("\n== {name} ==");
    println!("{header}");
    for row in rows {
        println!("{row}");
    }
}

/// Runs a stage, printing its wall time to stderr.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("# {label}: {:.1}s", start.elapsed().as_secs_f64());
    out
}
