//! ASCII box plots for the figure binaries.
//!
//! The paper's figures are box plots of representation ratios on a log₂
//! axis with the four-fifths thresholds (0.8, 1.25) marked. This module
//! renders the same thing in a terminal:
//!
//! ```text
//! Individual    |----------[####|#######]-------------|        n=393
//!               0.25       0.8  1    1.25             8
//! ```
//!
//! Whiskers span p10..p90, the box p25..p75, `|` inside the box is the
//! median. Values are clamped into the plot range.

use adcomp_core::{BoxStats, FOUR_FIFTHS_HIGH, FOUR_FIFTHS_LOW};

/// A rendered plot row.
#[derive(Clone, Debug)]
pub struct PlotRow {
    /// Row label (set + class).
    pub label: String,
    /// The statistics to draw.
    pub stats: BoxStats,
}

/// Renders box plots on a shared log₂ axis.
///
/// `lo`/`hi` bound the axis (values outside are clamped); `width` is the
/// number of character cells for the axis. Returns the multi-line string
/// (one row per plot plus an axis legend).
pub fn render_log2(rows: &[PlotRow], lo: f64, hi: f64, width: usize) -> String {
    assert!(lo > 0.0 && hi > lo, "need a positive, non-empty range");
    assert!(width >= 16, "axis too narrow to draw");
    let label_width = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(8);
    let pos = |v: f64| -> usize {
        let v = v.max(lo).min(hi);
        let frac = (v.log2() - lo.log2()) / (hi.log2() - lo.log2());
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };

    let mut out = String::new();
    for row in rows {
        let mut cells: Vec<char> = vec![' '; width];
        let (w_lo, b_lo, med, b_hi, w_hi) = (
            pos(row.stats.p10),
            pos(row.stats.p25),
            pos(row.stats.median),
            pos(row.stats.p75),
            pos(row.stats.p90),
        );
        for cell in cells.iter_mut().take(w_hi + 1).skip(w_lo) {
            *cell = '-';
        }
        for cell in cells.iter_mut().take(b_hi + 1).skip(b_lo) {
            *cell = '#';
        }
        cells[w_lo] = '|';
        cells[w_hi] = '|';
        cells[med] = 'M';
        // Four-fifths guides, where they fall inside the range and are
        // not covered by the box.
        for guide in [FOUR_FIFTHS_LOW, FOUR_FIFTHS_HIGH] {
            if guide > lo && guide < hi {
                let g = pos(guide);
                if cells[g] == ' ' || cells[g] == '-' {
                    cells[g] = ':';
                }
            }
        }
        let bar: String = cells.into_iter().collect();
        out.push_str(&format!(
            "{:<label_width$} {} n={}\n",
            row.label, bar, row.stats.n
        ));
    }
    // Axis legend: lo, 1.0 and hi positions.
    let mut legend: Vec<char> = vec![' '; width];
    legend[0] = '^';
    if 1.0 > lo && 1.0 < hi {
        legend[pos(1.0)] = '^';
    }
    legend[width - 1] = '^';
    out.push_str(&format!(
        "{:<label_width$} {}\n",
        "",
        legend.iter().collect::<String>()
    ));
    out.push_str(&format!(
        "{:<label_width$} {:<w2$}1{:>w3$}\n",
        "",
        format!("{lo}"),
        format!("{hi}"),
        w2 = pos(1.0),
        w3 = width - pos(1.0) - 1,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(p10: f64, p25: f64, median: f64, p75: f64, p90: f64) -> BoxStats {
        BoxStats {
            n: 100,
            min: p10 / 2.0,
            p10,
            p25,
            median,
            p75,
            p90,
            max: p90 * 2.0,
        }
    }

    #[test]
    fn renders_ordered_glyphs() {
        let rows = vec![PlotRow {
            label: "Top 2-way".into(),
            stats: stats(2.0, 3.0, 4.0, 6.0, 9.0),
        }];
        let s = render_log2(&rows, 0.25, 16.0, 48);
        let line = s.lines().next().unwrap();
        // Whisker, box and median markers all present, in order.
        let bar = &line["Top 2-way".len() + 1..];
        let first_pipe = bar.find('|').unwrap();
        let m = bar.find('M').unwrap();
        let last_pipe = bar.rfind('|').unwrap();
        assert!(first_pipe < m && m < last_pipe, "{bar}");
        assert!(bar.contains('#'));
        assert!(line.ends_with("n=100"));
    }

    #[test]
    fn guides_visible_for_centered_distribution() {
        let rows = vec![PlotRow {
            label: "Individual".into(),
            stats: stats(0.5, 0.9, 1.0, 1.1, 2.0),
        }];
        let s = render_log2(&rows, 0.125, 8.0, 64);
        // The 0.8/1.25 guides appear as ':' somewhere when outside the box.
        // (With the box covering 0.9..1.1, both guides sit outside it.)
        assert!(s.lines().next().unwrap().contains(':'), "{s}");
    }

    #[test]
    fn clamps_out_of_range_values() {
        let rows = vec![PlotRow {
            label: "Extreme".into(),
            stats: stats(0.0001, 0.001, 50.0, 500.0, 5_000.0),
        }];
        let s = render_log2(&rows, 0.25, 16.0, 40);
        // Label column is padded to at least 8 characters.
        let label_width = "Extreme".len().max(8);
        assert_eq!(
            s.lines().next().unwrap().len(),
            label_width + 1 + 40 + " n=100".len()
        );
    }

    #[test]
    fn legend_includes_bounds_and_one() {
        let rows = vec![PlotRow {
            label: "X".into(),
            stats: stats(0.5, 0.7, 1.0, 1.4, 2.0),
        }];
        let s = render_log2(&rows, 0.25, 4.0, 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "{s}");
        assert!(lines[2].contains("0.25") && lines[2].contains('1') && lines[2].contains('4'));
    }

    #[test]
    #[should_panic(expected = "positive, non-empty range")]
    fn rejects_bad_range() {
        let _ = render_log2(&[], 0.0, 1.0, 40);
    }
}
