//! Chunk containers: the low-16-bit sets stored per 65 536-value chunk.
//!
//! Canonical form invariants (upheld by every constructor and mutation):
//!
//! * `Array` holds 1..=4096 sorted, distinct values.
//! * `Bitmap` holds 4097..=65536 values; `len` caches the population count.
//! * `Run` holds sorted, non-overlapping, non-adjacent inclusive intervals
//!   and only exists after an explicit `run_optimize` call; mutations
//!   convert back to a dense layout first.

/// Maximum cardinality stored as a sorted array.
pub(crate) const ARRAY_MAX: usize = 4096;
/// Number of `u64` words in a bitmap container.
pub(crate) const BITMAP_WORDS: usize = 1024;

/// An inclusive interval of `u16` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Interval {
    pub start: u16,
    pub end: u16,
}

impl Interval {
    #[inline]
    pub fn len(self) -> u32 {
        self.end as u32 - self.start as u32 + 1
    }
}

#[derive(Clone)]
pub(crate) enum Container {
    /// Sorted distinct values; ≤ [`ARRAY_MAX`] entries.
    Array(Vec<u16>),
    /// Fixed bit array with cached population count; > [`ARRAY_MAX`] entries.
    Bitmap {
        /// 65 536 bits.
        bits: Box<[u64; BITMAP_WORDS]>,
        /// Cached cardinality.
        len: u32,
    },
    /// Sorted, coalesced inclusive intervals (read-optimised encoding).
    Run(Vec<Interval>),
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Container::Array(v) => write!(f, "Array(len={})", v.len()),
            Container::Bitmap { len, .. } => write!(f, "Bitmap(len={len})"),
            Container::Run(runs) => write!(f, "Run(runs={}, len={})", runs.len(), self.len()),
        }
    }
}

impl PartialEq for Container {
    fn eq(&self, other: &Self) -> bool {
        // Equality is semantic: Run containers are an opt-in re-encoding, so
        // compare by contents rather than layout.
        if self.len() != other.len() {
            return false;
        }
        let mut a = self.iter_values();
        let mut b = other.iter_values();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (x, y) if x == y => continue,
                _ => return false,
            }
        }
    }
}

impl Eq for Container {}

impl Container {
    /// A container holding exactly one value.
    pub fn singleton(value: u16) -> Self {
        Container::Array(vec![value])
    }

    /// Builds a canonical container from sorted distinct values.
    pub fn from_sorted_slice(values: &[u16]) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(!values.is_empty());
        if values.len() <= ARRAY_MAX {
            Container::Array(values.to_vec())
        } else {
            let mut bits = Box::new([0u64; BITMAP_WORDS]);
            for &v in values {
                bits[(v >> 6) as usize] |= 1u64 << (v & 63);
            }
            Container::Bitmap {
                bits,
                len: values.len() as u32,
            }
        }
    }

    /// Builds a canonical container from a bitmap with known cardinality.
    pub fn from_bitmap(bits: Box<[u64; BITMAP_WORDS]>, len: u32) -> Self {
        debug_assert_eq!(
            len as usize,
            bits.iter().map(|w| w.count_ones() as usize).sum::<usize>()
        );
        if len as usize <= ARRAY_MAX {
            let mut values = Vec::with_capacity(len as usize);
            for (word_idx, &word) in bits.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros();
                    values.push(((word_idx as u32) << 6 | bit) as u16);
                    w &= w - 1;
                }
            }
            Container::Array(values)
        } else {
            Container::Bitmap { bits, len }
        }
    }

    pub fn len(&self) -> u32 {
        match self {
            Container::Array(values) => values.len() as u32,
            Container::Bitmap { len, .. } => *len,
            Container::Run(runs) => runs.iter().map(|r| r.len()).sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        match self {
            Container::Array(values) => values.is_empty(),
            Container::Bitmap { len, .. } => *len == 0,
            Container::Run(runs) => runs.is_empty(),
        }
    }

    pub fn contains(&self, value: u16) -> bool {
        match self {
            Container::Array(values) => values.binary_search(&value).is_ok(),
            Container::Bitmap { bits, .. } => {
                bits[(value >> 6) as usize] & (1u64 << (value & 63)) != 0
            }
            Container::Run(runs) => runs
                .binary_search_by(|r| {
                    if r.end < value {
                        std::cmp::Ordering::Less
                    } else if r.start > value {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .is_ok(),
        }
    }

    /// Inserts `value`; converts to a dense layout when needed.
    pub fn insert(&mut self, value: u16) -> bool {
        self.undo_runs();
        match self {
            Container::Array(values) => match values.binary_search(&value) {
                Ok(_) => false,
                Err(idx) => {
                    values.insert(idx, value);
                    if values.len() > ARRAY_MAX {
                        *self = Container::from_sorted_slice(&std::mem::take(values));
                    }
                    true
                }
            },
            Container::Bitmap { bits, len } => {
                let word = &mut bits[(value >> 6) as usize];
                let mask = 1u64 << (value & 63);
                if *word & mask != 0 {
                    false
                } else {
                    *word |= mask;
                    *len += 1;
                    true
                }
            }
            Container::Run(_) => unreachable!("undo_runs converted runs away"),
        }
    }

    /// Removes `value`; demotes bitmap to array at the threshold.
    pub fn remove(&mut self, value: u16) -> bool {
        self.undo_runs();
        match self {
            Container::Array(values) => match values.binary_search(&value) {
                Ok(idx) => {
                    values.remove(idx);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap { bits, len } => {
                let word = &mut bits[(value >> 6) as usize];
                let mask = 1u64 << (value & 63);
                if *word & mask == 0 {
                    false
                } else {
                    *word &= !mask;
                    *len -= 1;
                    if (*len as usize) <= ARRAY_MAX {
                        let bits = std::mem::replace(bits, Box::new([0u64; BITMAP_WORDS]));
                        let len = *len;
                        *self = Container::from_bitmap(bits, len);
                    }
                    true
                }
            }
            Container::Run(_) => unreachable!("undo_runs converted runs away"),
        }
    }

    pub fn min(&self) -> Option<u16> {
        match self {
            Container::Array(values) => values.first().copied(),
            Container::Bitmap { bits, .. } => {
                for (i, &w) in bits.iter().enumerate() {
                    if w != 0 {
                        return Some(((i as u32) << 6 | w.trailing_zeros()) as u16);
                    }
                }
                None
            }
            Container::Run(runs) => runs.first().map(|r| r.start),
        }
    }

    pub fn max(&self) -> Option<u16> {
        match self {
            Container::Array(values) => values.last().copied(),
            Container::Bitmap { bits, .. } => {
                for (i, &w) in bits.iter().enumerate().rev() {
                    if w != 0 {
                        return Some(((i as u32) << 6 | (63 - w.leading_zeros())) as u16);
                    }
                }
                None
            }
            Container::Run(runs) => runs.last().map(|r| r.end),
        }
    }

    /// Number of values `<= value` within this container.
    pub fn rank(&self, value: u16) -> u32 {
        match self {
            Container::Array(values) => match values.binary_search(&value) {
                Ok(idx) => idx as u32 + 1,
                Err(idx) => idx as u32,
            },
            Container::Bitmap { bits, .. } => {
                let word_idx = (value >> 6) as usize;
                let mut rank: u32 = bits[..word_idx].iter().map(|w| w.count_ones()).sum();
                let within = value & 63;
                // Mask keeps bits [0, within] of the boundary word.
                let mask = if within == 63 {
                    u64::MAX
                } else {
                    (1u64 << (within + 1)) - 1
                };
                rank += (bits[word_idx] & mask).count_ones();
                rank
            }
            Container::Run(runs) => {
                let mut rank = 0u32;
                for r in runs {
                    if r.end <= value {
                        rank += r.len();
                    } else if r.start <= value {
                        rank += value as u32 - r.start as u32 + 1;
                        break;
                    } else {
                        break;
                    }
                }
                rank
            }
        }
    }

    /// The `n`-th smallest value (0-based). Caller guarantees `n < len`.
    pub fn select(&self, mut n: u32) -> u16 {
        match self {
            Container::Array(values) => values[n as usize],
            Container::Bitmap { bits, .. } => {
                for (word_idx, &word) in bits.iter().enumerate() {
                    let ones = word.count_ones();
                    if n < ones {
                        let mut w = word;
                        for _ in 0..n {
                            w &= w - 1;
                        }
                        return ((word_idx as u32) << 6 | w.trailing_zeros()) as u16;
                    }
                    n -= ones;
                }
                unreachable!("select index out of bounds")
            }
            Container::Run(runs) => {
                for r in runs {
                    let rl = r.len();
                    if n < rl {
                        return (r.start as u32 + n) as u16;
                    }
                    n -= rl;
                }
                unreachable!("select index out of bounds")
            }
        }
    }

    /// Re-encodes as runs when that is strictly smaller.
    pub fn run_optimize(&mut self) {
        if matches!(self, Container::Run(_)) {
            return;
        }
        let mut runs: Vec<Interval> = Vec::new();
        for v in self.iter_values() {
            match runs.last_mut() {
                Some(last) if last.end as u32 + 1 == v as u32 => last.end = v,
                _ => runs.push(Interval { start: v, end: v }),
            }
        }
        let run_bytes = runs.len() * std::mem::size_of::<Interval>();
        if run_bytes < self.memory_bytes() {
            *self = Container::Run(runs);
        }
    }

    /// Converts a run container back to canonical dense form.
    pub fn undo_runs(&mut self) {
        if let Container::Run(runs) = self {
            let len: u32 = runs.iter().map(|r| r.len()).sum();
            if len as usize <= ARRAY_MAX {
                let mut values = Vec::with_capacity(len as usize);
                for r in runs.iter() {
                    values.extend(r.start..=r.end);
                }
                *self = Container::Array(values);
            } else {
                let mut bits = Box::new([0u64; BITMAP_WORDS]);
                for r in runs.iter() {
                    set_range(&mut bits, r.start, r.end);
                }
                *self = Container::Bitmap { bits, len };
            }
        }
    }

    /// A dense (array-or-bitmap) copy for the operation kernels.
    pub fn to_dense(&self) -> std::borrow::Cow<'_, Container> {
        match self {
            Container::Run(_) => {
                let mut c = self.clone();
                c.undo_runs();
                std::borrow::Cow::Owned(c)
            }
            _ => std::borrow::Cow::Borrowed(self),
        }
    }

    pub fn memory_bytes(&self) -> usize {
        match self {
            Container::Array(values) => values.capacity() * 2,
            Container::Bitmap { .. } => BITMAP_WORDS * 8,
            Container::Run(runs) => runs.capacity() * std::mem::size_of::<Interval>(),
        }
    }

    /// Iterates the contained values in increasing order.
    pub fn iter_values(&self) -> ContainerIter<'_> {
        ContainerIter::new(self)
    }
}

/// Sets bits `[start, end]` (inclusive) with whole-word fills.
///
/// Long runs dominate `undo_runs` on run-encoded audiences (the
/// `everyone` audience is one 65 536-value run per chunk), so interior
/// words are written as `u64::MAX` instead of bit-by-bit.
fn set_range(bits: &mut [u64; BITMAP_WORDS], start: u16, end: u16) {
    let (sw, ew) = ((start >> 6) as usize, (end >> 6) as usize);
    let head = u64::MAX << (start & 63);
    // Mask keeping bits [0, end % 64] of the last word.
    let tail = u64::MAX >> (63 - (end & 63));
    if sw == ew {
        bits[sw] |= head & tail;
        return;
    }
    bits[sw] |= head;
    for w in &mut bits[sw + 1..ew] {
        *w = u64::MAX;
    }
    bits[ew] |= tail;
}

/// Iterator over one container's values.
pub(crate) enum ContainerIter<'a> {
    Array(std::slice::Iter<'a, u16>),
    Bitmap {
        bits: &'a [u64; BITMAP_WORDS],
        word_idx: usize,
        word: u64,
    },
    Run {
        runs: std::slice::Iter<'a, Interval>,
        current: Option<(u32, u32)>,
    },
}

impl<'a> ContainerIter<'a> {
    fn new(container: &'a Container) -> Self {
        match container {
            Container::Array(values) => ContainerIter::Array(values.iter()),
            Container::Bitmap { bits, .. } => ContainerIter::Bitmap {
                bits,
                word_idx: 0,
                word: bits[0],
            },
            Container::Run(runs) => ContainerIter::Run {
                runs: runs.iter(),
                current: None,
            },
        }
    }
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(iter) => iter.next().copied(),
            ContainerIter::Bitmap {
                bits,
                word_idx,
                word,
            } => loop {
                if *word != 0 {
                    let bit = word.trailing_zeros();
                    *word &= *word - 1;
                    return Some(((*word_idx as u32) << 6 | bit) as u16);
                }
                *word_idx += 1;
                if *word_idx >= BITMAP_WORDS {
                    return None;
                }
                *word = bits[*word_idx];
            },
            ContainerIter::Run { runs, current } => loop {
                if let Some((next, end)) = current {
                    if *next <= *end {
                        let v = *next as u16;
                        *next += 1;
                        return Some(v);
                    }
                    *current = None;
                }
                let r = runs.next()?;
                *current = Some((r.start as u32, r.end as u32));
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(values: &[u16]) -> Container {
        Container::from_sorted_slice(values)
    }

    #[test]
    fn array_bitmap_boundary() {
        let small: Vec<u16> = (0..ARRAY_MAX as u16).collect();
        assert!(matches!(dense(&small), Container::Array(_)));
        let big: Vec<u16> = (0..=ARRAY_MAX as u16).collect();
        assert!(matches!(dense(&big), Container::Bitmap { .. }));
    }

    #[test]
    fn from_bitmap_demotes_sparse() {
        let mut bits = Box::new([0u64; BITMAP_WORDS]);
        bits[0] = 0b1011;
        let c = Container::from_bitmap(bits, 3);
        assert!(matches!(c, Container::Array(_)));
        assert_eq!(c.iter_values().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn bitmap_rank_select_edges() {
        let values: Vec<u16> = (0..=u16::MAX).step_by(3).collect();
        let c = dense(&values);
        assert!(matches!(c, Container::Bitmap { .. }));
        assert_eq!(c.rank(0), 1);
        assert_eq!(c.rank(2), 1);
        assert_eq!(c.rank(3), 2);
        assert_eq!(c.rank(u16::MAX), values.len() as u32);
        for n in [0u32, 1, 1000, values.len() as u32 - 1] {
            assert_eq!(c.select(n), values[n as usize]);
        }
        // Boundary word mask when value % 64 == 63.
        assert_eq!(c.rank(63), 22);
    }

    #[test]
    fn run_iteration_and_rank() {
        let mut c = dense(&(100..200).chain(500..600).collect::<Vec<u16>>());
        c.run_optimize();
        assert!(matches!(c, Container::Run(ref r) if r.len() == 2));
        assert_eq!(c.len(), 200);
        assert_eq!(c.min(), Some(100));
        assert_eq!(c.max(), Some(599));
        assert!(c.contains(150) && !c.contains(300));
        assert_eq!(c.rank(99), 0);
        assert_eq!(c.rank(150), 51);
        assert_eq!(c.rank(450), 100);
        assert_eq!(c.select(0), 100);
        assert_eq!(c.select(100), 500);
        assert_eq!(c.iter_values().count(), 200);
    }

    #[test]
    fn run_optimize_keeps_dense_when_fragmented() {
        // Alternating values: runs would be 2 bytes/value * 2 = same as array
        // values * 2... every value its own run => 4 bytes per value > 2.
        let values: Vec<u16> = (0..100).map(|i| i * 2).collect();
        let mut c = dense(&values);
        c.run_optimize();
        assert!(matches!(c, Container::Array(_)), "fragmented stays array");
    }

    #[test]
    fn semantic_equality_across_layouts() {
        let values: Vec<u16> = (0..5000).collect();
        let a = dense(&values);
        let mut b = dense(&values);
        b.run_optimize();
        assert!(matches!(b, Container::Run(_)));
        assert_eq!(a, b);
    }

    #[test]
    fn undo_runs_word_fill_matches_per_value() {
        // Runs chosen to hit every set_range case: within one word,
        // word-aligned boundaries, straddling many words, and the two
        // chunk extremes.
        let spans: [(u16, u16); 6] = [
            (0, 0),
            (3, 17),
            (64, 127),
            (100, 4_500),
            (60_000, u16::MAX),
            (63, 64),
        ];
        for (start, end) in spans {
            let mut c = Container::Run(vec![Interval { start, end }]);
            c.undo_runs();
            let got: Vec<u16> = c.iter_values().collect();
            let want: Vec<u16> = (start..=end).collect();
            assert_eq!(got, want, "span {start}..={end}");
        }
        // Multiple runs in one container, dense enough to become a bitmap.
        let mut c = Container::Run(vec![
            Interval {
                start: 0,
                end: 4999,
            },
            Interval {
                start: 10_000,
                end: 10_063,
            },
        ]);
        c.undo_runs();
        assert!(matches!(c, Container::Bitmap { .. }));
        assert_eq!(c.len(), 5064);
        assert!(c.contains(4999) && !c.contains(5000));
        assert!(c.contains(10_000) && c.contains(10_063) && !c.contains(10_064));
    }

    #[test]
    fn mutation_on_run_container() {
        let mut c = dense(&(0..5000).collect::<Vec<u16>>());
        c.run_optimize();
        assert!(c.insert(6000));
        assert!(!matches!(c, Container::Run(_)), "insert de-optimises runs");
        assert!(c.contains(6000));
        assert!(c.remove(0));
        assert_eq!(c.len(), 5000);
    }
}
