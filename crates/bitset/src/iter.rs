//! Ordered iteration over a [`Bitset`](crate::Bitset).

use crate::container::{Container, ContainerIter};
use crate::join;

/// Iterator over the values of a [`Bitset`](crate::Bitset) in increasing
/// order. Created by [`Bitset::iter`](crate::Bitset::iter).
pub struct Iter<'a> {
    chunks: &'a [(u16, Container)],
    chunk_idx: usize,
    current: Option<(u16, ContainerIter<'a>)>,
}

impl<'a> Iter<'a> {
    pub(crate) fn new(chunks: &'a [(u16, Container)]) -> Self {
        Iter {
            chunks,
            chunk_idx: 0,
            current: None,
        }
    }
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if let Some((key, iter)) = &mut self.current {
                if let Some(low) = iter.next() {
                    return Some(join(*key, low));
                }
                self.current = None;
            }
            let (key, container) = self.chunks.get(self.chunk_idx)?;
            self.chunk_idx += 1;
            self.current = Some((*key, container.iter_values()));
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Remaining full chunks give a cheap lower bound of 0 and an upper
        // bound from their cardinalities; exact tracking is not worth the
        // bookkeeping for our workloads.
        let upper: usize = self.chunks[self.chunk_idx.saturating_sub(1).min(self.chunks.len())..]
            .iter()
            .map(|(_, c)| c.len() as usize)
            .sum();
        (0, Some(upper))
    }
}

#[cfg(test)]
mod tests {
    use crate::Bitset;

    #[test]
    fn iterates_in_order_across_chunks() {
        let values: Vec<u32> = vec![0, 1, 65_535, 65_536, 131_072, u32::MAX];
        let s: Bitset = values.iter().copied().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), values);
    }

    #[test]
    fn size_hint_upper_bound_holds() {
        let s: Bitset = (0..10_000u32).collect();
        let iter = s.iter();
        let (lo, hi) = iter.size_hint();
        assert_eq!(lo, 0);
        assert!(hi.unwrap() >= 10_000);
    }

    #[test]
    fn for_loop_via_into_iterator() {
        let s: Bitset = (10..20u32).collect();
        let mut total = 0u32;
        for v in &s {
            total += v;
        }
        assert_eq!(total, (10..20).sum());
    }
}
