//! Compressed bitmaps for ad-audience arithmetic.
//!
//! Every audience in the simulated advertising platforms is a set of user
//! ids (`u32`). The audit pipeline continuously intersects, unions, and
//! counts such sets — e.g. `|TA ∩ RAₛ|` in the representation-ratio metric —
//! so the set representation is the hottest data structure in the workspace.
//!
//! [`Bitset`] is a two-level, chunked bitmap in the spirit of Roaring
//! bitmaps: the 32-bit key space is split into 2¹⁶ chunks of 2¹⁶ values,
//! and every non-empty chunk stores its low 16 bits in one of three
//! container layouts:
//!
//! * **Array** — a sorted `Vec<u16>` for sparse chunks (≤ 4096 values),
//! * **Bitmap** — a fixed 8 KiB bit array for dense chunks,
//! * **Run** — sorted, coalesced intervals for heavily clustered chunks
//!   (produced only by explicit [`Bitset::run_optimize`]).
//!
//! The representation is *canonical* after every operation (arrays never
//! exceed 4096 entries, bitmaps never fall below 4097, adjacent runs are
//! coalesced), which makes `Eq` structural and keeps memory predictable.
//!
//! # Example
//!
//! ```
//! use adcomp_bitset::Bitset;
//!
//! let interested_in_cars: Bitset = (0..10_000).filter(|u| u % 3 == 0).collect();
//! let interested_in_ee: Bitset = (0..10_000).filter(|u| u % 5 == 0).collect();
//!
//! // AND-composition of the two targeting attributes.
//! let both = interested_in_cars.and(&interested_in_ee);
//! assert_eq!(both.len(), interested_in_cars.intersection_len(&interested_in_ee));
//! assert!(both.contains(15) && !both.contains(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod container;
mod iter;
mod ops;
mod serialize;

pub use iter::Iter;
pub use serialize::{DecodeError, FORMAT_VERSION};

use container::Container;

/// A compressed set of `u32` values.
///
/// See the [crate docs](crate) for the representation. All binary set
/// operations allocate a new `Bitset`; the counting variants
/// ([`intersection_len`](Bitset::intersection_len) etc.) avoid
/// materialising the result and should be preferred when only a size is
/// needed (audience size estimation does exactly this).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bitset {
    /// Sorted by key; no empty containers.
    chunks: Vec<(u16, Container)>,
}

#[inline]
fn split(value: u32) -> (u16, u16) {
    ((value >> 16) as u16, value as u16)
}

#[inline]
fn join(key: u16, low: u16) -> u32 {
    ((key as u32) << 16) | low as u32
}

impl Bitset {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from an iterator of strictly increasing values.
    ///
    /// This is the fastest way to construct a set and is used by the
    /// population generator when materialising attribute audiences.
    ///
    /// # Panics
    ///
    /// Panics if the values are not strictly increasing.
    pub fn from_sorted_iter<I: IntoIterator<Item = u32>>(values: I) -> Self {
        let mut set = Self::new();
        let mut last: Option<u32> = None;
        let mut key: Option<u16> = None;
        let mut pending: Vec<u16> = Vec::new();
        for v in values {
            if let Some(prev) = last {
                assert!(
                    v > prev,
                    "from_sorted_iter: values must be strictly increasing"
                );
            }
            last = Some(v);
            let (hi, lo) = split(v);
            match key {
                Some(k) if k == hi => pending.push(lo),
                Some(k) => {
                    set.chunks.push((k, Container::from_sorted_slice(&pending)));
                    pending.clear();
                    pending.push(lo);
                    key = Some(hi);
                }
                None => {
                    pending.push(lo);
                    key = Some(hi);
                }
            }
        }
        if let Some(k) = key {
            set.chunks.push((k, Container::from_sorted_slice(&pending)));
        }
        set
    }

    /// Number of values in the set.
    pub fn len(&self) -> u64 {
        self.chunks.iter().map(|(_, c)| c.len() as u64).sum()
    }

    /// Returns `true` when the set contains no values.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Inserts `value`, returning `true` if it was not already present.
    pub fn insert(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.chunks.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(idx) => self.chunks[idx].1.insert(low),
            Err(idx) => {
                self.chunks.insert(idx, (key, Container::singleton(low)));
                true
            }
        }
    }

    /// Removes `value`, returning `true` if it was present.
    pub fn remove(&mut self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.chunks.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(idx) => {
                let removed = self.chunks[idx].1.remove(low);
                if self.chunks[idx].1.is_empty() {
                    self.chunks.remove(idx);
                }
                removed
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, value: u32) -> bool {
        let (key, low) = split(value);
        match self.chunks.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(idx) => self.chunks[idx].1.contains(low),
            Err(_) => false,
        }
    }

    /// Smallest value, if any.
    pub fn min(&self) -> Option<u32> {
        self.chunks
            .first()
            .map(|(k, c)| join(*k, c.min().expect("non-empty container")))
    }

    /// Largest value, if any.
    pub fn max(&self) -> Option<u32> {
        self.chunks
            .last()
            .map(|(k, c)| join(*k, c.max().expect("non-empty container")))
    }

    /// Number of values `<= value` (1-based rank).
    pub fn rank(&self, value: u32) -> u64 {
        let (key, low) = split(value);
        let mut rank = 0u64;
        for (k, c) in &self.chunks {
            if *k < key {
                rank += c.len() as u64;
            } else if *k == key {
                rank += c.rank(low) as u64;
                break;
            } else {
                break;
            }
        }
        rank
    }

    /// The `n`-th smallest value (0-based), if `n < len`.
    pub fn select(&self, mut n: u64) -> Option<u32> {
        for (k, c) in &self.chunks {
            let clen = c.len() as u64;
            if n < clen {
                return Some(join(*k, c.select(n as u32)));
            }
            n -= clen;
        }
        None
    }

    /// Iterates over the values in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter::new(&self.chunks)
    }

    /// Set intersection (`self ∧ other`).
    pub fn and(&self, other: &Bitset) -> Bitset {
        ops::binary(self, other, ops::Op::And)
    }

    /// Set union (`self ∨ other`).
    pub fn or(&self, other: &Bitset) -> Bitset {
        ops::binary(self, other, ops::Op::Or)
    }

    /// Set difference (`self ∧ ¬other`). This is how the audit models
    /// *exclusion* targeting ("exclude users with attribute X").
    pub fn and_not(&self, other: &Bitset) -> Bitset {
        ops::binary(self, other, ops::Op::AndNot)
    }

    /// Symmetric difference.
    pub fn xor(&self, other: &Bitset) -> Bitset {
        ops::binary(self, other, ops::Op::Xor)
    }

    /// `|self ∧ other|` without materialising the intersection.
    pub fn intersection_len(&self, other: &Bitset) -> u64 {
        ops::intersection_len(self, other)
    }

    /// Upper bound on `|self ∧ other|` from per-chunk cardinalities.
    ///
    /// Costs O(chunks) — container payloads are never touched — and is
    /// never smaller than the true intersection size, so it prunes
    /// "could this AND still reach N users?" questions for free.
    pub fn intersection_len_bound(&self, other: &Bitset) -> u64 {
        ops::intersection_len_bound(self, other)
    }

    /// Decides `|self ∧ other| >= threshold` with early exit.
    ///
    /// Far cheaper than [`intersection_len`](Bitset::intersection_len)
    /// when the answer is decided early: the per-chunk cardinality bound
    /// settles clear misses without touching container payloads, and the
    /// exact walk stops as soon as the accumulated count either reaches
    /// `threshold` or provably cannot.
    pub fn intersection_len_at_least(&self, other: &Bitset, threshold: u64) -> bool {
        ops::intersection_len_at_least(self, other, threshold)
    }

    /// `|self ∨ other|` without materialising the union.
    pub fn union_len(&self, other: &Bitset) -> u64 {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// `|self ∧ ¬other|` without materialising the difference.
    pub fn difference_len(&self, other: &Bitset) -> u64 {
        self.len() - self.intersection_len(other)
    }

    /// Returns `true` if the sets share no value.
    pub fn is_disjoint(&self, other: &Bitset) -> bool {
        ops::is_disjoint(self, other)
    }

    /// Returns `true` if every value of `self` is in `other`.
    pub fn is_subset(&self, other: &Bitset) -> bool {
        self.intersection_len(other) == self.len()
    }

    /// Jaccard similarity `|A∧B| / |A∨B|`; `0.0` for two empty sets.
    pub fn jaccard(&self, other: &Bitset) -> f64 {
        let inter = self.intersection_len(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Converts clustered containers to run encoding where that is smaller.
    ///
    /// Run containers are read-optimised: any subsequent mutation of a
    /// chunk converts it back to a dense layout first.
    pub fn run_optimize(&mut self) {
        for (_, c) in &mut self.chunks {
            c.run_optimize();
        }
    }

    /// Approximate heap footprint in bytes (containers only).
    pub fn memory_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|(_, c)| 2 + c.memory_bytes())
            .sum::<usize>()
            + self.chunks.capacity() * std::mem::size_of::<(u16, Container)>()
    }

    /// Number of internal chunk containers (diagnostics/benchmarks).
    pub fn container_count(&self) -> usize {
        self.chunks.len()
    }

    pub(crate) fn chunks(&self) -> &[(u16, Container)] {
        &self.chunks
    }

    pub(crate) fn push_chunk(&mut self, key: u16, container: Container) {
        debug_assert!(self.chunks.last().is_none_or(|(k, _)| *k < key));
        debug_assert!(!container.is_empty());
        self.chunks.push((key, container));
    }
}

impl std::fmt::Debug for Bitset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.len();
        write!(f, "Bitset(len={len}")?;
        if len <= 16 {
            write!(f, ", values=")?;
            f.debug_set().entries(self.iter()).finish()?;
        }
        write!(f, ")")
    }
}

impl FromIterator<u32> for Bitset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut values: Vec<u32> = iter.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        Bitset::from_sorted_iter(values)
    }
}

impl Extend<u32> for Bitset {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a Bitset {
    type Item = u32;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_basics() {
        let s = Bitset::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.select(0), None);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = Bitset::new();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(42));
        assert!(s.insert(1 << 20));
        assert_eq!(s.len(), 2);
        assert!(s.remove(42));
        assert!(!s.remove(42));
        assert!(!s.contains(42));
        assert_eq!(s.len(), 1);
        assert_eq!(s.container_count(), 1, "empty chunk must be dropped");
    }

    #[test]
    fn from_sorted_iter_matches_inserts() {
        let values = [0u32, 1, 2, 65_535, 65_536, 65_537, 1 << 30, u32::MAX];
        let a = Bitset::from_sorted_iter(values.iter().copied());
        let mut b = Bitset::new();
        for v in values {
            b.insert(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<Vec<_>>(), values);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_iter_rejects_duplicates() {
        let _ = Bitset::from_sorted_iter([1, 1]);
    }

    #[test]
    fn array_to_bitmap_promotion_and_back() {
        // Fill a single chunk past the array limit.
        let s: Bitset = (0u32..5000).collect();
        assert_eq!(s.len(), 5000);
        assert_eq!(s.container_count(), 1);
        // Removing back below the threshold keeps correctness (representation
        // may stay bitmap; equality is canonical so compare against rebuilt).
        let mut t = s.clone();
        for v in 4096..5000 {
            assert!(t.remove(v));
        }
        let expect: Bitset = (0u32..4096).collect();
        assert_eq!(t.len(), 4096);
        assert_eq!(
            t.iter().collect::<Vec<_>>(),
            expect.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rank_and_select_are_inverse() {
        let s: Bitset = (0..100_000u32).filter(|v| v % 7 == 0).collect();
        for n in [0u64, 1, 100, 2000, s.len() - 1] {
            let v = s.select(n).unwrap();
            assert_eq!(s.rank(v), n + 1, "rank(select(n)) == n+1 for n={n}");
        }
        assert_eq!(s.select(s.len()), None);
        assert_eq!(s.rank(u32::MAX), s.len());
        assert_eq!(s.rank(0), 1); // 0 is a member (0 % 7 == 0).
    }

    #[test]
    fn binary_ops_small() {
        let a: Bitset = [1u32, 2, 3, 100_000, 200_000].into_iter().collect();
        let b: Bitset = [2u32, 3, 4, 200_000, 300_000].into_iter().collect();
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![2, 3, 200_000]);
        assert_eq!(
            a.or(&b).iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 100_000, 200_000, 300_000]
        );
        assert_eq!(a.and_not(&b).iter().collect::<Vec<_>>(), vec![1, 100_000]);
        assert_eq!(
            a.xor(&b).iter().collect::<Vec<_>>(),
            vec![1, 4, 100_000, 300_000]
        );
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(a.union_len(&b), 7);
        assert_eq!(a.difference_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.and(&b).is_subset(&a));
    }

    #[test]
    fn jaccard_bounds() {
        let a: Bitset = (0..1000u32).collect();
        let b: Bitset = (500..1500u32).collect();
        let j = a.jaccard(&b);
        assert!((j - 500.0 / 1500.0).abs() < 1e-12);
        assert_eq!(Bitset::new().jaccard(&Bitset::new()), 0.0);
        assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn run_optimize_preserves_contents_and_shrinks() {
        let mut s: Bitset = (0..60_000u32).collect();
        let dense_bytes = s.memory_bytes();
        let before: Vec<u32> = s.iter().collect();
        s.run_optimize();
        assert!(
            s.memory_bytes() < dense_bytes,
            "one long run must be smaller"
        );
        assert_eq!(s.iter().collect::<Vec<_>>(), before);
        assert_eq!(s.len(), 60_000);
        assert!(s.contains(59_999) && !s.contains(60_000));
        // Mutation after run-encoding still works.
        assert!(s.insert(70_000));
        assert!(s.remove(0));
        assert_eq!(s.len(), 60_000);
    }

    #[test]
    fn debug_format_small_and_large() {
        let s: Bitset = [1u32, 2].into_iter().collect();
        let d = format!("{s:?}");
        assert!(d.contains("len=2") && d.contains('1') && d.contains('2'));
        let big: Bitset = (0..100u32).collect();
        assert!(format!("{big:?}").contains("len=100"));
    }

    #[test]
    fn extend_and_from_iterator_dedupe() {
        let mut s: Bitset = [5u32, 5, 1, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
        s.extend([3u32, 7]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }
}
