//! Binary set operation kernels.
//!
//! Operations walk the two sorted chunk lists in a merge, dispatching to a
//! per-layout kernel for chunks present in both sets. Run containers are
//! densified on the fly (they are a read-only re-encoding; see the crate
//! docs), so the kernels only handle Array×Array, Array×Bitmap and
//! Bitmap×Bitmap.

use crate::container::{Container, BITMAP_WORDS};
use crate::Bitset;

/// The four supported binary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    And,
    Or,
    AndNot,
    Xor,
}

impl Op {
    /// Whether a chunk present only in the left operand survives.
    fn keeps_left_only(self) -> bool {
        matches!(self, Op::Or | Op::AndNot | Op::Xor)
    }

    /// Whether a chunk present only in the right operand survives.
    fn keeps_right_only(self) -> bool {
        matches!(self, Op::Or | Op::Xor)
    }
}

/// Evaluates `a op b` into a new canonical bitset.
pub(crate) fn binary(a: &Bitset, b: &Bitset, op: Op) -> Bitset {
    let mut out = Bitset::new();
    let (ac, bc) = (a.chunks(), b.chunks());
    let (mut i, mut j) = (0, 0);
    while i < ac.len() && j < bc.len() {
        let (ka, ca) = &ac[i];
        let (kb, cb) = &bc[j];
        match ka.cmp(kb) {
            std::cmp::Ordering::Less => {
                if op.keeps_left_only() {
                    out.push_chunk(*ka, ca.clone());
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if op.keeps_right_only() {
                    out.push_chunk(*kb, cb.clone());
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let result = container_op(ca, cb, op);
                if let Some(c) = result {
                    out.push_chunk(*ka, c);
                }
                i += 1;
                j += 1;
            }
        }
    }
    if op.keeps_left_only() {
        for (k, c) in &ac[i..] {
            out.push_chunk(*k, c.clone());
        }
    }
    if op.keeps_right_only() {
        for (k, c) in &bc[j..] {
            out.push_chunk(*k, c.clone());
        }
    }
    out
}

/// `|a ∧ b|` without materialising.
pub(crate) fn intersection_len(a: &Bitset, b: &Bitset) -> u64 {
    let mut total = 0u64;
    for_each_common_chunk(a, b, |ca, cb| {
        total += container_intersection_len(ca, cb) as u64;
    });
    total
}

/// Upper bound on `|a ∧ b|` from per-chunk cardinalities alone.
///
/// `Σ min(|ca|, |cb|)` over chunks present in both sets — the container
/// payloads are never inspected, so this is O(chunks) regardless of
/// density. Exact when one operand's chunks are subsets of the other's;
/// never less than the true intersection size.
pub(crate) fn intersection_len_bound(a: &Bitset, b: &Bitset) -> u64 {
    let mut bound = 0u64;
    for_each_common_chunk(a, b, |ca, cb| {
        bound += ca.len().min(cb.len()) as u64;
    });
    bound
}

/// Decides `|a ∧ b| >= threshold` without computing the full size.
///
/// Two-phase: the per-chunk cardinality bound settles the question for
/// free when it already falls below `threshold`; otherwise a merge walk
/// counts exact per-chunk intersections, exiting as soon as the
/// accumulated count reaches `threshold` or the accumulated count plus
/// the bound over the remaining chunks can no longer reach it. This is
/// the kernel behind the discovery search's min-reach pruning: most
/// failing candidate pairs are rejected here after a few chunks.
pub(crate) fn intersection_len_at_least(a: &Bitset, b: &Bitset, threshold: u64) -> bool {
    if threshold == 0 {
        return true;
    }
    let (ac, bc) = (a.chunks(), b.chunks());
    // Phase 1: pair up common chunks and total their cardinality bound.
    let mut common: Vec<(&Container, &Container, u64)> = Vec::new();
    let mut bound = 0u64;
    {
        let (mut i, mut j) = (0, 0);
        while i < ac.len() && j < bc.len() {
            let (ka, ca) = &ac[i];
            let (kb, cb) = &bc[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let chunk_bound = ca.len().min(cb.len()) as u64;
                    bound += chunk_bound;
                    common.push((ca, cb, chunk_bound));
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    if bound < threshold {
        return false;
    }
    // Phase 2: exact counts with both-sided early exit. `remaining` is
    // the bound over chunks not yet counted.
    let mut acc = 0u64;
    let mut remaining = bound;
    for (ca, cb, chunk_bound) in common {
        remaining -= chunk_bound;
        acc += container_intersection_len(ca, cb) as u64;
        if acc >= threshold {
            return true;
        }
        if acc + remaining < threshold {
            return false;
        }
    }
    acc >= threshold
}

/// Disjointness test with early exit.
pub(crate) fn is_disjoint(a: &Bitset, b: &Bitset) -> bool {
    let (ac, bc) = (a.chunks(), b.chunks());
    let (mut i, mut j) = (0, 0);
    while i < ac.len() && j < bc.len() {
        let (ka, ca) = &ac[i];
        let (kb, cb) = &bc[j];
        match ka.cmp(kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if container_intersection_len(ca, cb) != 0 {
                    return false;
                }
                i += 1;
                j += 1;
            }
        }
    }
    true
}

fn for_each_common_chunk(a: &Bitset, b: &Bitset, mut f: impl FnMut(&Container, &Container)) {
    let (ac, bc) = (a.chunks(), b.chunks());
    let (mut i, mut j) = (0, 0);
    while i < ac.len() && j < bc.len() {
        let (ka, ca) = &ac[i];
        let (kb, cb) = &bc[j];
        match ka.cmp(kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(ca, cb);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Applies `op` to two same-key containers; `None` when the result is empty.
fn container_op(a: &Container, b: &Container, op: Op) -> Option<Container> {
    let a = a.to_dense();
    let b = b.to_dense();
    let result = match (a.as_ref(), b.as_ref(), op) {
        (Container::Array(x), Container::Array(y), _) => array_array(x, y, op),
        (Container::Bitmap { bits: x, .. }, Container::Bitmap { bits: y, .. }, _) => {
            bitmap_bitmap(x, y, op)
        }
        (Container::Array(x), Container::Bitmap { bits: y, .. }, Op::And) => {
            array_filter(x, |v| get(y, v))
        }
        (Container::Array(x), Container::Bitmap { bits: y, .. }, Op::AndNot) => {
            array_filter(x, |v| !get(y, v))
        }
        (Container::Bitmap { bits: x, len }, Container::Array(y), Op::And) => {
            let _ = len;
            array_filter(y, |v| get(x, v))
        }
        (Container::Bitmap { bits: x, len }, Container::Array(y), Op::AndNot) => {
            // bitmap minus array: clear the array's bits.
            let mut bits = x.clone();
            let mut n = *len;
            for &v in y {
                let word = &mut bits[(v >> 6) as usize];
                let mask = 1u64 << (v & 63);
                if *word & mask != 0 {
                    *word &= !mask;
                    n -= 1;
                }
            }
            some_if_nonempty(Container::from_bitmap(bits, n))
        }
        (Container::Array(x), Container::Bitmap { bits: y, len }, Op::Or) => {
            let mut bits = y.clone();
            let mut n = *len;
            for &v in x {
                let word = &mut bits[(v >> 6) as usize];
                let mask = 1u64 << (v & 63);
                if *word & mask == 0 {
                    *word |= mask;
                    n += 1;
                }
            }
            some_if_nonempty(Container::from_bitmap(bits, n))
        }
        (Container::Bitmap { bits: x, len }, Container::Array(y), Op::Or) => {
            let mut bits = x.clone();
            let mut n = *len;
            for &v in y {
                let word = &mut bits[(v >> 6) as usize];
                let mask = 1u64 << (v & 63);
                if *word & mask == 0 {
                    *word |= mask;
                    n += 1;
                }
            }
            some_if_nonempty(Container::from_bitmap(bits, n))
        }
        (Container::Array(x), Container::Bitmap { bits: y, .. }, Op::Xor) => {
            let mut bits = y.clone();
            xor_array_into(&mut bits, x)
        }
        (Container::Bitmap { bits: x, .. }, Container::Array(y), Op::Xor) => {
            let mut bits = x.clone();
            xor_array_into(&mut bits, y)
        }
        (Container::Run(_), _, _) | (_, Container::Run(_), _) => {
            unreachable!("operands were densified")
        }
    };
    result
}

fn xor_array_into(bits: &mut Box<[u64; BITMAP_WORDS]>, values: &[u16]) -> Option<Container> {
    for &v in values {
        bits[(v >> 6) as usize] ^= 1u64 << (v & 63);
    }
    let len: u32 = bits.iter().map(|w| w.count_ones()).sum();
    some_if_nonempty(Container::from_bitmap(bits.clone(), len))
}

#[inline]
fn get(bits: &[u64; BITMAP_WORDS], v: u16) -> bool {
    bits[(v >> 6) as usize] & (1u64 << (v & 63)) != 0
}

fn some_if_nonempty(c: Container) -> Option<Container> {
    if c.is_empty() {
        None
    } else {
        Some(c)
    }
}

fn array_filter(values: &[u16], keep: impl Fn(u16) -> bool) -> Option<Container> {
    let out: Vec<u16> = values.iter().copied().filter(|&v| keep(v)).collect();
    if out.is_empty() {
        None
    } else {
        Some(Container::Array(out))
    }
}

fn array_array(a: &[u16], b: &[u16], op: Op) -> Option<Container> {
    let mut out = Vec::with_capacity(match op {
        Op::And => a.len().min(b.len()),
        _ => a.len() + b.len(),
    });
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                if op.keeps_left_only() {
                    out.push(a[i]);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if op.keeps_right_only() {
                    out.push(b[j]);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if matches!(op, Op::And | Op::Or) {
                    out.push(a[i]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    if op.keeps_left_only() {
        out.extend_from_slice(&a[i..]);
    }
    if op.keeps_right_only() {
        out.extend_from_slice(&b[j..]);
    }
    if out.is_empty() {
        None
    } else {
        Some(Container::from_sorted_slice(&out))
    }
}

fn bitmap_bitmap(a: &[u64; BITMAP_WORDS], b: &[u64; BITMAP_WORDS], op: Op) -> Option<Container> {
    let mut bits = Box::new([0u64; BITMAP_WORDS]);
    let mut len = 0u32;
    for k in 0..BITMAP_WORDS {
        let w = match op {
            Op::And => a[k] & b[k],
            Op::Or => a[k] | b[k],
            Op::AndNot => a[k] & !b[k],
            Op::Xor => a[k] ^ b[k],
        };
        bits[k] = w;
        len += w.count_ones();
    }
    some_if_nonempty(Container::from_bitmap(bits, len))
}

/// `|a ∧ b|` for two same-key containers.
fn container_intersection_len(a: &Container, b: &Container) -> u32 {
    let a = a.to_dense();
    let b = b.to_dense();
    match (a.as_ref(), b.as_ref()) {
        (Container::Array(x), Container::Array(y)) => {
            // Galloping would help for very skewed sizes; the merge is fine
            // for the ≤4096-entry arrays we produce.
            let (mut i, mut j, mut n) = (0usize, 0usize, 0u32);
            while i < x.len() && j < y.len() {
                match x[i].cmp(&y[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        n += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            n
        }
        (Container::Array(x), Container::Bitmap { bits, .. })
        | (Container::Bitmap { bits, .. }, Container::Array(x)) => {
            x.iter().filter(|&&v| get(bits, v)).count() as u32
        }
        (Container::Bitmap { bits: x, .. }, Container::Bitmap { bits: y, .. }) => {
            (0..BITMAP_WORDS).map(|k| (x[k] & y[k]).count_ones()).sum()
        }
        _ => unreachable!("operands were densified"),
    }
}

#[cfg(test)]
mod tests {
    use crate::Bitset;

    /// Reference implementation on `std` sets.
    fn check(a_vals: &[u32], b_vals: &[u32]) {
        use std::collections::BTreeSet;
        let a: Bitset = a_vals.iter().copied().collect();
        let b: Bitset = b_vals.iter().copied().collect();
        let sa: BTreeSet<u32> = a_vals.iter().copied().collect();
        let sb: BTreeSet<u32> = b_vals.iter().copied().collect();

        let and: Vec<u32> = sa.intersection(&sb).copied().collect();
        let or: Vec<u32> = sa.union(&sb).copied().collect();
        let and_not: Vec<u32> = sa.difference(&sb).copied().collect();
        let xor: Vec<u32> = sa.symmetric_difference(&sb).copied().collect();

        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), and);
        assert_eq!(a.or(&b).iter().collect::<Vec<_>>(), or);
        assert_eq!(a.and_not(&b).iter().collect::<Vec<_>>(), and_not);
        assert_eq!(a.xor(&b).iter().collect::<Vec<_>>(), xor);
        assert_eq!(a.intersection_len(&b), and.len() as u64);
        assert_eq!(a.union_len(&b), or.len() as u64);
        assert_eq!(a.is_disjoint(&b), and.is_empty());
    }

    #[test]
    fn dense_sparse_mixes() {
        let dense: Vec<u32> = (0..10_000).collect();
        let sparse: Vec<u32> = (0..10_000).step_by(97).collect();
        check(&dense, &sparse);
        check(&sparse, &dense);
    }

    #[test]
    fn cross_chunk() {
        let a: Vec<u32> = vec![1, 65_536, 65_537, 200_000, 1 << 24];
        let b: Vec<u32> = vec![65_537, 131_072, 200_000, (1 << 24) + 1];
        check(&a, &b);
    }

    #[test]
    fn empty_operands() {
        check(&[], &[]);
        check(&[1, 2, 3], &[]);
        check(&[], &[1, 2, 3]);
    }

    #[test]
    fn bitmap_bitmap_all_ops() {
        let a: Vec<u32> = (0..30_000).filter(|v| v % 2 == 0).collect();
        let b: Vec<u32> = (0..30_000).filter(|v| v % 3 == 0).collect();
        check(&a, &b);
    }

    #[test]
    fn run_operands_densified() {
        let mut a: Bitset = (0..20_000u32).collect();
        let mut b: Bitset = (10_000..30_000u32).collect();
        a.run_optimize();
        b.run_optimize();
        assert_eq!(a.and(&b).len(), 10_000);
        assert_eq!(a.or(&b).len(), 30_000);
        assert_eq!(a.and_not(&b).len(), 10_000);
        assert_eq!(a.xor(&b).len(), 20_000);
        assert_eq!(a.intersection_len(&b), 10_000);
    }

    #[test]
    fn intersection_bound_and_threshold() {
        let a: Bitset = (0..50_000u32).collect();
        let b: Bitset = (0..50_000u32).step_by(5).collect();
        let exact = a.intersection_len(&b);
        assert_eq!(exact, 10_000);
        // The bound dominates the exact size and equals Σ min per chunk.
        assert!(a.intersection_len_bound(&b) >= exact);
        assert_eq!(a.intersection_len_bound(&b), b.len());
        // Threshold test agrees with the exact size on both sides.
        for t in [0u64, 1, 9_999, 10_000, 10_001, 1 << 40] {
            assert_eq!(
                a.intersection_len_at_least(&b, t),
                exact >= t,
                "threshold {t}"
            );
        }
        // Disjoint chunks: bound is zero, so any positive threshold is a
        // free rejection.
        let far: Bitset = ((1 << 24)..(1 << 24) + 1000).collect();
        assert_eq!(a.intersection_len_bound(&far), 0);
        assert!(!a.intersection_len_at_least(&far, 1));
        assert!(a.intersection_len_at_least(&far, 0));
        // Run containers go through the same kernels.
        let mut ra = a.clone();
        ra.run_optimize();
        assert!(ra.intersection_len_at_least(&b, exact));
        assert!(!ra.intersection_len_at_least(&b, exact + 1));
        // Empty operands.
        assert_eq!(Bitset::new().intersection_len_bound(&a), 0);
        assert!(!Bitset::new().intersection_len_at_least(&a, 1));
    }

    #[test]
    fn identical_and_disjoint() {
        let a: Vec<u32> = (0..5000).map(|v| v * 3).collect();
        check(&a, &a);
        let b: Vec<u32> = a.iter().map(|v| v + 1).collect();
        check(&a, &b);
        let far: Vec<u32> = a.iter().map(|v| v + (1 << 28)).collect();
        check(&a, &far);
        let ba: Bitset = a.iter().copied().collect();
        let bf: Bitset = far.iter().copied().collect();
        assert!(ba.is_disjoint(&bf));
    }
}
