//! Compact binary serialisation of bitsets.
//!
//! Materialising a platform's attribute audiences is the expensive step
//! of building a simulation; persisting them lets repeated experiment
//! runs skip it. The format is self-describing and validated on read:
//!
//! ```text
//! u8  version (1)
//! u32 chunk count
//! per chunk:
//!   u16 key
//!   u8  layout (0 = array, 1 = bitmap, 2 = run)
//!   array:  u16 len, len × u16 values (sorted, distinct)
//!   bitmap: u32 cardinality, 1024 × u64 words
//!   run:    u16 run count, count × (u16 start, u16 end)
//! ```
//!
//! All integers are little-endian. Decoding never panics on malformed
//! input and re-checks every invariant the in-memory containers rely on.

use crate::container::{Container, Interval, ARRAY_MAX, BITMAP_WORDS};
use crate::Bitset;

/// Format version written by [`Bitset::to_bytes`].
pub const FORMAT_VERSION: u8 = 1;

/// Deserialisation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    UnexpectedEof,
    /// Unknown format version byte.
    UnsupportedVersion(u8),
    /// Unknown container layout tag.
    InvalidLayout(u8),
    /// A structural invariant failed (unsorted array, wrong cardinality,
    /// overlapping runs, unordered chunk keys, …).
    CorruptContainer(&'static str),
    /// Trailing bytes after a complete bitset.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::InvalidLayout(t) => write!(f, "invalid container layout tag {t}"),
            DecodeError::CorruptContainer(what) => write!(f, "corrupt container: {what}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after bitset"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

impl Bitset {
    /// Serialises into the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.memory_bytes());
        self.write_into(&mut out);
        out
    }

    /// Appends the serialised form to `out`.
    ///
    /// Multiple bitsets appended back-to-back form a valid stream for
    /// [`Bitset::from_bytes_prefix`]; segment files in the population
    /// store are exactly such concatenations.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&(self.chunks().len() as u32).to_le_bytes());
        for (key, container) in self.chunks() {
            out.extend_from_slice(&key.to_le_bytes());
            match container {
                Container::Array(values) => {
                    out.push(0);
                    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
                    for v in values {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Container::Bitmap { bits, len } => {
                    out.push(1);
                    out.extend_from_slice(&len.to_le_bytes());
                    for w in bits.iter() {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Container::Run(runs) => {
                    out.push(2);
                    out.extend_from_slice(&(runs.len() as u16).to_le_bytes());
                    for r in runs {
                        out.extend_from_slice(&r.start.to_le_bytes());
                        out.extend_from_slice(&r.end.to_le_bytes());
                    }
                }
            }
        }
    }

    /// Deserialises, validating every structural invariant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Bitset, DecodeError> {
        let mut r = Reader { buf: bytes };
        let set = decode_one(&mut r)?;
        if !r.buf.is_empty() {
            return Err(DecodeError::TrailingBytes(r.buf.len()));
        }
        Ok(set)
    }

    /// Deserialises one bitset from the front of `bytes`, returning it
    /// together with the number of bytes consumed.
    ///
    /// Unlike [`Bitset::from_bytes`] this accepts trailing data, so a
    /// stream of concatenated bitsets (as written by repeated
    /// [`Bitset::write_into`] calls) can be decoded one at a time.
    pub fn from_bytes_prefix(bytes: &[u8]) -> Result<(Bitset, usize), DecodeError> {
        let mut r = Reader { buf: bytes };
        let set = decode_one(&mut r)?;
        Ok((set, bytes.len() - r.buf.len()))
    }
}

/// Decodes one bitset from `r`, leaving any trailing bytes unread.
fn decode_one(r: &mut Reader<'_>) -> Result<Bitset, DecodeError> {
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let chunk_count = r.u32()? as usize;
    if chunk_count > u16::MAX as usize + 1 {
        return Err(DecodeError::CorruptContainer(
            "more chunks than possible keys",
        ));
    }
    let mut set = Bitset::new();
    let mut last_key: Option<u16> = None;
    for _ in 0..chunk_count {
        let key = r.u16()?;
        if let Some(prev) = last_key {
            if key <= prev {
                return Err(DecodeError::CorruptContainer("chunk keys not increasing"));
            }
        }
        last_key = Some(key);
        let layout = r.u8()?;
        let container = match layout {
            0 => {
                let len = r.u16()? as usize;
                if len == 0 || len > ARRAY_MAX {
                    return Err(DecodeError::CorruptContainer("array length out of range"));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(r.u16()?);
                }
                if !values.windows(2).all(|w| w[0] < w[1]) {
                    return Err(DecodeError::CorruptContainer("array not sorted/distinct"));
                }
                Container::Array(values)
            }
            1 => {
                let len = r.u32()?;
                let mut bits = Box::new([0u64; BITMAP_WORDS]);
                let mut actual = 0u32;
                for w in bits.iter_mut() {
                    *w = r.u64()?;
                    actual += w.count_ones();
                }
                if actual != len {
                    return Err(DecodeError::CorruptContainer("bitmap cardinality mismatch"));
                }
                if (len as usize) <= ARRAY_MAX {
                    return Err(DecodeError::CorruptContainer(
                        "bitmap below array threshold (non-canonical)",
                    ));
                }
                Container::Bitmap { bits, len }
            }
            2 => {
                let count = r.u16()? as usize;
                if count == 0 {
                    return Err(DecodeError::CorruptContainer("empty run container"));
                }
                let mut runs = Vec::with_capacity(count);
                for _ in 0..count {
                    let start = r.u16()?;
                    let end = r.u16()?;
                    if end < start {
                        return Err(DecodeError::CorruptContainer("run end before start"));
                    }
                    runs.push(Interval { start, end });
                }
                // Sorted, non-overlapping, non-adjacent.
                if !runs
                    .windows(2)
                    .all(|w| (w[0].end as u32) + 1 < w[1].start as u32)
                {
                    return Err(DecodeError::CorruptContainer("runs overlap or touch"));
                }
                Container::Run(runs)
            }
            t => return Err(DecodeError::InvalidLayout(t)),
        };
        set.push_chunk(key, container);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(set: &Bitset) {
        let bytes = set.to_bytes();
        let back = Bitset::from_bytes(&bytes).unwrap();
        assert_eq!(&back, set);
    }

    #[test]
    fn roundtrips_across_layouts() {
        roundtrip(&Bitset::new());
        roundtrip(&[1u32, 5, 100_000].into_iter().collect());
        roundtrip(&(0..10_000u32).collect()); // bitmap chunk
        let mut runs: Bitset = (0..60_000u32).collect();
        runs.run_optimize();
        roundtrip(&runs);
        // Mixed: sparse chunk + dense chunk + run chunk.
        let mut mixed: Bitset = (0..9_000u32).collect();
        mixed.extend([1 << 20, (1 << 20) + 5]);
        let mut run_part: Bitset = ((2 << 20)..(2 << 20) + 50_000).collect();
        run_part.run_optimize();
        let mixed = mixed.or(&run_part);
        roundtrip(&mixed);
    }

    #[test]
    fn version_checked() {
        let mut bytes = Bitset::new().to_bytes();
        bytes[0] = 9;
        assert_eq!(
            Bitset::from_bytes(&bytes),
            Err(DecodeError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn truncation_detected() {
        let set: Bitset = (0..100u32).collect();
        let bytes = set.to_bytes();
        for cut in [1usize, 5, bytes.len() - 1] {
            assert_eq!(
                Bitset::from_bytes(&bytes[..cut]),
                Err(DecodeError::UnexpectedEof),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn prefix_decoding_of_concatenated_stream() {
        // Three bitsets appended back-to-back (the segment-file shape),
        // one of them run-encoded.
        let a: Bitset = (0..10_000u32).collect();
        let mut b: Bitset = (0..60_000u32).collect();
        b.run_optimize();
        let c: Bitset = [7u32, 99, 1 << 20].into_iter().collect();
        let mut stream = Vec::new();
        a.write_into(&mut stream);
        b.write_into(&mut stream);
        c.write_into(&mut stream);

        let mut off = 0usize;
        let mut decoded = Vec::new();
        while off < stream.len() {
            let (set, used) = Bitset::from_bytes_prefix(&stream[off..]).unwrap();
            assert!(used > 0);
            off += used;
            decoded.push(set);
        }
        assert_eq!(off, stream.len());
        assert_eq!(decoded, vec![a, b, c]);

        // from_bytes still rejects the same stream (trailing data).
        assert!(matches!(
            Bitset::from_bytes(&stream),
            Err(DecodeError::TrailingBytes(_))
        ));
        // write_into is exactly to_bytes.
        let mut via_write = Vec::new();
        decoded[0].write_into(&mut via_write);
        assert_eq!(via_write, decoded[0].to_bytes());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = Bitset::from_sorted_iter([1, 2, 3]).to_bytes();
        bytes.push(0);
        assert_eq!(
            Bitset::from_bytes(&bytes),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn corrupt_structures_rejected() {
        // Unsorted array.
        let mut bytes = vec![FORMAT_VERSION];
        bytes.extend_from_slice(&1u32.to_le_bytes()); // 1 chunk
        bytes.extend_from_slice(&0u16.to_le_bytes()); // key
        bytes.push(0); // array
        bytes.extend_from_slice(&2u16.to_le_bytes()); // len 2
        bytes.extend_from_slice(&5u16.to_le_bytes());
        bytes.extend_from_slice(&3u16.to_le_bytes()); // 5 > 3: unsorted
        assert!(matches!(
            Bitset::from_bytes(&bytes),
            Err(DecodeError::CorruptContainer("array not sorted/distinct"))
        ));

        // Invalid layout tag.
        let mut bytes = vec![FORMAT_VERSION];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.push(7);
        assert_eq!(
            Bitset::from_bytes(&bytes),
            Err(DecodeError::InvalidLayout(7))
        );

        // Bitmap with wrong cardinality.
        let mut bytes = vec![FORMAT_VERSION];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&9999u32.to_le_bytes()); // claimed len
        bytes.extend(std::iter::repeat_n(0u8, BITMAP_WORDS * 8)); // all-zero words
        assert!(matches!(
            Bitset::from_bytes(&bytes),
            Err(DecodeError::CorruptContainer("bitmap cardinality mismatch"))
        ));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::UnexpectedEof
            .to_string()
            .contains("end of input"));
        assert!(DecodeError::TrailingBytes(3).to_string().contains('3'));
    }
}
