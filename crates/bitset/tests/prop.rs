//! Property-based tests: `Bitset` must agree with `BTreeSet<u32>` on every
//! operation, for arbitrary value distributions (sparse, dense, clustered).

use adcomp_bitset::Bitset;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Value sets drawn from a few regimes so all container layouts get hit:
/// uniformly random u32s (sparse arrays), small ranges (dense bitmaps), and
/// contiguous blocks (run candidates).
fn value_vec() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        proptest::collection::vec(any::<u32>(), 0..400),
        proptest::collection::vec(0u32..100_000, 0..2000),
        (0u32..1_000_000, 0u32..20_000)
            .prop_map(|(start, len)| (start..start.saturating_add(len)).collect()),
    ]
}

fn to_pair(values: Vec<u32>) -> (Bitset, BTreeSet<u32>) {
    let reference: BTreeSet<u32> = values.iter().copied().collect();
    let set: Bitset = values.into_iter().collect();
    (set, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_matches_reference(values in value_vec()) {
        let (set, reference) = to_pair(values);
        prop_assert_eq!(set.len(), reference.len() as u64);
        prop_assert_eq!(set.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(set.min(), reference.first().copied());
        prop_assert_eq!(set.max(), reference.last().copied());
    }

    #[test]
    fn binary_ops_match_reference(a in value_vec(), b in value_vec()) {
        let (sa, ra) = to_pair(a);
        let (sb, rb) = to_pair(b);
        prop_assert_eq!(
            sa.and(&sb).iter().collect::<Vec<_>>(),
            ra.intersection(&rb).copied().collect::<Vec<_>>());
        prop_assert_eq!(
            sa.or(&sb).iter().collect::<Vec<_>>(),
            ra.union(&rb).copied().collect::<Vec<_>>());
        prop_assert_eq!(
            sa.and_not(&sb).iter().collect::<Vec<_>>(),
            ra.difference(&rb).copied().collect::<Vec<_>>());
        prop_assert_eq!(
            sa.xor(&sb).iter().collect::<Vec<_>>(),
            ra.symmetric_difference(&rb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.intersection_len(&sb),
                        ra.intersection(&rb).count() as u64);
        prop_assert_eq!(sa.is_disjoint(&sb), ra.is_disjoint(&rb));
        prop_assert_eq!(sa.is_subset(&sb), ra.is_subset(&rb));
    }

    #[test]
    fn counting_consistent_with_materialised(a in value_vec(), b in value_vec()) {
        let (sa, _) = to_pair(a);
        let (sb, _) = to_pair(b);
        prop_assert_eq!(sa.intersection_len(&sb), sa.and(&sb).len());
        prop_assert_eq!(sa.union_len(&sb), sa.or(&sb).len());
        prop_assert_eq!(sa.difference_len(&sb), sa.and_not(&sb).len());
    }

    #[test]
    fn algebraic_identities(a in value_vec(), b in value_vec()) {
        let (sa, _) = to_pair(a);
        let (sb, _) = to_pair(b);
        // Commutativity.
        prop_assert_eq!(sa.and(&sb), sb.and(&sa));
        prop_assert_eq!(sa.or(&sb), sb.or(&sa));
        prop_assert_eq!(sa.xor(&sb), sb.xor(&sa));
        // A = (A∧B) ∨ (A∧¬B).
        prop_assert_eq!(sa.and(&sb).or(&sa.and_not(&sb)), sa.clone());
        // XOR = (A∨B) ∧ ¬(A∧B).
        prop_assert_eq!(sa.xor(&sb), sa.or(&sb).and_not(&sa.and(&sb)));
        // Idempotence / annihilation.
        prop_assert_eq!(sa.and(&sa), sa.clone());
        prop_assert_eq!(sa.or(&sa), sa.clone());
        prop_assert!(sa.xor(&sa).is_empty());
    }

    #[test]
    fn insert_remove_agree_with_reference(values in value_vec(),
                                          edits in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..100)) {
        let (mut set, mut reference) = to_pair(values);
        for (v, insert) in edits {
            if insert {
                prop_assert_eq!(set.insert(v), reference.insert(v));
            } else {
                prop_assert_eq!(set.remove(v), reference.remove(&v));
            }
        }
        prop_assert_eq!(set.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn rank_select_consistency(values in value_vec()) {
        let (set, reference) = to_pair(values);
        let sorted: Vec<u32> = reference.iter().copied().collect();
        for (n, &v) in sorted.iter().enumerate().take(50) {
            prop_assert_eq!(set.select(n as u64), Some(v));
            prop_assert_eq!(set.rank(v), n as u64 + 1);
        }
        prop_assert_eq!(set.select(set.len()), None);
    }

    #[test]
    fn serialization_roundtrips(values in value_vec(), optimize in any::<bool>()) {
        let (mut set, _) = to_pair(values);
        if optimize {
            set.run_optimize();
        }
        let back = Bitset::from_bytes(&set.to_bytes()).unwrap();
        prop_assert_eq!(back, set);
    }

    #[test]
    fn deserializer_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must never panic; any error is acceptable.
        let _ = Bitset::from_bytes(&bytes);
    }

    #[test]
    fn concatenated_stream_roundtrips(sets in proptest::collection::vec((value_vec(), any::<bool>()), 1..5)) {
        // Segment files are back-to-back serialised audiences (some
        // run-encoded); prefix decoding must recover each one exactly.
        let mut originals = Vec::new();
        let mut stream = Vec::new();
        for (values, optimize) in sets {
            let (mut set, _) = to_pair(values);
            if optimize {
                set.run_optimize();
            }
            set.write_into(&mut stream);
            originals.push(set);
        }
        let mut off = 0usize;
        for original in &originals {
            let (decoded, used) = Bitset::from_bytes_prefix(&stream[off..]).unwrap();
            prop_assert_eq!(&decoded, original);
            prop_assert_eq!(used, original.to_bytes().len());
            off += used;
        }
        prop_assert_eq!(off, stream.len());
    }

    #[test]
    fn run_optimize_is_semantically_invisible(values in value_vec(), probe in any::<u32>()) {
        let (mut set, reference) = to_pair(values);
        let other: Bitset = reference.iter().map(|v| v ^ 1).collect();
        let before_and = set.and(&other);
        set.run_optimize();
        prop_assert_eq!(set.len(), reference.len() as u64);
        prop_assert_eq!(set.contains(probe), reference.contains(&probe));
        prop_assert_eq!(set.and(&other), before_and);
        prop_assert_eq!(set.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
    }
}
