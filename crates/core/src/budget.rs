//! Client-side query budgeting — the paper's ethics-section discipline.
//!
//! > "We also minimized the load placed on the ad platforms by limiting
//! > both the count and rate of API queries we make."
//!
//! [`BudgetedSource`] wraps any [`EstimateSource`] and enforces exactly
//! that: a hard cap on total estimate queries and a minimum spacing
//! between consecutive queries. Experiments wrap their sources in it so
//! the query accounting reported alongside results is enforced, not just
//! observed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adcomp_obs::metrics::{Counter, Gauge, Registry};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};
use parking_lot_lite::Mutex;

use crate::source::{EstimateSource, SourceError};

/// Minimal mutex shim so this crate does not grow a dependency for one
/// lock (std's poisoning is irrelevant here: we recover the inner value).
mod parking_lot_lite {
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }
}

/// Budget parameters.
#[derive(Clone, Copy, Debug)]
pub struct QueryBudget {
    /// Maximum estimate queries allowed (`u64::MAX` = unlimited).
    pub max_queries: u64,
    /// Minimum spacing between consecutive queries (throttling).
    pub min_interval: Duration,
}

impl QueryBudget {
    /// Unlimited budget (accounting only).
    pub fn unlimited() -> Self {
        QueryBudget {
            max_queries: u64::MAX,
            min_interval: Duration::ZERO,
        }
    }

    /// A capped budget with no throttling.
    pub fn capped(max_queries: u64) -> Self {
        QueryBudget {
            max_queries,
            min_interval: Duration::ZERO,
        }
    }
}

/// An [`EstimateSource`] wrapper enforcing a [`QueryBudget`].
///
/// Exceeding the cap yields [`SourceError::BudgetExhausted`] — a *fatal*
/// error the resilience layer never retries — so pipelines fail loudly
/// instead of silently hammering the platform. Throttling sleeps the
/// calling thread.
pub struct BudgetedSource {
    inner: Arc<dyn EstimateSource>,
    budget: QueryBudget,
    used: AtomicU64,
    last: Mutex<Option<Instant>>,
    /// The low-budget warning fired (once per source).
    warned: AtomicBool,
    /// `adcomp_budget_remaining` — queries left before the cap (finite
    /// caps only; the most recently active source wins the gauge).
    remaining_gauge: Arc<Gauge>,
    low_warnings: Arc<Counter>,
}

impl BudgetedSource {
    /// Wraps `inner` with `budget`.
    pub fn new(inner: Arc<dyn EstimateSource>, budget: QueryBudget) -> Self {
        let reg = Registry::global();
        BudgetedSource {
            inner,
            budget,
            used: AtomicU64::new(0),
            last: Mutex::new(None),
            warned: AtomicBool::new(false),
            remaining_gauge: reg.gauge("adcomp_budget_remaining"),
            low_warnings: reg.counter("adcomp_budget_low_warnings_total"),
        }
    }

    /// Estimate queries spent so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Queries remaining before the cap.
    pub fn remaining(&self) -> u64 {
        self.budget.max_queries.saturating_sub(self.used())
    }

    /// Whether the low-budget warning has fired for this source.
    pub fn low_budget_warned(&self) -> bool {
        self.warned.load(Ordering::Relaxed)
    }

    fn admit(&self) -> Result<(), SourceError> {
        // Reserve a slot; undoing on failure is unnecessary because a
        // rejected query was still *attempted* load-wise.
        let spent = self.used.fetch_add(1, Ordering::Relaxed);
        if spent >= self.budget.max_queries {
            self.remaining_gauge.set(0);
            return Err(SourceError::BudgetExhausted {
                used: spent + 1,
                cap: self.budget.max_queries,
            });
        }
        let cap = self.budget.max_queries;
        if cap != u64::MAX {
            let remaining = cap - (spent + 1).min(cap);
            self.remaining_gauge
                .set(remaining.min(i64::MAX as u64) as i64);
            // Warn once when less than 10 % of a finite budget remains.
            if remaining.saturating_mul(10) < cap && !self.warned.swap(true, Ordering::Relaxed) {
                self.low_warnings.inc();
                adcomp_obs::warn!(
                    "query budget low: {remaining} of {cap} queries remain for {}",
                    self.inner.label()
                );
            }
        }
        if !self.budget.min_interval.is_zero() {
            let mut last = self.last.lock();
            if let Some(prev) = *last {
                let elapsed = prev.elapsed();
                if elapsed < self.budget.min_interval {
                    std::thread::sleep(self.budget.min_interval - elapsed);
                }
            }
            *last = Some(Instant::now());
        }
        Ok(())
    }
}

impl EstimateSource for BudgetedSource {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        self.admit()?;
        self.inner.estimate(spec)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        // Validation is free: it does not hit the estimate endpoint.
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::AuditTarget;
    use adcomp_platform::{SimScale, Simulation};
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(47, SimScale::Test))
    }

    #[test]
    fn passes_through_until_cap_then_fails_loudly() {
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::capped(3));
        let spec = TargetingSpec::everyone();
        for _ in 0..3 {
            assert!(src.estimate(&spec).is_ok());
        }
        let err = src.estimate(&spec).unwrap_err();
        assert!(err.to_string().contains("budget exhausted"), "{err}");
        assert_eq!(src.used(), 4, "rejected attempts are counted");
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn metadata_and_validation_are_free() {
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::capped(0));
        assert!(src.catalog_len() > 0);
        assert!(src.attribute_name(AttributeId(0)).is_some());
        assert!(src.check(&TargetingSpec::and_of([AttributeId(0)])).is_ok());
        assert!(src.supports_demographics());
        // But estimates are blocked.
        assert!(src.estimate(&TargetingSpec::everyone()).is_err());
    }

    #[test]
    fn throttling_spaces_queries() {
        let budget = QueryBudget {
            max_queries: u64::MAX,
            min_interval: Duration::from_millis(20),
        };
        let src = BudgetedSource::new(sim().linkedin.clone(), budget);
        let spec = TargetingSpec::everyone();
        let start = Instant::now();
        for _ in 0..4 {
            src.estimate(&spec).unwrap();
        }
        // 4 queries with 20 ms spacing → at least 60 ms total.
        assert!(
            start.elapsed() >= Duration::from_millis(60),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn budgeted_source_drives_full_pipeline() {
        // A whole survey fits in a generous budget and the count matches
        // the expected 7·(catalog+1) queries.
        let catalog = sim().linkedin.catalog().len() as u64;
        let expected = 7 * (catalog + 1);
        let src = Arc::new(BudgetedSource::new(
            sim().linkedin.clone(),
            QueryBudget::capped(expected),
        ));
        let target = AuditTarget::direct(src.clone());
        let survey = crate::discovery::survey_individuals(&target).unwrap();
        assert_eq!(survey.entries.len() as u64, catalog);
        assert_eq!(
            src.used(),
            expected,
            "the survey's query count is predictable"
        );
    }

    #[test]
    fn low_budget_warns_exactly_once() {
        let counter = Registry::global().counter("adcomp_budget_low_warnings_total");
        let before = counter.get();
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::capped(10));
        let spec = TargetingSpec::everyone();
        for _ in 0..9 {
            src.estimate(&spec).unwrap();
        }
        assert!(
            !src.low_budget_warned(),
            "1 of 10 remaining is exactly 10 %, not below it"
        );
        src.estimate(&spec).unwrap();
        assert!(src.low_budget_warned(), "0 of 10 remaining is low");
        assert!(counter.get() > before, "the warning reached the registry");
        // Draining the rest must not warn again (the flag is sticky).
        let _ = src.estimate(&spec);
        assert!(src.low_budget_warned());
        // And the warning left a trace event behind.
        let ring = adcomp_obs::trace::Tracer::global().ring_events();
        assert!(ring.iter().any(|e| {
            e.name == "log:warn"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "message" && v.contains("query budget low"))
        }));
    }

    #[test]
    fn unlimited_budget_never_blocks() {
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::unlimited());
        for _ in 0..50 {
            src.estimate(&TargetingSpec::everyone()).unwrap();
        }
        assert!(src.remaining() > 1_000_000);
    }
}
