//! Client-side query budgeting — the paper's ethics-section discipline.
//!
//! > "We also minimized the load placed on the ad platforms by limiting
//! > both the count and rate of API queries we make."
//!
//! [`BudgetedSource`] wraps any [`EstimateSource`] and enforces exactly
//! that: a hard cap on total estimate queries and a minimum spacing
//! between consecutive queries. Experiments wrap their sources in it so
//! the query accounting reported alongside results is enforced, not just
//! observed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adcomp_obs::metrics::{Counter, Gauge, Registry};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};

use crate::source::{EstimateSource, SourceError};

/// Budget parameters.
#[derive(Clone, Copy, Debug)]
pub struct QueryBudget {
    /// Maximum estimate queries allowed (`u64::MAX` = unlimited).
    pub max_queries: u64,
    /// Minimum spacing between consecutive queries (throttling).
    pub min_interval: Duration,
}

impl QueryBudget {
    /// Unlimited budget (accounting only).
    pub fn unlimited() -> Self {
        QueryBudget {
            max_queries: u64::MAX,
            min_interval: Duration::ZERO,
        }
    }

    /// A capped budget with no throttling.
    pub fn capped(max_queries: u64) -> Self {
        QueryBudget {
            max_queries,
            min_interval: Duration::ZERO,
        }
    }
}

/// An [`EstimateSource`] wrapper enforcing a [`QueryBudget`].
///
/// Exceeding the cap yields [`SourceError::BudgetExhausted`] — a *fatal*
/// error the resilience layer never retries — so pipelines fail loudly
/// instead of silently hammering the platform. Throttling sleeps the
/// calling thread.
pub struct BudgetedSource {
    inner: Arc<dyn EstimateSource>,
    budget: QueryBudget,
    used: AtomicU64,
    /// Pacing epoch; `next_slot` is nanoseconds past this instant.
    epoch: Instant,
    /// Next free issue slot, reserved by CAS so concurrent callers each
    /// get a distinct slot `min_interval` apart and sleep without holding
    /// any lock.
    next_slot: AtomicU64,
    /// The low-budget warning fired (once per source).
    warned: AtomicBool,
    /// `adcomp_budget_remaining` — queries left before the cap (finite
    /// caps only; the most recently active source wins the gauge).
    remaining_gauge: Arc<Gauge>,
    low_warnings: Arc<Counter>,
}

impl BudgetedSource {
    /// Wraps `inner` with `budget`.
    pub fn new(inner: Arc<dyn EstimateSource>, budget: QueryBudget) -> Self {
        let reg = Registry::global();
        BudgetedSource {
            inner,
            budget,
            used: AtomicU64::new(0),
            epoch: Instant::now(),
            next_slot: AtomicU64::new(0),
            warned: AtomicBool::new(false),
            remaining_gauge: reg.gauge("adcomp_budget_remaining"),
            low_warnings: reg.counter("adcomp_budget_low_warnings_total"),
        }
    }

    /// Estimate queries spent so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Queries remaining before the cap.
    pub fn remaining(&self) -> u64 {
        self.budget.max_queries.saturating_sub(self.used())
    }

    /// Whether the low-budget warning has fired for this source.
    pub fn low_budget_warned(&self) -> bool {
        self.warned.load(Ordering::Relaxed)
    }

    fn admit(&self) -> Result<(), SourceError> {
        // Reserve a slot; undoing on failure is unnecessary because a
        // rejected query was still *attempted* load-wise.
        let spent = self.used.fetch_add(1, Ordering::Relaxed);
        if spent >= self.budget.max_queries {
            self.remaining_gauge.set(0);
            return Err(SourceError::BudgetExhausted {
                used: spent + 1,
                cap: self.budget.max_queries,
            });
        }
        let cap = self.budget.max_queries;
        if cap != u64::MAX {
            let remaining = cap - (spent + 1).min(cap);
            self.remaining_gauge
                .set(remaining.min(i64::MAX as u64) as i64);
            // Warn once when less than 10 % of a finite budget remains.
            if remaining.saturating_mul(10) < cap && !self.warned.swap(true, Ordering::Relaxed) {
                self.low_warnings.inc();
                adcomp_obs::warn!(
                    "query budget low: {remaining} of {cap} queries remain for {}",
                    self.inner.label()
                );
            }
        }
        self.pace();
        Ok(())
    }

    /// Reserves the next issue slot and sleeps until it arrives. Slots are
    /// claimed with a CAS, so no lock is held while sleeping and
    /// concurrent callers are paced `min_interval` apart rather than
    /// serialised behind one another's naps.
    fn pace(&self) {
        let interval = self.budget.min_interval.as_nanos() as u64;
        if interval == 0 {
            return;
        }
        let now = self.epoch.elapsed().as_nanos() as u64;
        let mut cur = self.next_slot.load(Ordering::Relaxed);
        let slot = loop {
            // Idle time is not banked: a burst after a quiet stretch still
            // spaces out from "now", matching the serial throttle.
            let slot = cur.max(now);
            match self.next_slot.compare_exchange_weak(
                cur,
                slot + interval,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break slot,
                Err(actual) => cur = actual,
            }
        };
        if slot > now {
            std::thread::sleep(Duration::from_nanos(slot - now));
        }
    }
}

impl EstimateSource for BudgetedSource {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        self.admit()?;
        self.inner.estimate(spec)
    }

    fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, SourceError>> {
        if !self.budget.min_interval.is_zero() {
            // Throttled budgets stay serial — spacing the queries out is
            // the whole point, so there is nothing to batch.
            return specs.iter().map(|s| self.estimate(s)).collect();
        }
        // Reserve every slot up front (one atomic reservation per query),
        // so concurrent batches can never over-issue past the cap, then
        // forward the admitted queries as one inner batch: each logical
        // query is charged exactly once regardless of how the layers
        // below fan it out.
        let admitted: Vec<Result<(), SourceError>> = specs.iter().map(|_| self.admit()).collect();
        if admitted.iter().all(|a| a.is_ok()) {
            return self.inner.estimate_batch(specs);
        }
        let subset: Vec<TargetingSpec> = specs
            .iter()
            .zip(&admitted)
            .filter(|(_, a)| a.is_ok())
            .map(|(s, _)| s.clone())
            .collect();
        let mut answers = self.inner.estimate_batch(&subset).into_iter();
        admitted
            .into_iter()
            .map(|a| match a {
                Ok(()) => answers.next().expect("one answer per admitted query"),
                Err(e) => Err(e),
            })
            .collect()
    }

    fn batch_window(&self) -> usize {
        self.inner.batch_window()
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        // Validation is free: it does not hit the estimate endpoint.
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::AuditTarget;
    use adcomp_platform::{SimScale, Simulation};
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(47, SimScale::Test))
    }

    #[test]
    fn passes_through_until_cap_then_fails_loudly() {
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::capped(3));
        let spec = TargetingSpec::everyone();
        for _ in 0..3 {
            assert!(src.estimate(&spec).is_ok());
        }
        let err = src.estimate(&spec).unwrap_err();
        assert!(err.to_string().contains("budget exhausted"), "{err}");
        assert_eq!(src.used(), 4, "rejected attempts are counted");
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn metadata_and_validation_are_free() {
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::capped(0));
        assert!(src.catalog_len() > 0);
        assert!(src.attribute_name(AttributeId(0)).is_some());
        assert!(src.check(&TargetingSpec::and_of([AttributeId(0)])).is_ok());
        assert!(src.supports_demographics());
        // But estimates are blocked.
        assert!(src.estimate(&TargetingSpec::everyone()).is_err());
    }

    #[test]
    fn throttling_spaces_queries() {
        let budget = QueryBudget {
            max_queries: u64::MAX,
            min_interval: Duration::from_millis(20),
        };
        let src = BudgetedSource::new(sim().linkedin.clone(), budget);
        let spec = TargetingSpec::everyone();
        let start = Instant::now();
        for _ in 0..4 {
            src.estimate(&spec).unwrap();
        }
        // 4 queries with 20 ms spacing → at least 60 ms total.
        assert!(
            start.elapsed() >= Duration::from_millis(60),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn budgeted_source_drives_full_pipeline() {
        // A whole survey fits in a generous budget and the count matches
        // the expected 7·(catalog+1) queries.
        let catalog = sim().linkedin.catalog().len() as u64;
        let expected = 7 * (catalog + 1);
        let src = Arc::new(BudgetedSource::new(
            sim().linkedin.clone(),
            QueryBudget::capped(expected),
        ));
        let target = AuditTarget::direct(src.clone());
        let survey = crate::discovery::survey_individuals(&target).unwrap();
        assert_eq!(survey.entries.len() as u64, catalog);
        assert_eq!(
            src.used(),
            expected,
            "the survey's query count is predictable"
        );
    }

    #[test]
    fn low_budget_warns_exactly_once() {
        let counter = Registry::global().counter("adcomp_budget_low_warnings_total");
        let before = counter.get();
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::capped(10));
        let spec = TargetingSpec::everyone();
        for _ in 0..9 {
            src.estimate(&spec).unwrap();
        }
        assert!(
            !src.low_budget_warned(),
            "1 of 10 remaining is exactly 10 %, not below it"
        );
        src.estimate(&spec).unwrap();
        assert!(src.low_budget_warned(), "0 of 10 remaining is low");
        assert!(counter.get() > before, "the warning reached the registry");
        // Draining the rest must not warn again (the flag is sticky).
        let _ = src.estimate(&spec);
        assert!(src.low_budget_warned());
        // And the warning left a trace event behind.
        let ring = adcomp_obs::trace::Tracer::global().ring_events();
        assert!(ring.iter().any(|e| {
            e.name == "log:warn"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "message" && v.contains("query budget low"))
        }));
    }

    #[test]
    fn cap_is_exact_under_concurrency() {
        // 8 threads race 200 queries against a cap of 100: exactly 100
        // are admitted — the atomic reservation can never over-issue.
        let src = Arc::new(BudgetedSource::new(
            sim().linkedin.clone(),
            QueryBudget::capped(100),
        ));
        let ok = Arc::new(AtomicU64::new(0));
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let src = src.clone();
                let ok = ok.clone();
                s.spawn(move |_| {
                    let spec = TargetingSpec::everyone();
                    for _ in 0..25 {
                        if src.estimate(&spec).is_ok() {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(ok.load(Ordering::Relaxed), 100);
        assert_eq!(src.used(), 200, "every attempt is counted");
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn batches_charge_once_per_query_and_split_at_the_cap() {
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::capped(3));
        let specs = vec![TargetingSpec::everyone(); 5];
        let results = src.estimate_batch(&specs);
        assert_eq!(results.len(), 5);
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 3);
        assert!(matches!(
            results[3],
            Err(SourceError::BudgetExhausted { .. })
        ));
        assert_eq!(src.used(), 5, "rejected batch entries still count");
    }

    #[test]
    fn concurrent_throttled_queries_are_spaced() {
        // 4 threads each issue one query with a 10 ms interval: the slot
        // reservation spaces them out, so the whole burst takes ≥ 30 ms.
        let budget = QueryBudget {
            max_queries: u64::MAX,
            min_interval: Duration::from_millis(10),
        };
        let src = Arc::new(BudgetedSource::new(sim().linkedin.clone(), budget));
        let start = Instant::now();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let src = src.clone();
                s.spawn(move |_| {
                    src.estimate(&TargetingSpec::everyone()).unwrap();
                });
            }
        })
        .unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn unlimited_budget_never_blocks() {
        let src = BudgetedSource::new(sim().linkedin.clone(), QueryBudget::unlimited());
        for _ in 0..50 {
            src.estimate(&TargetingSpec::everyone()).unwrap();
        }
        assert!(src.remaining() > 1_000_000);
    }
}
