//! Targeting-set construction: individuals, random compositions, and the
//! paper's greedy discovery of the most skewed compositions.
//!
//! The greedy method (§3, "Discovering the most skewed compositions"):
//! rank individual attributes by representation ratio for the class under
//! study, take the smallest prefix whose pairwise (triple-wise, …)
//! combinations number at least `top_k` (46 individuals → 1 035 pairs for
//! `top_k` = 1 000), randomly sample `top_k` combinations, and measure
//! them. Niche targetings (reach below 10 000) are excluded. On Google,
//! where only cross-feature ANDs have size statistics, combinations are
//! restricted to composable pairs and the prefix is grown until enough
//! composable combinations exist (footnote 9).

use adcomp_targeting::{AttributeId, TargetingSpec};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::metrics::{measure_spec, rep_ratio_of, SpecMeasurement};
use crate::source::{AuditTarget, SensitiveClass, SourceError};

/// Deterministic RNG used throughout the audit.
pub type AuditRng = rand::rngs::StdRng;

/// Whether a discovery looks for compositions skewed *toward* a class
/// (high ratio; the paper's "Top") or *against* it (low ratio; "Bottom").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Most skewed toward the class ("Top k-way").
    Toward,
    /// Most skewed against the class ("Bottom k-way").
    Against,
}

impl Direction {
    /// Both directions, Top first.
    pub const BOTH: [Direction; 2] = [Direction::Toward, Direction::Against];

    /// Figure label prefix.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Toward => "Top",
            Direction::Against => "Bottom",
        }
    }
}

/// A targeting together with its seven-estimate measurement.
#[derive(Clone, Debug)]
pub struct MeasuredTargeting {
    /// The spec (targeting-interface ids).
    pub spec: TargetingSpec,
    /// The composed individual attributes (empty for non-compositional
    /// specs).
    pub attrs: Vec<AttributeId>,
    /// The rounded measurements.
    pub measurement: SpecMeasurement,
}

impl MeasuredTargeting {
    /// Representation ratio for a class given the base measurement.
    pub fn ratio(&self, base: &SpecMeasurement, class: SensitiveClass) -> Option<f64> {
        rep_ratio_of(&self.measurement, base, class)
    }
}

/// All individual attributes of a target, measured, plus the base
/// population measurement `RA`.
#[derive(Clone, Debug)]
pub struct IndividualSurvey {
    /// One measured targeting per catalog attribute (index = id).
    pub entries: Vec<MeasuredTargeting>,
    /// Measurement of [`TargetingSpec::everyone`] — the denominators of
    /// Equation 1.
    pub base: SpecMeasurement,
}

/// Measures every individual attribute on the target (7 estimates each,
/// plus 7 for the base population) — the audit's most query-hungry step,
/// matching the paper's per-platform crawls.
pub fn survey_individuals(target: &AuditTarget) -> Result<IndividualSurvey, SourceError> {
    let base = measure_spec(target, &TargetingSpec::everyone())?;
    let mut entries = Vec::with_capacity(target.targeting.catalog_len() as usize);
    for raw in 0..target.targeting.catalog_len() {
        let id = AttributeId(raw);
        let spec = TargetingSpec::and_of([id]);
        let measurement = measure_spec(target, &spec)?;
        entries.push(MeasuredTargeting {
            spec,
            attrs: vec![id],
            measurement,
        });
    }
    Ok(IndividualSurvey { entries, base })
}

/// Discovery parameters (paper defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiscoveryConfig {
    /// Number of compositions to discover (paper: 1 000).
    pub top_k: usize,
    /// Minimum total reach for a targeting to be considered (paper:
    /// 10 000).
    pub min_reach: u64,
    /// Composition arity (paper: 2, and 3 for the restricted-interface
    /// scaling experiment).
    pub arity: usize,
    /// RNG seed for the sampling steps.
    pub seed: u64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            top_k: 1_000,
            min_reach: 10_000,
            arity: 2,
            seed: 0x5EED,
        }
    }
}

/// Ranks eligible individuals most-skewed-first for `class`/`direction`.
/// Eligible = reach ≥ `min_reach` and a defined ratio. Returns indices
/// into `survey.entries`.
pub fn rank_individuals(
    survey: &IndividualSurvey,
    class: SensitiveClass,
    direction: Direction,
    min_reach: u64,
) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64)> = survey
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.measurement.total >= min_reach)
        .filter_map(|(i, e)| e.ratio(&survey.base, class).map(|r| (i, r)))
        .collect();
    ranked.sort_by(|a, b| match direction {
        Direction::Toward => b.1.partial_cmp(&a.1).expect("ratios are finite"),
        Direction::Against => a.1.partial_cmp(&b.1).expect("ratios are finite"),
    });
    ranked.into_iter().map(|(i, _)| i).collect()
}

/// Composes `attrs` into an AND spec and measures it.
pub fn compose_and_measure(
    target: &AuditTarget,
    attrs: &[AttributeId],
) -> Result<MeasuredTargeting, SourceError> {
    let spec = TargetingSpec::and_of(attrs.iter().copied());
    let measurement = measure_spec(target, &spec)?;
    Ok(MeasuredTargeting {
        spec,
        attrs: attrs.to_vec(),
        measurement,
    })
}

/// All `arity`-subsets of `ids` whose members are pairwise composable on
/// the target's interface.
fn composable_subsets(
    target: &AuditTarget,
    ids: &[AttributeId],
    arity: usize,
) -> Vec<Vec<AttributeId>> {
    let mut out = Vec::new();
    let mut stack: Vec<AttributeId> = Vec::with_capacity(arity);
    fn recurse(
        target: &AuditTarget,
        ids: &[AttributeId],
        start: usize,
        arity: usize,
        stack: &mut Vec<AttributeId>,
        out: &mut Vec<Vec<AttributeId>>,
    ) {
        if stack.len() == arity {
            out.push(stack.clone());
            return;
        }
        for i in start..ids.len() {
            let candidate = ids[i];
            if stack
                .iter()
                .all(|&prev| target.targeting.can_compose(prev, candidate))
            {
                stack.push(candidate);
                recurse(target, ids, i + 1, arity, stack, out);
                stack.pop();
            }
        }
    }
    recurse(target, ids, 0, arity, &mut stack, &mut out);
    out
}

/// The paper's greedy discovery: combinations of the most skewed
/// individuals, sampled down to `top_k`, measured, and filtered to
/// `min_reach`. `ranked` is the most-skewed-first index list from
/// [`rank_individuals`] (possibly with a prefix removed, for the removal
/// experiment).
pub fn top_compositions(
    target: &AuditTarget,
    survey: &IndividualSurvey,
    ranked: &[usize],
    cfg: &DiscoveryConfig,
) -> Result<Vec<MeasuredTargeting>, SourceError> {
    assert!(cfg.arity >= 2, "compositions need arity ≥ 2");
    // Grow the prefix until enough composable combinations exist.
    let mut m = cfg.arity;
    let mut combos: Vec<Vec<AttributeId>> = Vec::new();
    while m <= ranked.len() {
        let prefix: Vec<AttributeId> = ranked[..m]
            .iter()
            .map(|&i| survey.entries[i].attrs[0])
            .collect();
        combos = composable_subsets(target, &prefix, cfg.arity);
        if combos.len() >= cfg.top_k {
            break;
        }
        m += 1;
    }
    // Sample down to top_k (paper: 1 000 of the 1 035 pairs).
    let mut rng = AuditRng::seed_from_u64(cfg.seed);
    combos.shuffle(&mut rng);
    combos.truncate(cfg.top_k);

    let mut out = Vec::with_capacity(combos.len());
    for attrs in &combos {
        let mt = compose_and_measure(target, attrs)?;
        if mt.measurement.total >= cfg.min_reach {
            out.push(mt);
        }
    }
    Ok(out)
}

/// Random `arity`-way compositions over the whole catalog (the paper's
/// "Random 2-way" set): distinct, composable, measured; reach-filtered.
pub fn random_compositions(
    target: &AuditTarget,
    cfg: &DiscoveryConfig,
) -> Result<Vec<MeasuredTargeting>, SourceError> {
    let n = target.targeting.catalog_len();
    assert!(n as usize >= cfg.arity, "catalog smaller than arity");
    let mut rng = AuditRng::seed_from_u64(cfg.seed ^ 0x52A4D);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(cfg.top_k);
    // Bounded attempts so a tiny/incomposable catalog cannot loop forever.
    let max_attempts = cfg.top_k * 50;
    let mut attempts = 0;
    while out.len() < cfg.top_k && attempts < max_attempts {
        attempts += 1;
        let mut attrs: Vec<AttributeId> = Vec::with_capacity(cfg.arity);
        while attrs.len() < cfg.arity {
            let candidate = AttributeId(rng.gen_range(0..n));
            if attrs
                .iter()
                .all(|&prev| target.targeting.can_compose(prev, candidate))
            {
                attrs.push(candidate);
            } else {
                break;
            }
        }
        if attrs.len() != cfg.arity {
            continue;
        }
        attrs.sort_unstable();
        if !seen.insert(attrs.clone()) {
            continue;
        }
        let mt = compose_and_measure(target, &attrs)?;
        if mt.measurement.total >= cfg.min_reach {
            out.push(mt);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_platform::{SimScale, Simulation};
    use adcomp_population::Gender;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(41, SimScale::Test))
    }

    fn cfg(top_k: usize) -> DiscoveryConfig {
        DiscoveryConfig {
            top_k,
            min_reach: 10_000,
            arity: 2,
            seed: 7,
        }
    }

    const MALE: SensitiveClass = SensitiveClass::Gender(Gender::Male);

    #[test]
    fn survey_measures_every_attribute() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        assert_eq!(survey.entries.len() as u32, target.targeting.catalog_len());
        assert!(survey.base.total > 0);
        for e in &survey.entries {
            assert_eq!(e.attrs.len(), 1);
            assert!(e.measurement.total <= survey.base.total);
        }
    }

    #[test]
    fn ranking_is_monotone_and_eligible() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, 10_000);
        assert!(!ranked.is_empty());
        let ratios: Vec<f64> = ranked
            .iter()
            .map(|&i| survey.entries[i].ratio(&survey.base, MALE).unwrap())
            .collect();
        assert!(
            ratios.windows(2).all(|w| w[0] >= w[1]),
            "descending for Toward"
        );
        for &i in &ranked {
            assert!(survey.entries[i].measurement.total >= 10_000);
        }
        let ranked_against = rank_individuals(&survey, MALE, Direction::Against, 10_000);
        let r2: Vec<f64> = ranked_against
            .iter()
            .map(|&i| survey.entries[i].ratio(&survey.base, MALE).unwrap())
            .collect();
        assert!(r2.windows(2).all(|w| w[0] <= w[1]), "ascending for Against");
    }

    #[test]
    fn top_compositions_beat_individuals_on_average() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, 10_000);
        let top = top_compositions(&target, &survey, &ranked, &cfg(60)).unwrap();
        assert!(!top.is_empty());
        let top_median = {
            let mut r: Vec<f64> = top
                .iter()
                .filter_map(|t| t.ratio(&survey.base, MALE))
                .collect();
            r.sort_by(|a, b| a.partial_cmp(b).unwrap());
            r[r.len() / 2]
        };
        let individual_median = {
            let mut r: Vec<f64> = ranked
                .iter()
                .map(|&i| survey.entries[i].ratio(&survey.base, MALE).unwrap())
                .collect();
            r.sort_by(|a, b| a.partial_cmp(b).unwrap());
            r[r.len() / 2]
        };
        assert!(
            top_median > individual_median,
            "top compositions ({top_median:.2}) must out-skew individuals ({individual_median:.2})"
        );
        // All compositions have the configured arity and reach.
        for t in &top {
            assert_eq!(t.attrs.len(), 2);
            assert!(t.measurement.total >= 10_000);
        }
    }

    #[test]
    fn google_compositions_are_cross_feature() {
        let target = AuditTarget::for_platform(&sim().google, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, 10_000);
        let top = top_compositions(&target, &survey, &ranked, &cfg(40)).unwrap();
        assert!(!top.is_empty(), "google must find composable pairs");
        for t in &top {
            let fa = target.targeting.attribute_feature(t.attrs[0]).unwrap();
            let fb = target.targeting.attribute_feature(t.attrs[1]).unwrap();
            assert_ne!(fa, fb, "google pairs must span features");
        }
    }

    #[test]
    fn random_compositions_are_distinct_and_valid() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let random = random_compositions(&target, &cfg(50)).unwrap();
        assert!(random.len() >= 40, "got {}", random.len());
        let mut seen = std::collections::HashSet::new();
        for t in &random {
            assert_eq!(t.attrs.len(), 2);
            assert!(seen.insert(t.attrs.clone()), "duplicate pair {:?}", t.attrs);
            assert!(t.measurement.total >= 10_000);
            assert!(target.targeting.check(&t.spec).is_ok());
        }
    }

    #[test]
    fn discovery_is_deterministic_in_seed() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, 10_000);
        let a = top_compositions(&target, &survey, &ranked, &cfg(30)).unwrap();
        let b = top_compositions(&target, &survey, &ranked, &cfg(30)).unwrap();
        let pa: Vec<_> = a.iter().map(|t| t.attrs.clone()).collect();
        let pb: Vec<_> = b.iter().map(|t| t.attrs.clone()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn three_way_composition_on_restricted() {
        let target = AuditTarget::for_platform(&sim().facebook_restricted, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, 10_000);
        let mut c = cfg(20);
        c.arity = 3;
        let top = top_compositions(&target, &survey, &ranked, &c).unwrap();
        assert!(!top.is_empty());
        for t in &top {
            assert_eq!(t.attrs.len(), 3);
            assert_eq!(t.spec.arity(), 3);
        }
    }
}
