//! Targeting-set construction: individuals, random compositions, and the
//! paper's greedy discovery of the most skewed compositions.
//!
//! The greedy method (§3, "Discovering the most skewed compositions"):
//! rank individual attributes by representation ratio for the class under
//! study, take the smallest prefix whose pairwise (triple-wise, …)
//! combinations number at least `top_k` (46 individuals → 1 035 pairs for
//! `top_k` = 1 000), randomly sample `top_k` combinations, and measure
//! them. Niche targetings (reach below 10 000) are excluded. On Google,
//! where only cross-feature ANDs have size statistics, combinations are
//! restricted to composable pairs and the prefix is grown until enough
//! composable combinations exist (footnote 9).

use std::collections::HashMap;

use adcomp_platform::ReachOracle;
use adcomp_targeting::{AttributeId, TargetingSpec};
use rand::Rng;

use crate::metrics::{measure_spec, measure_spec_batch, rep_ratio_of, SpecMeasurement};
use crate::source::{AuditTarget, SensitiveClass, SourceError};

/// Deterministic RNG used throughout the audit.
pub type AuditRng = rand::rngs::StdRng;

/// Whether a discovery looks for compositions skewed *toward* a class
/// (high ratio; the paper's "Top") or *against* it (low ratio; "Bottom").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Most skewed toward the class ("Top k-way").
    Toward,
    /// Most skewed against the class ("Bottom k-way").
    Against,
}

impl Direction {
    /// Both directions, Top first.
    pub const BOTH: [Direction; 2] = [Direction::Toward, Direction::Against];

    /// Figure label prefix.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Toward => "Top",
            Direction::Against => "Bottom",
        }
    }
}

/// A targeting together with its seven-estimate measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasuredTargeting {
    /// The spec (targeting-interface ids).
    pub spec: TargetingSpec,
    /// The composed individual attributes (empty for non-compositional
    /// specs).
    pub attrs: Vec<AttributeId>,
    /// The rounded measurements.
    pub measurement: SpecMeasurement,
}

impl MeasuredTargeting {
    /// Representation ratio for a class given the base measurement.
    pub fn ratio(&self, base: &SpecMeasurement, class: SensitiveClass) -> Option<f64> {
        rep_ratio_of(&self.measurement, base, class)
    }
}

/// All individual attributes of a target, measured, plus the base
/// population measurement `RA`.
#[derive(Clone, Debug)]
pub struct IndividualSurvey {
    /// One measured targeting per catalog attribute (index = id).
    pub entries: Vec<MeasuredTargeting>,
    /// Measurement of [`TargetingSpec::everyone`] — the denominators of
    /// Equation 1.
    pub base: SpecMeasurement,
}

/// Measures every individual attribute on the target (7 estimates each,
/// plus 7 for the base population) — the audit's most query-hungry step,
/// matching the paper's per-platform crawls.
pub fn survey_individuals(target: &AuditTarget) -> Result<IndividualSurvey, SourceError> {
    // One batch: the base population first, then every attribute — the
    // exact query list (and order) of the old serial loop, so budget
    // accounting is unchanged and an attached engine changes nothing but
    // wall-clock.
    let ids: Vec<AttributeId> = (0..target.targeting.catalog_len())
        .map(AttributeId)
        .collect();
    let mut specs = Vec::with_capacity(ids.len() + 1);
    specs.push(TargetingSpec::everyone());
    specs.extend(ids.iter().map(|&id| TargetingSpec::and_of([id])));
    let mut measurements = measure_spec_batch(target, &specs)?.into_iter();
    let base = measurements.next().expect("base measurement");
    let entries = ids
        .into_iter()
        .zip(specs.into_iter().skip(1))
        .zip(measurements)
        .map(|((id, spec), measurement)| MeasuredTargeting {
            spec,
            attrs: vec![id],
            measurement,
        })
        .collect();
    Ok(IndividualSurvey { entries, base })
}

/// The paper's niche-targeting floor: targetings whose total reach is
/// below 10 000 are excluded everywhere (§3). Every experiment that
/// filters by reach shares this constant.
pub const DEFAULT_MIN_REACH: u64 = 10_000;

/// Discovery parameters (paper defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiscoveryConfig {
    /// Number of compositions to discover (paper: 1 000).
    pub top_k: usize,
    /// Minimum total reach for a targeting to be considered (paper:
    /// 10 000).
    pub min_reach: u64,
    /// Composition arity (paper: 2, and 3 for the restricted-interface
    /// scaling experiment).
    pub arity: usize,
    /// RNG seed for the sampling steps.
    pub seed: u64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            top_k: 1_000,
            min_reach: DEFAULT_MIN_REACH,
            arity: 2,
            seed: 0x5EED,
        }
    }
}

/// Ranks eligible individuals most-skewed-first for `class`/`direction`.
/// Eligible = reach ≥ `min_reach` and a defined ratio. Returns indices
/// into `survey.entries`.
pub fn rank_individuals(
    survey: &IndividualSurvey,
    class: SensitiveClass,
    direction: Direction,
    min_reach: u64,
) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64)> = survey
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.measurement.total >= min_reach)
        .filter_map(|(i, e)| e.ratio(&survey.base, class).map(|r| (i, r)))
        .collect();
    // `total_cmp` instead of a panicking `partial_cmp`: a NaN ratio (it
    // should not happen, but estimates come from outside) sorts to the
    // extreme instead of aborting a multi-hour audit mid-run.
    ranked.sort_by(|a, b| match direction {
        Direction::Toward => b.1.total_cmp(&a.1),
        Direction::Against => a.1.total_cmp(&b.1),
    });
    ranked.into_iter().map(|(i, _)| i).collect()
}

/// Composes `attrs` into an AND spec and measures it.
pub fn compose_and_measure(
    target: &AuditTarget,
    attrs: &[AttributeId],
) -> Result<MeasuredTargeting, SourceError> {
    let spec = TargetingSpec::and_of(attrs.iter().copied());
    let measurement = measure_spec(target, &spec)?;
    Ok(MeasuredTargeting {
        spec,
        attrs: attrs.to_vec(),
        measurement,
    })
}

/// Enumerates every `arity`-subset of `ids` whose members are pairwise
/// composable on the target's interface, in lexicographic position
/// order, without materializing them: `visit` sees each subset through a
/// transient stack slice.
fn visit_composable_subsets<F: FnMut(&[AttributeId])>(
    target: &AuditTarget,
    ids: &[AttributeId],
    arity: usize,
    visit: &mut F,
) {
    fn recurse<F: FnMut(&[AttributeId])>(
        target: &AuditTarget,
        ids: &[AttributeId],
        start: usize,
        arity: usize,
        stack: &mut Vec<AttributeId>,
        visit: &mut F,
    ) {
        if stack.len() == arity {
            visit(stack);
            return;
        }
        for i in start..ids.len() {
            let candidate = ids[i];
            if stack
                .iter()
                .all(|&prev| target.targeting.can_compose(prev, candidate))
            {
                stack.push(candidate);
                recurse(target, ids, i + 1, arity, stack, visit);
                stack.pop();
            }
        }
    }
    let mut stack: Vec<AttributeId> = Vec::with_capacity(arity);
    recurse(target, ids, 0, arity, &mut stack, visit);
}

/// Number of composable `arity`-subsets of `ids` (no allocation).
fn count_composable_subsets(target: &AuditTarget, ids: &[AttributeId], arity: usize) -> usize {
    let mut n = 0;
    visit_composable_subsets(target, ids, arity, &mut |_| n += 1);
    n
}

/// Samples `min(top_k, n)` composable subsets with output **identical**
/// to materializing all `n`, running `[T]::shuffle` seeded with `seed`,
/// and truncating to `top_k` — without ever materializing the full list.
///
/// The Fisher–Yates walk the shuffle performs over the virtual array of
/// enumeration indices `0..n` is replayed sparsely: only entries still
/// in motion live in a map (a swap inserts one and retires one, so the
/// map tracks displacements, not the array), and only the `top_k`
/// surviving subsets are materialized in a second enumeration pass.
/// `n` is `count_composable_subsets` of the same arguments, passed in
/// because every caller has already computed it.
fn sample_composable_subsets(
    target: &AuditTarget,
    ids: &[AttributeId],
    arity: usize,
    top_k: usize,
    seed: u64,
    n: usize,
) -> Vec<Vec<AttributeId>> {
    if n == 0 || top_k == 0 {
        return Vec::new();
    }
    let k = top_k.min(n);
    let mut rng = crate::stats::seeded_rng(seed);
    // `displaced[p]` = value currently at virtual position `p`, when it
    // differs from `p` and `p` is not yet finalized.
    let mut displaced: HashMap<usize, usize> = HashMap::new();
    // `selected[p]` = enumeration index that ends up at position `p`.
    let mut selected: Vec<usize> = (0..k).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        let vi = displaced.get(&i).copied().unwrap_or(i);
        let vj = displaced.get(&j).copied().unwrap_or(j);
        displaced.insert(j, vi);
        // Position `i` is final after this swap (later iterations only
        // touch positions < i); record it if it survives the truncate.
        displaced.remove(&i);
        if i < k {
            selected[i] = vj;
        }
    }
    selected[0] = displaced.get(&0).copied().unwrap_or(0);
    // Second pass: materialize exactly the chosen subsets, each into its
    // final slot. A permutation never selects an index twice.
    let wanted: HashMap<usize, usize> = selected
        .iter()
        .enumerate()
        .map(|(pos, &index)| (index, pos))
        .collect();
    let mut out: Vec<Vec<AttributeId>> = vec![Vec::new(); k];
    let mut counter = 0usize;
    visit_composable_subsets(target, ids, arity, &mut |subset| {
        if let Some(&pos) = wanted.get(&counter) {
            out[pos] = subset.to_vec();
        }
        counter += 1;
    });
    out
}

/// The paper's greedy discovery: combinations of the most skewed
/// individuals, sampled down to `top_k`, measured, and filtered to
/// `min_reach`. `ranked` is the most-skewed-first index list from
/// [`rank_individuals`] (possibly with a prefix removed, for the removal
/// experiment).
pub fn top_compositions(
    target: &AuditTarget,
    survey: &IndividualSurvey,
    ranked: &[usize],
    cfg: &DiscoveryConfig,
) -> Result<Vec<MeasuredTargeting>, SourceError> {
    let combos = sampled_candidates(target, survey, ranked, cfg);

    // Measure as one batch (parallelized when the target has an engine;
    // the same queries in the same order either way).
    let specs: Vec<TargetingSpec> = combos
        .iter()
        .map(|attrs| TargetingSpec::and_of(attrs.iter().copied()))
        .collect();
    let measurements = measure_spec_batch(target, &specs)?;
    let mut out = Vec::with_capacity(combos.len());
    for ((attrs, spec), measurement) in combos.into_iter().zip(specs).zip(measurements) {
        if measurement.total >= cfg.min_reach {
            out.push(MeasuredTargeting {
                spec,
                attrs,
                measurement,
            });
        }
    }
    Ok(out)
}

/// The candidate schedule shared by [`top_compositions`] and
/// [`top_compositions_bounded`]: grow the ranked prefix until enough
/// composable combinations exist, then sample `top_k` of them. Both
/// searches consume exactly this list, in exactly this order — that
/// shared schedule is what makes the bounded search's output provably
/// identical to the greedy one's.
fn sampled_candidates(
    target: &AuditTarget,
    survey: &IndividualSurvey,
    ranked: &[usize],
    cfg: &DiscoveryConfig,
) -> Vec<Vec<AttributeId>> {
    assert!(cfg.arity >= 2, "compositions need arity ≥ 2");
    // Grow the prefix until enough composable combinations exist —
    // counting only; nothing is materialized until after sampling.
    let mut m = cfg.arity;
    let mut prefix: Vec<AttributeId> = Vec::new();
    let mut available = 0usize;
    while m <= ranked.len() {
        prefix = ranked[..m]
            .iter()
            .map(|&i| survey.entries[i].attrs[0])
            .collect();
        available = count_composable_subsets(target, &prefix, cfg.arity);
        if available >= cfg.top_k {
            break;
        }
        m += 1;
    }
    // Sample down to top_k (paper: 1 000 of the 1 035 pairs) — same
    // seed, same outputs as shuffling the materialized list, but memory
    // stays O(top_k).
    sample_composable_subsets(target, &prefix, cfg.arity, cfg.top_k, cfg.seed, available)
}

/// [`top_compositions`] with branch-and-bound pruning of the min-reach
/// filter: identical output, far fewer queries when most candidates are
/// niche.
///
/// The greedy scan measures all `top_k` candidates (seven estimates
/// each) and then discards those below `cfg.min_reach`. This variant
/// decides the reach test *before* measuring, using a
/// [`ReachOracle`] over the audited platform's ground truth:
///
/// 1. `threshold_len = oracle.min_len_for_estimate(cfg.min_reach)`
///    converts the rounded-estimate floor into an exact audience-length
///    floor (exact, because the estimate is monotone in the length).
/// 2. Every candidate gets the upper bound
///    `min over members of |attr|` — since `|A ∧ B| ≤ min(|A|, |B|)`,
///    a candidate bounded below `threshold_len` can never pass. The
///    candidates are visited best-bound-first, so the first bound below
///    the floor prunes the entire remaining tail without touching a
///    single bitset.
/// 3. Survivors of the bound get one thresholded intersection
///    ([`ReachOracle::and_reaches`]) with two-sided early exit — no
///    materialized intersection, no demographic queries.
/// 4. Only candidates the oracle confirms are measured (one batch, in
///    the original sampled order), and the measured filter is still
///    applied, so even an over-approximating oracle cannot change the
///    output.
///
/// Output equality with [`top_compositions`] holds when the oracle is
/// backed by the same platform the target measures on — a *direct*
/// fault-free target (no id translation, deterministic estimates). The
/// oracle errs toward `true` when undecidable, which costs a
/// measurement, never a result.
pub fn top_compositions_bounded(
    target: &AuditTarget,
    survey: &IndividualSurvey,
    ranked: &[usize],
    cfg: &DiscoveryConfig,
    oracle: &dyn ReachOracle,
) -> Result<Vec<MeasuredTargeting>, SourceError> {
    let combos = sampled_candidates(target, survey, ranked, cfg);
    let threshold_len = oracle.min_len_for_estimate(cfg.min_reach);

    // Best-first over the min-of-members upper bound. Unknown lens get
    // an infinite bound: never pruned by the bound, decided downstream.
    let mut order: Vec<(usize, u64)> = combos
        .iter()
        .enumerate()
        .map(|(i, attrs)| {
            let bound = attrs
                .iter()
                .map(|&a| oracle.attribute_len(a).unwrap_or(u64::MAX))
                .min()
                .unwrap_or(u64::MAX);
            (i, bound)
        })
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let mut survives = vec![false; combos.len()];
    for &(i, bound) in &order {
        if bound < threshold_len {
            // Bounds are sorted descending: every remaining candidate is
            // bounded below the floor too. Prune the whole tail.
            break;
        }
        survives[i] = oracle.and_reaches(&combos[i], threshold_len);
    }

    // Measure only the confirmed candidates — in sampled order, one
    // batch, with the measured filter kept as the final arbiter.
    let kept: Vec<usize> = (0..combos.len()).filter(|&i| survives[i]).collect();
    let specs: Vec<TargetingSpec> = kept
        .iter()
        .map(|&i| TargetingSpec::and_of(combos[i].iter().copied()))
        .collect();
    let measurements = measure_spec_batch(target, &specs)?;
    let mut out = Vec::with_capacity(kept.len());
    for ((i, spec), measurement) in kept.into_iter().zip(specs).zip(measurements) {
        if measurement.total >= cfg.min_reach {
            out.push(MeasuredTargeting {
                spec,
                attrs: combos[i].clone(),
                measurement,
            });
        }
    }
    Ok(out)
}

/// Draws per [`draw_unit_rng`] stream: candidate attempt `a` draws from
/// stream `a / DRAW_UNIT`, so the random-composition schedule is a pure
/// function of `(seed, attempt index)` — a distributed run shards
/// attempts into units and every shard reproduces its slice of the
/// schedule locally, no matter which endpoint serves which unit.
pub const DRAW_UNIT: usize = 64;

/// Stream domain separating candidate draws from every other
/// counter-partitioned stream in the workspace (see
/// [`crate::stats::unit_rng`]).
const DRAW_DOMAIN: u64 = 0x52A4D;

/// The RNG stream for candidate-draw unit `unit` of the
/// [`random_compositions`] schedule seeded with `seed`.
pub fn draw_unit_rng(seed: u64, unit: u64) -> AuditRng {
    crate::stats::unit_rng(seed, DRAW_DOMAIN, unit)
}

/// Random `arity`-way compositions over the whole catalog (the paper's
/// "Random 2-way" set): distinct, composable, measured; reach-filtered.
pub fn random_compositions(
    target: &AuditTarget,
    cfg: &DiscoveryConfig,
) -> Result<Vec<MeasuredTargeting>, SourceError> {
    let n = target.targeting.catalog_len();
    assert!(n as usize >= cfg.arity, "catalog smaller than arity");
    let mut rng = draw_unit_rng(cfg.seed, 0);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(cfg.top_k);
    // Bounded attempts so a tiny/incomposable catalog cannot loop forever.
    let max_attempts = cfg.top_k * 50;
    let mut attempts = 0;
    // Rounds of draw-then-measure. Candidate drawing consumes per-unit
    // RNG streams (see [`draw_unit_rng`]) advanced purely by the attempt
    // counter — never by measurement results — so measuring a round as
    // one batch (or sharding it across endpoints) leaves the candidate
    // schedule, the dedup set, and therefore the output bit-identical to
    // the serial single-endpoint loop.
    while out.len() < cfg.top_k && attempts < max_attempts {
        let needed = cfg.top_k - out.len();
        let mut round: Vec<Vec<AttributeId>> = Vec::with_capacity(needed);
        while round.len() < needed && attempts < max_attempts {
            if attempts > 0 && attempts % DRAW_UNIT == 0 {
                rng = draw_unit_rng(cfg.seed, (attempts / DRAW_UNIT) as u64);
            }
            attempts += 1;
            let mut attrs: Vec<AttributeId> = Vec::with_capacity(cfg.arity);
            while attrs.len() < cfg.arity {
                let candidate = AttributeId(rng.gen_range(0..n));
                if attrs
                    .iter()
                    .all(|&prev| target.targeting.can_compose(prev, candidate))
                {
                    attrs.push(candidate);
                } else {
                    break;
                }
            }
            if attrs.len() != cfg.arity {
                continue;
            }
            attrs.sort_unstable();
            if !seen.insert(attrs.clone()) {
                continue;
            }
            round.push(attrs);
        }
        if round.is_empty() {
            break;
        }
        let specs: Vec<TargetingSpec> = round
            .iter()
            .map(|attrs| TargetingSpec::and_of(attrs.iter().copied()))
            .collect();
        let measurements = measure_spec_batch(target, &specs)?;
        for ((attrs, spec), measurement) in round.into_iter().zip(specs).zip(measurements) {
            if measurement.total >= cfg.min_reach {
                out.push(MeasuredTargeting {
                    spec,
                    attrs,
                    measurement,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_platform::{SimScale, Simulation};
    use adcomp_population::Gender;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(41, SimScale::Test))
    }

    fn cfg(top_k: usize) -> DiscoveryConfig {
        DiscoveryConfig {
            top_k,
            min_reach: DEFAULT_MIN_REACH,
            arity: 2,
            seed: 7,
        }
    }

    const MALE: SensitiveClass = SensitiveClass::Gender(Gender::Male);

    #[test]
    fn survey_measures_every_attribute() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        assert_eq!(survey.entries.len() as u32, target.targeting.catalog_len());
        assert!(survey.base.total > 0);
        for e in &survey.entries {
            assert_eq!(e.attrs.len(), 1);
            assert!(e.measurement.total <= survey.base.total);
        }
    }

    #[test]
    fn ranking_is_monotone_and_eligible() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, DEFAULT_MIN_REACH);
        assert!(!ranked.is_empty());
        let ratios: Vec<f64> = ranked
            .iter()
            .map(|&i| survey.entries[i].ratio(&survey.base, MALE).unwrap())
            .collect();
        assert!(
            ratios.windows(2).all(|w| w[0] >= w[1]),
            "descending for Toward"
        );
        for &i in &ranked {
            assert!(survey.entries[i].measurement.total >= DEFAULT_MIN_REACH);
        }
        let ranked_against = rank_individuals(&survey, MALE, Direction::Against, DEFAULT_MIN_REACH);
        let r2: Vec<f64> = ranked_against
            .iter()
            .map(|&i| survey.entries[i].ratio(&survey.base, MALE).unwrap())
            .collect();
        assert!(r2.windows(2).all(|w| w[0] <= w[1]), "ascending for Against");
    }

    #[test]
    fn top_compositions_beat_individuals_on_average() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, DEFAULT_MIN_REACH);
        let top = top_compositions(&target, &survey, &ranked, &cfg(60)).unwrap();
        assert!(!top.is_empty());
        let top_median = {
            let mut r: Vec<f64> = top
                .iter()
                .filter_map(|t| t.ratio(&survey.base, MALE))
                .collect();
            r.sort_by(f64::total_cmp);
            r[r.len() / 2]
        };
        let individual_median = {
            let mut r: Vec<f64> = ranked
                .iter()
                .map(|&i| survey.entries[i].ratio(&survey.base, MALE).unwrap())
                .collect();
            r.sort_by(f64::total_cmp);
            r[r.len() / 2]
        };
        assert!(
            top_median > individual_median,
            "top compositions ({top_median:.2}) must out-skew individuals ({individual_median:.2})"
        );
        // All compositions have the configured arity and reach.
        for t in &top {
            assert_eq!(t.attrs.len(), 2);
            assert!(t.measurement.total >= DEFAULT_MIN_REACH);
        }
    }

    #[test]
    fn google_compositions_are_cross_feature() {
        let target = AuditTarget::for_platform(&sim().google, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, DEFAULT_MIN_REACH);
        let top = top_compositions(&target, &survey, &ranked, &cfg(40)).unwrap();
        assert!(!top.is_empty(), "google must find composable pairs");
        for t in &top {
            let fa = target.targeting.attribute_feature(t.attrs[0]).unwrap();
            let fb = target.targeting.attribute_feature(t.attrs[1]).unwrap();
            assert_ne!(fa, fb, "google pairs must span features");
        }
    }

    #[test]
    fn random_compositions_are_distinct_and_valid() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let random = random_compositions(&target, &cfg(50)).unwrap();
        assert!(random.len() >= 40, "got {}", random.len());
        let mut seen = std::collections::HashSet::new();
        for t in &random {
            assert_eq!(t.attrs.len(), 2);
            assert!(seen.insert(t.attrs.clone()), "duplicate pair {:?}", t.attrs);
            assert!(t.measurement.total >= DEFAULT_MIN_REACH);
            assert!(target.targeting.check(&t.spec).is_ok());
        }
    }

    #[test]
    fn draw_unit_streams_deterministic_and_decorrelated() {
        // Same (seed, unit) → identical stream: a shard can reproduce
        // its slice of the candidate schedule in isolation.
        let draws = |seed: u64, unit: u64| -> Vec<u32> {
            let mut rng = draw_unit_rng(seed, unit);
            (0..16).map(|_| rng.gen_range(0..1_000_000)).collect()
        };
        assert_eq!(draws(7, 3), draws(7, 3));
        // Different units (and different seeds) diverge.
        assert_ne!(draws(7, 3), draws(7, 4));
        assert_ne!(draws(7, 3), draws(8, 3));
        // Consecutive base seeds must not alias consecutive units.
        assert_ne!(draws(7, 1), draws(8, 0));
    }

    #[test]
    fn random_compositions_deterministic_across_runs() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let a = random_compositions(&target, &cfg(50)).unwrap();
        let b = random_compositions(&target, &cfg(50)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_subsets_match_materialized_shuffle_exactly() {
        // The O(top_k) sampler must replay `[T]::shuffle` + `truncate`
        // bit-for-bit, for any top_k and arity.
        use rand::seq::SliceRandom;
        let target = AuditTarget::for_platform(&sim().google, sim());
        let ids: Vec<AttributeId> = (0..12).map(AttributeId).collect();
        for arity in [2usize, 3] {
            for top_k in [1usize, 5, 64, 10_000] {
                for seed in [0u64, 7, 0x5EED] {
                    let mut all: Vec<Vec<AttributeId>> = Vec::new();
                    visit_composable_subsets(&target, &ids, arity, &mut |s| all.push(s.to_vec()));
                    let n = all.len();
                    assert_eq!(n, count_composable_subsets(&target, &ids, arity));
                    let mut rng = crate::stats::seeded_rng(seed);
                    all.shuffle(&mut rng);
                    all.truncate(top_k);
                    assert_eq!(
                        sample_composable_subsets(&target, &ids, arity, top_k, seed, n),
                        all,
                        "arity {arity}, top_k {top_k}, seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn discovery_is_deterministic_in_seed() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, DEFAULT_MIN_REACH);
        let a = top_compositions(&target, &survey, &ranked, &cfg(30)).unwrap();
        let b = top_compositions(&target, &survey, &ranked, &cfg(30)).unwrap();
        let pa: Vec<_> = a.iter().map(|t| t.attrs.clone()).collect();
        let pb: Vec<_> = b.iter().map(|t| t.attrs.clone()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn bounded_search_matches_greedy_exactly() {
        // The branch-and-bound search must be byte-identical to the
        // greedy scan on direct targets, for both directions and for
        // cross-feature-only composition rules.
        for platform in [&sim().linkedin, &sim().facebook, &sim().google] {
            let target = AuditTarget::for_platform(platform, sim());
            let survey = survey_individuals(&target).unwrap();
            for direction in Direction::BOTH {
                let ranked = rank_individuals(&survey, MALE, direction, DEFAULT_MIN_REACH);
                let c = cfg(60);
                let greedy = top_compositions(&target, &survey, &ranked, &c).unwrap();
                let bounded =
                    top_compositions_bounded(&target, &survey, &ranked, &c, platform.as_ref())
                        .unwrap();
                assert_eq!(greedy, bounded, "{} {direction:?}", platform.label());
            }
        }
    }

    #[test]
    fn bounded_search_prunes_queries_under_a_high_floor() {
        use crate::metrics::QUERIES_PER_SPEC;
        // A private simulation so query counters aren't shared with
        // concurrently running tests.
        let local = Simulation::build(43, SimScale::Test);
        let platform = &local.linkedin;
        let target = AuditTarget::for_platform(platform, &local);
        let survey = survey_individuals(&target).unwrap();
        // Floor at the median individual reach: plenty of eligible
        // individuals, but most pairwise intersections fall below it.
        let mut totals: Vec<u64> = survey.entries.iter().map(|e| e.measurement.total).collect();
        totals.sort_unstable();
        let mut c = cfg(60);
        c.min_reach = totals[totals.len() / 2].max(DEFAULT_MIN_REACH);
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, c.min_reach);
        assert!(ranked.len() >= 2, "need at least one candidate pair");

        let before = platform.stats().estimates;
        let greedy = top_compositions(&target, &survey, &ranked, &c).unwrap();
        let greedy_queries = platform.stats().estimates - before;

        let before = platform.stats().estimates;
        let bounded =
            top_compositions_bounded(&target, &survey, &ranked, &c, platform.as_ref()).unwrap();
        let bounded_queries = platform.stats().estimates - before;

        assert_eq!(greedy, bounded, "pruning must not change the output");
        // The oracle is exact on a deterministic direct target, so the
        // bounded search measures precisely the passing candidates.
        assert_eq!(
            bounded_queries,
            (QUERIES_PER_SPEC * greedy.len()) as u64,
            "bounded search must measure exactly the survivors"
        );
        assert!(
            bounded_queries < greedy_queries,
            "a median floor must prune some candidates \
             (bounded {bounded_queries} vs greedy {greedy_queries})"
        );
    }

    #[test]
    fn three_way_composition_on_restricted() {
        let target = AuditTarget::for_platform(&sim().facebook_restricted, sim());
        let survey = survey_individuals(&target).unwrap();
        let ranked = rank_individuals(&survey, MALE, Direction::Toward, DEFAULT_MIN_REACH);
        let mut c = cfg(20);
        c.arity = 3;
        let top = top_compositions(&target, &survey, &ranked, &c).unwrap();
        assert!(!top.is_empty());
        for t in &top {
            assert_eq!(t.attrs.len(), 3);
            assert_eq!(t.spec.arity(), 3);
        }
    }
}
