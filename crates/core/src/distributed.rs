//! Distributed execution of the audit workload.
//!
//! [`ScheduledSource`] is an [`EstimateSource`] whose `estimate_batch`
//! shards the batch across N replica endpoints through `adcomp-sched`'s
//! lease queue and merges results **by slot index** — so the output
//! vector is bit-identical to running the same batch serially against
//! one endpoint, no matter which endpoint served which unit, in what
//! order, or how many leases expired along the way. (Estimates are pure
//! functions of the normalized spec; the queue guarantees each slot is
//! answered exactly once in the merged output.)
//!
//! Per-slot outcome classification uses the same taxonomy as the retry
//! layer ([`classify`](crate::resilience::classify)): an `Ok` or a
//! *fatal* error is a deterministic answer and completes the slot; a
//! *retryable* error (transport failure, open circuit, rate limit)
//! leaves the slot unanswered so the queue requeues it onto a healthier
//! endpoint. That split is what makes a killed endpoint a routing event
//! rather than a result change.
//!
//! [`StoreJournal`] persists the queue's grant/completion trail into an
//! `adcomp-store` [`RunStore`] (record kind
//! [`KIND_SCHED_UNIT`](crate::recording::KIND_SCHED_UNIT)), giving a
//! crashed coordinator an auditable job history. Answered-query dedup on
//! resume rides the existing [`RecordingSource`](crate::source) keys:
//! wrap the scheduled target `with_recording` and a restarted run
//! re-issues zero answered queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use adcomp_sched::{
    into_inner_recovering, lock_recovering, run_pool, Grant, LeaseConfig, PoolConfig, PoolEndpoint,
    UnitJournal, UnitQueue, UnitReport, UnitRunner,
};
use adcomp_store::RunStore;
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};

use crate::recording::{sched_event_key, SchedEvent, KIND_SCHED_UNIT};
use crate::resilience::{classify, ErrorClass};
use crate::source::{EstimateSource, SourceError};

/// Tuning for a [`ScheduledSource`].
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Slots per work unit (the sharding grain).
    pub unit_size: usize,
    /// Lease TTL; must comfortably exceed one sub-batch round-trip —
    /// the runner heartbeats between sub-batches.
    pub lease_ttl: Duration,
    /// Grants per unit before its slots are declared failed
    /// (0 = unlimited; keep a bound so a poisoned unit cannot loop).
    pub max_attempts: u32,
    /// Global cap on simultaneously leased units (0 = unlimited).
    pub inflight_cap: usize,
    /// Claiming loops per endpoint — bounds outstanding units per
    /// endpoint.
    pub workers_per_endpoint: usize,
    /// Consecutive failed units before an endpoint cools down.
    pub failure_threshold: u32,
    /// Cooldown length for an unhealthy endpoint.
    pub cooldown: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            unit_size: 16,
            lease_ttl: Duration::from_secs(10),
            max_attempts: 0,
            inflight_cap: 0,
            workers_per_endpoint: 2,
            failure_threshold: 3,
            cooldown: Duration::from_millis(200),
        }
    }
}

impl SchedulerConfig {
    /// Aggressive settings for tests and demos: tiny units, a short
    /// lease so expiry/requeue paths actually fire, quick cooldowns.
    pub fn fast() -> SchedulerConfig {
        SchedulerConfig {
            unit_size: 4,
            lease_ttl: Duration::from_millis(250),
            max_attempts: 0,
            inflight_cap: 0,
            workers_per_endpoint: 2,
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
        }
    }

    fn lease(&self) -> LeaseConfig {
        LeaseConfig {
            ttl: self.lease_ttl,
            max_attempts: self.max_attempts,
            inflight_cap: self.inflight_cap,
        }
    }

    fn pool(&self) -> PoolConfig {
        PoolConfig {
            workers_per_endpoint: self.workers_per_endpoint,
            failure_threshold: self.failure_threshold,
            cooldown: self.cooldown,
        }
    }
}

/// Journals scheduler unit events into a [`RunStore`] under
/// [`KIND_SCHED_UNIT`], one uniquely-keyed record per event so the full
/// trail survives the store's latest-wins keyed view.
pub struct StoreJournal {
    store: Arc<RunStore>,
    scope: String,
    seq: AtomicU64,
}

impl StoreJournal {
    /// Journal into `store` under `scope` (one scope per audited
    /// interface is the convention). Event sequencing resumes past any
    /// events already recorded, so a restarted coordinator appends to
    /// the trail instead of overwriting it.
    pub fn new(store: Arc<RunStore>, scope: &str) -> StoreJournal {
        let seq = store.count_kind(KIND_SCHED_UNIT) as u64;
        StoreJournal {
            store,
            scope: scope.to_string(),
            seq: AtomicU64::new(seq),
        }
    }

    fn record(&self, event: SchedEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Journal writes are advisory (the trail, not the dedup
        // mechanism); a full disk must not take down the audit.
        let _ = self.store.append(
            KIND_SCHED_UNIT,
            sched_event_key(&self.scope, seq),
            &event.encode(),
        );
    }
}

impl UnitJournal for StoreJournal {
    fn unit_granted(&self, unit: u64, attempt: u32, worker: &str) {
        self.record(SchedEvent::Granted {
            unit,
            attempt,
            worker: worker.to_string(),
        });
    }

    fn unit_completed(&self, unit: u64, worker: &str, slots: usize) {
        self.record(SchedEvent::Completed {
            unit,
            worker: worker.to_string(),
            slots: slots as u32,
        });
    }

    fn unit_requeued(&self, unit: u64, worker: &str, reason: &str) {
        self.record(SchedEvent::Requeued {
            unit,
            worker: worker.to_string(),
            reason: reason.to_string(),
        });
    }

    fn unit_failed(&self, unit: u64, worker: &str, slots: usize) {
        self.record(SchedEvent::Failed {
            unit,
            worker: worker.to_string(),
            slots: slots as u32,
        });
    }
}

/// All [`SchedEvent`]s recorded in `store`, in key order.
pub fn sched_events_in(store: &RunStore) -> Vec<SchedEvent> {
    let mut events = Vec::new();
    store.for_each_kind(KIND_SCHED_UNIT, |_, payload| {
        if let Ok(e) = SchedEvent::decode(payload) {
            events.push(e);
        }
    });
    events
}

/// An [`EstimateSource`] that shards every batch across replica
/// endpoints via a lease-based work queue. See the module docs for the
/// determinism and failover story.
pub struct ScheduledSource {
    endpoints: Vec<Arc<dyn EstimateSource>>,
    cfg: SchedulerConfig,
    journal: Option<Arc<dyn UnitJournal>>,
    label: String,
}

impl ScheduledSource {
    /// Schedules over `endpoints`, which must all serve the same
    /// interface (same label — they are replicas, not a mix).
    pub fn new(
        endpoints: Vec<Arc<dyn EstimateSource>>,
        cfg: SchedulerConfig,
        journal: Option<Arc<dyn UnitJournal>>,
    ) -> ScheduledSource {
        assert!(
            !endpoints.is_empty(),
            "scheduler needs at least one endpoint"
        );
        let label = endpoints[0].label();
        for ep in &endpoints[1..] {
            assert_eq!(
                ep.label(),
                label,
                "scheduler endpoints must be replicas of one interface"
            );
        }
        ScheduledSource {
            endpoints,
            cfg,
            journal,
            label,
        }
    }

    /// The replica endpoints, for metadata delegation and diagnostics.
    pub fn endpoints(&self) -> &[Arc<dyn EstimateSource>] {
        &self.endpoints
    }

    fn reference(&self) -> &dyn EstimateSource {
        self.endpoints[0].as_ref()
    }
}

/// Buffered `(slot, value)` results for one live lease.
type LeaseBuffer = Vec<(usize, Result<u64, SourceError>)>;

struct BatchRunner<'a> {
    specs: &'a [TargetingSpec],
    endpoints: &'a [Arc<dyn EstimateSource>],
    /// Buffers per live lease; moved into `merged` only when the queue
    /// accepts the completion.
    buffers: Mutex<std::collections::HashMap<u64, LeaseBuffer>>,
    merged: Mutex<Vec<Option<Result<u64, SourceError>>>>,
    /// The caller's ambient trace context, captured on the coordinating
    /// thread so worker threads continue the same span tree (`None`
    /// when tracing is disabled — workers then add zero overhead).
    trace: Option<adcomp_obs::TraceContext>,
    /// When the batch entered the queue; workers report their
    /// queue-wait as a point event relative to this instant.
    batch_start: std::time::Instant,
}

impl BatchRunner<'_> {
    /// Maps the pool's endpoint label (`replica-<idx>`) back to the
    /// endpoint source.
    fn resolve(&self, endpoint: &str) -> &dyn EstimateSource {
        let idx = endpoint
            .rsplit('-')
            .next()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(0);
        self.endpoints[idx.min(self.endpoints.len() - 1)].as_ref()
    }
}

impl UnitRunner for BatchRunner<'_> {
    fn run(&self, endpoint: &str, grant: &Grant, heartbeat: &dyn Fn() -> bool) -> UnitReport {
        // Adopt the coordinator's trace on this worker thread, so wire
        // client spans opened below nest under the caller's span tree.
        let _ctx = self.trace.map(|c| c.enter());
        let _lease_span = self.trace.map(|_| {
            let tracer = adcomp_obs::Tracer::global();
            tracer.event(
                "sched:queue_wait",
                &[(
                    "duration_us",
                    self.batch_start.elapsed().as_micros().to_string(),
                )],
            );
            tracer.span_with(
                "sched:lease",
                &[
                    ("endpoint", endpoint.to_string()),
                    ("unit", grant.unit.to_string()),
                    ("attempt", grant.attempt.to_string()),
                ],
            )
        });
        let source = self.resolve(endpoint);
        let mut answered = Vec::with_capacity(grant.slots.len());
        let mut buffered = Vec::with_capacity(grant.slots.len());
        let mut endpoint_failed = false;
        // Execute in sub-batches of the endpoint's native window,
        // heartbeating between them so long units keep their lease and
        // a lost lease aborts early.
        let window = source.batch_window().max(1);
        for chunk in grant.slots.chunks(window) {
            if !heartbeat() {
                // Lease lost mid-unit: everything buffered so far will be
                // discarded by the pool; stop burning queries.
                return UnitReport {
                    answered: Vec::new(),
                    endpoint_failed,
                };
            }
            let specs: Vec<TargetingSpec> = chunk.iter().map(|&s| self.specs[s].clone()).collect();
            let results = source.estimate_batch(&specs);
            for (&slot, result) in chunk.iter().zip(results) {
                let is_answer = match &result {
                    Ok(_) => true,
                    Err(e) => match classify(e) {
                        // A fatal error is a deterministic answer (the
                        // same spec fails the same way everywhere).
                        ErrorClass::Fatal => true,
                        ErrorClass::Retryable { .. } => {
                            endpoint_failed |= matches!(
                                e,
                                SourceError::Transport(_) | SourceError::CircuitOpen { .. }
                            );
                            false
                        }
                    },
                };
                if is_answer {
                    answered.push(slot);
                    buffered.push((slot, result));
                }
            }
        }
        // Poison-recovering: a contained worker panic must not cascade
        // into every other replica's worker (the lease ledger makes the
        // buffered state requeue-safe).
        lock_recovering(&self.buffers).insert(grant.lease, buffered);
        UnitReport {
            answered,
            endpoint_failed,
        }
    }

    fn commit(&self, _endpoint: &str, grant: &Grant) {
        if let Some(vals) = lock_recovering(&self.buffers).remove(&grant.lease) {
            let mut merged = lock_recovering(&self.merged);
            for (slot, result) in vals {
                debug_assert!(merged[slot].is_none(), "slot {slot} merged twice");
                merged[slot] = Some(result);
            }
        }
    }

    fn discard(&self, _endpoint: &str, grant: &Grant) {
        lock_recovering(&self.buffers).remove(&grant.lease);
    }
}

impl EstimateSource for ScheduledSource {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        self.estimate_batch(std::slice::from_ref(spec))
            .pop()
            .expect("one result per spec")
    }

    fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, SourceError>> {
        if specs.is_empty() {
            return Vec::new();
        }
        let clock: Arc<dyn adcomp_obs::clock::Clock> =
            Arc::new(adcomp_obs::clock::MonotonicClock::new());
        let queue = UnitQueue::new(self.cfg.lease(), Arc::clone(&clock), self.journal.clone());
        queue.seed_slots(specs.len(), self.cfg.unit_size);
        let pool_cfg = self.cfg.pool();
        let pool_endpoints: Vec<PoolEndpoint> = (0..self.endpoints.len())
            .map(|i| PoolEndpoint::new(format!("replica-{i}"), &pool_cfg))
            .collect();
        let runner = BatchRunner {
            specs,
            endpoints: &self.endpoints,
            buffers: Mutex::new(std::collections::HashMap::new()),
            merged: Mutex::new(vec![None; specs.len()]),
            trace: adcomp_obs::current_context(),
            batch_start: std::time::Instant::now(),
        };
        run_pool(&queue, &pool_endpoints, &runner, &pool_cfg, &clock);
        let merged = into_inner_recovering(runner.merged);
        merged
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    // Attempts exhausted on every replica: degrade to a
                    // skip, mirroring the resilience layer's vocabulary.
                    Err(SourceError::Skipped {
                        reason: "scheduler: unit attempts exhausted on all endpoints".to_string(),
                    })
                })
            })
            .collect()
    }

    fn batch_window(&self) -> usize {
        // Big enough that callers hand over whole workloads; the queue
        // re-shards internally.
        (self.cfg.unit_size * self.endpoints.len()).max(2)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.reference().check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.reference().catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.reference().attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.reference().attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.reference().can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.reference().supports_demographics()
    }
}
