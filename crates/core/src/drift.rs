//! Longitudinal drift analysis between two recorded audit runs.
//!
//! The paper's audits are snapshots; real platforms move. Given two
//! [`RunStore`](adcomp_store::RunStore) epochs of the *same* audit
//! (same seeds, same spec schedule), this module answers the
//! longitudinal question entirely offline, from the recordings:
//!
//! * which specs' rounded estimates changed, and by how much;
//! * whether the platform's estimate *granularity* ladder moved (a
//!   rounding-policy change would silently re-scale every downstream
//!   metric);
//! * and — the finding that matters — which `(spec, class)`
//!   representation ratios crossed a four-fifths threshold
//!   ([`FOUR_FIFTHS_LOW`]/[`FOUR_FIFTHS_HIGH`]): an audience that was
//!   compliant in epoch one and discriminatory in epoch two, or vice
//!   versa.
//!
//! Findings render through [`RunReport`](adcomp_obs::RunReport) — band
//! crossings as degradations, everything else as notes — and are
//! counted on `adcomp_drift_findings_total`.

use std::collections::BTreeMap;

use adcomp_obs::{Registry, RunReport, Tracer};
use adcomp_platform::RoundingRule;
use adcomp_store::SnapshotIndex;
use adcomp_targeting::TargetingSpec;

use crate::metrics::{
    four_fifths_band, ratio_bounds, rep_ratio_of, SkewBand, SpecMeasurement, FOUR_FIFTHS_HIGH,
    FOUR_FIFTHS_LOW,
};
use crate::probe::{granularity_from_observations, GranularityReport};
use crate::recording::{each_estimate_in, labels_in, meta_in};
use crate::source::SensitiveClass;

/// One spec whose rounded estimate differs between epochs.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftFinding {
    /// Interface the estimate was recorded on.
    pub label: String,
    /// The (normalized) spec.
    pub spec: TargetingSpec,
    /// Epoch-one estimate.
    pub before: u64,
    /// Epoch-two estimate.
    pub after: u64,
}

impl DriftFinding {
    /// Signed absolute change.
    pub fn delta(&self) -> i64 {
        self.after as i64 - self.before as i64
    }

    /// Relative change against the epoch-one estimate (1.0 when the
    /// spec grew from zero).
    pub fn relative(&self) -> f64 {
        if self.before == 0 {
            if self.after == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            self.delta() as f64 / self.before as f64
        }
    }
}

/// A `(spec, class)` representation ratio that moved between epochs.
/// The interesting ones [cross](RatioMove::crossed) a four-fifths
/// threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct RatioMove {
    /// Interface the ratio was measured on.
    pub label: String,
    /// The audited (normalized) spec.
    pub spec: TargetingSpec,
    /// The sensitive class.
    pub class: SensitiveClass,
    /// Epoch-one representation ratio.
    pub before: f64,
    /// Epoch-two representation ratio.
    pub after: f64,
    /// Rounding-slack interval `(lo, hi)` around `before`, when the
    /// caller supplied the interface's rounding ladder (see
    /// [`drift_between_with`]). `None` means no interval evidence.
    pub before_interval: Option<(f64, f64)>,
    /// Rounding-slack interval around `after`.
    pub after_interval: Option<(f64, f64)>,
}

impl RatioMove {
    /// Which four-fifths band each epoch's ratio falls in.
    pub fn bands(&self) -> (SkewBand, SkewBand) {
        (four_fifths_band(self.before), four_fifths_band(self.after))
    }

    /// Whether the move crosses a four-fifths threshold — the audience
    /// changed compliance class between epochs.
    pub fn crossed(&self) -> bool {
        let (b, a) = self.bands();
        b != a
    }

    /// Whether the crossing is *low-confidence*: an epoch's interval
    /// straddles a four-fifths edge, so rounding slack alone could
    /// explain the band change. Point-only moves (no intervals) are
    /// never tagged — the legacy behaviour.
    pub fn low_confidence(&self) -> bool {
        let straddles = |interval: Option<(f64, f64)>| match interval {
            Some((lo, hi)) => {
                let s = |edge: f64| lo < edge && hi >= edge;
                s(FOUR_FIFTHS_LOW) || s(FOUR_FIFTHS_HIGH)
            }
            None => false,
        };
        straddles(self.before_interval) || straddles(self.after_interval)
    }
}

/// Granularity ladders of one interface in both epochs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GranularityDrift {
    /// Interface label.
    pub label: String,
    /// Epoch-one ladder.
    pub before: GranularityReport,
    /// Epoch-two ladder.
    pub after: GranularityReport,
}

impl GranularityDrift {
    /// Whether the rounding behaviour changed shape (significant-digit
    /// ladder or reporting floor — not merely which values happened to
    /// be observed).
    pub fn changed(&self) -> bool {
        self.before.digits_per_decade != self.after.digits_per_decade
            || self.before.min_nonzero != self.after.min_nonzero
    }
}

/// Everything that moved between two recorded epochs of one audit.
#[derive(Clone, Debug, Default)]
pub struct DriftReport {
    /// Interfaces recorded in both epochs (drift is computed on these).
    pub labels: Vec<String>,
    /// Specs recorded in both epochs, across all common interfaces.
    pub common_specs: usize,
    /// Specs only epoch one recorded (schedule divergence).
    pub only_before: usize,
    /// Specs only epoch two recorded.
    pub only_after: usize,
    /// Common specs whose rounded estimate changed, sorted by descending
    /// relative change.
    pub estimate_drifts: Vec<DriftFinding>,
    /// Per-interface granularity ladders, both epochs.
    pub granularity: Vec<GranularityDrift>,
    /// Representation-ratio moves that cross a four-fifths threshold.
    pub ratio_moves: Vec<RatioMove>,
    /// `(spec, class)` ratios compared (denominator for `ratio_moves`).
    pub ratios_compared: usize,
}

impl DriftReport {
    /// Number of findings an auditor must look at: threshold crossings,
    /// granularity-shape changes, and schedule divergence.
    pub fn findings(&self) -> usize {
        self.ratio_moves.iter().filter(|m| m.crossed()).count()
            + self.granularity.iter().filter(|g| g.changed()).count()
            + usize::from(self.only_before > 0 || self.only_after > 0)
    }

    /// Whether the two epochs are estimate-for-estimate identical.
    pub fn identical(&self) -> bool {
        self.estimate_drifts.is_empty() && self.only_before == 0 && self.only_after == 0
    }

    /// Renders the report through [`RunReport`]: threshold crossings and
    /// granularity changes as degradations, estimate movement as notes.
    pub fn render(&self, title: &str) -> String {
        let mut report = RunReport::new(title);
        report.note(format!(
            "interfaces compared: {} ({})",
            self.labels.len(),
            self.labels.join(", ")
        ));
        report.note(format!(
            "specs: {} common, {} only-before, {} only-after",
            self.common_specs, self.only_before, self.only_after
        ));
        if self.only_before > 0 || self.only_after > 0 {
            report.degradation(format!(
                "epochs disagree on the spec schedule ({} / {} unmatched specs) — \
                 drift below covers only the common part",
                self.only_before, self.only_after
            ));
        }
        report.note(format!(
            "estimates changed: {} of {} common specs",
            self.estimate_drifts.len(),
            self.common_specs
        ));
        for finding in self.estimate_drifts.iter().take(10) {
            report.note(format!(
                "  {}: `{}` {} → {} ({:+.1}%)",
                finding.label,
                finding.spec,
                finding.before,
                finding.after,
                finding.relative() * 100.0
            ));
        }
        if self.estimate_drifts.len() > 10 {
            report.note(format!(
                "  … and {} more (sorted by relative change)",
                self.estimate_drifts.len() - 10
            ));
        }
        for g in &self.granularity {
            if g.changed() {
                report.degradation(format!(
                    "{}: estimate granularity changed (digits/decade {:?} → {:?}, \
                     floor {:?} → {:?}) — downstream ratios are not comparable as-is",
                    g.label,
                    g.before.digits_per_decade,
                    g.after.digits_per_decade,
                    g.before.min_nonzero,
                    g.after.min_nonzero
                ));
            }
        }
        report.note(format!(
            "representation ratios compared: {}",
            self.ratios_compared
        ));
        for m in &self.ratio_moves {
            let (before_band, after_band) = m.bands();
            let tag = if m.low_confidence() {
                " [low-confidence: rounding slack straddles the edge]"
            } else {
                ""
            };
            report.degradation(format!(
                "{}: `{}` for {} crossed four-fifths: {:.3} ({:?}) → {:.3} ({:?}){}",
                m.label,
                m.spec,
                m.class.label(),
                m.before,
                before_band,
                m.after,
                after_band,
                tag
            ));
        }
        report.render()
    }
}

/// Options for confidence-aware drift comparison.
#[derive(Clone, Debug, Default)]
pub struct DriftOptions {
    /// Per-interface rounding ladders. When an interface's label is
    /// present, each epoch's representation ratios carry their
    /// rounding-slack interval ([`ratio_bounds`]) and crossings whose
    /// interval straddles the crossed edge are tagged
    /// [low-confidence](RatioMove::low_confidence).
    pub rounding: BTreeMap<String, RoundingRule>,
}

/// Recorded estimates of one interface, keyed by canonical spec bytes
/// (deterministic order for diffing).
fn estimates_of(index: &SnapshotIndex, label: &str) -> BTreeMap<Vec<u8>, (TargetingSpec, u64)> {
    let mut map = BTreeMap::new();
    each_estimate_in(index, label, |spec, value| {
        map.insert(crate::recording::encode_spec(&spec), (spec, value));
    });
    map
}

/// Assembles a [`SpecMeasurement`] purely from recorded estimates: the
/// base spec plus its six demographically-constrained variants must all
/// have been recorded (they are, for any spec the original run measured
/// through [`measure_spec`](crate::metrics::measure_spec)).
fn measurement_of(
    estimates: &BTreeMap<Vec<u8>, (TargetingSpec, u64)>,
    spec: &TargetingSpec,
) -> Option<SpecMeasurement> {
    let value = |s: &TargetingSpec| -> Option<u64> {
        estimates
            .get(&crate::recording::encode_spec(&s.normalized()))
            .map(|(_, v)| *v)
    };
    let total = value(spec)?;
    let mut by_gender = [0u64; 2];
    let mut by_age = [0u64; 4];
    for class in SensitiveClass::ALL {
        let v = value(&class.constrain(spec))?;
        match class {
            SensitiveClass::Gender(g) => by_gender[g.index()] = v,
            SensitiveClass::Age(a) => by_age[a.index()] = v,
        }
    }
    Some(SpecMeasurement {
        total,
        by_gender,
        by_age,
    })
}

/// Diffs two recorded epochs of the same audit, entirely offline.
///
/// Both snapshots usually come from [`RunStore::snapshot`]
/// (adcomp_store::RunStore::snapshot) on two different store
/// directories. Interfaces present in only one epoch are skipped (they
/// have nothing to be compared against); for the rest, estimates,
/// granularity ladders, and representation ratios are diffed as
/// documented on [`DriftReport`].
pub fn drift_between(before: &SnapshotIndex, after: &SnapshotIndex) -> DriftReport {
    drift_between_with(before, after, &DriftOptions::default())
}

/// [`drift_between`] with confidence options: interfaces whose rounding
/// ladder is supplied in `options` get rounding-slack intervals on
/// every compared ratio, so crossings the slack alone could explain are
/// tagged low-confidence instead of reading like hard findings.
pub fn drift_between_with(
    before: &SnapshotIndex,
    after: &SnapshotIndex,
    options: &DriftOptions,
) -> DriftReport {
    let tracer = Tracer::global();
    let _span = tracer.span("drift:diff");
    let labels_before = labels_in(before);
    let labels_after = labels_in(after);
    let labels: Vec<String> = labels_before
        .iter()
        .filter(|l| labels_after.contains(l))
        .cloned()
        .collect();

    let mut report = DriftReport {
        labels: labels.clone(),
        ..DriftReport::default()
    };

    for label in &labels {
        let est_before = estimates_of(before, label);
        let est_after = estimates_of(after, label);

        for (key, (spec, value_before)) in &est_before {
            match est_after.get(key) {
                None => report.only_before += 1,
                Some((_, value_after)) => {
                    report.common_specs += 1;
                    if value_after != value_before {
                        report.estimate_drifts.push(DriftFinding {
                            label: label.clone(),
                            spec: spec.clone(),
                            before: *value_before,
                            after: *value_after,
                        });
                    }
                }
            }
        }
        report.only_after += est_after
            .keys()
            .filter(|k| !est_before.contains_key(*k))
            .count();

        report.granularity.push(GranularityDrift {
            label: label.clone(),
            before: granularity_from_observations(est_before.values().map(|(_, v)| *v)),
            after: granularity_from_observations(est_after.values().map(|(_, v)| *v)),
        });

        // Representation-ratio drift needs demographic slices; only
        // measurement-capable interfaces recorded them.
        let supports = matches!(
            meta_in(before, label),
            Ok(Some(meta)) if meta.supports_demographics
        );
        if !supports {
            continue;
        }
        let everyone = TargetingSpec::everyone();
        let (base_before, base_after) = match (
            measurement_of(&est_before, &everyone),
            measurement_of(&est_after, &everyone),
        ) {
            (Some(b), Some(a)) => (b, a),
            _ => continue, // run never measured the baseline audience
        };
        for (key, (spec, _)) in &est_before {
            if !est_after.contains_key(key)
                || *spec == everyone
                || spec.demographics.genders.is_some()
                || spec.demographics.ages.is_some()
            {
                continue; // constrained variants are slices, not audiences
            }
            let (m_before, m_after) = match (
                measurement_of(&est_before, spec),
                measurement_of(&est_after, spec),
            ) {
                (Some(b), Some(a)) => (b, a),
                _ => continue, // not a fully measured audience
            };
            for class in SensitiveClass::ALL {
                let (Some(r_before), Some(r_after)) = (
                    rep_ratio_of(&m_before, &base_before, class),
                    rep_ratio_of(&m_after, &base_after, class),
                ) else {
                    continue;
                };
                report.ratios_compared += 1;
                let interval = |m: &SpecMeasurement, base: &SpecMeasurement| {
                    options
                        .rounding
                        .get(label)
                        .and_then(|rule| ratio_bounds(m, base, class, rule))
                        .map(|b| (b.lo, b.hi))
                };
                let movement = RatioMove {
                    label: label.clone(),
                    spec: spec.clone(),
                    class,
                    before: r_before,
                    after: r_after,
                    before_interval: interval(&m_before, &base_before),
                    after_interval: interval(&m_after, &base_after),
                };
                if movement.crossed() {
                    report.ratio_moves.push(movement);
                }
            }
        }
    }

    report.estimate_drifts.sort_by(|a, b| {
        b.relative()
            .abs()
            .partial_cmp(&a.relative().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.spec.to_string().cmp(&b.spec.to_string()))
    });

    Registry::global()
        .counter("adcomp_drift_findings_total")
        .add(report.findings() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::{encode_estimate, record_meta, spec_key, InterfaceMeta, KIND_ESTIMATE};
    use adcomp_store::RunStore;
    use adcomp_targeting::AttributeId;

    const LABEL: &str = "TestIface";

    fn meta() -> InterfaceMeta {
        InterfaceMeta {
            label: LABEL.into(),
            supports_demographics: true,
            same_feature_and: false,
            names: vec!["a0".into(), "a1".into()],
            features: vec![0, 1],
        }
    }

    fn record(store: &RunStore, spec: &TargetingSpec, value: u64) {
        let normalized = spec.normalized();
        store
            .append(
                KIND_ESTIMATE,
                spec_key(LABEL, &normalized),
                &encode_estimate(&normalized, value),
            )
            .unwrap();
    }

    /// Records a fully measured audience: total + all six class slices.
    fn record_measured(store: &RunStore, spec: &TargetingSpec, m: &SpecMeasurement) {
        record(store, spec, m.total);
        for class in SensitiveClass::ALL {
            record(store, &class.constrain(spec), m.class_count(class));
        }
    }

    fn epoch(tag: &str, skewed_female: u64) -> SnapshotIndex {
        let dir = std::env::temp_dir().join(format!("adcomp-drift-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        record_meta(&store, &meta()).unwrap();
        let everyone = TargetingSpec::everyone();
        record_measured(
            &store,
            &everyone,
            &SpecMeasurement {
                total: 1000,
                by_gender: [500, 500],
                by_age: [250, 250, 250, 250],
            },
        );
        let audience = TargetingSpec::and_of([AttributeId(0)]);
        record_measured(
            &store,
            &audience,
            &SpecMeasurement {
                total: 100,
                by_gender: [100 - skewed_female, skewed_female],
                by_age: [25, 25, 25, 25],
            },
        );
        let snap = store.snapshot();
        std::fs::remove_dir_all(&dir).ok();
        snap
    }

    #[test]
    fn identical_epochs_report_no_drift() {
        let a = epoch("ident-a", 50);
        let b = epoch("ident-b", 50);
        let report = drift_between(&a, &b);
        assert!(report.identical(), "{report:?}");
        assert_eq!(report.findings(), 0);
        assert!(report.ratios_compared > 0, "ratios were actually compared");
        let text = report.render("drift test");
        assert!(text.contains("no degradations recorded"), "{text}");
    }

    #[test]
    fn four_fifths_crossing_is_flagged() {
        // Female share of the audience drops 50% → 30%: the female
        // representation ratio goes 1.0 → 0.6, crossing FOUR_FIFTHS_LOW.
        let a = epoch("cross-a", 50);
        let b = epoch("cross-b", 30);
        let report = drift_between(&a, &b);
        assert!(!report.identical());
        assert!(
            report.ratio_moves.iter().any(|m| m.class
                == SensitiveClass::Gender(adcomp_population::Gender::Female)
                && m.crossed()),
            "{report:?}"
        );
        let text = report.render("drift test");
        assert!(text.contains("crossed four-fifths"), "{text}");
        assert!(report.findings() > 0);
    }

    /// With the interface's rounding ladder supplied, a crossing whose
    /// rounding slack straddles the crossed edge is tagged
    /// low-confidence; without options (the legacy entry point) the
    /// same crossing carries no intervals and no tag.
    #[test]
    fn straddling_crossings_are_tagged_low_confidence() {
        let a = epoch("conf-a", 50);
        let b = epoch("conf-b", 30);
        let mut options = DriftOptions::default();
        // One significant digit: 50 could be anything in [45, 54], so
        // the epoch-one parity ratio straddles both band edges.
        options.rounding.insert(
            LABEL.into(),
            RoundingRule::SignificantClamped {
                digits: 1,
                minimum: 1,
            },
        );
        let report = drift_between_with(&a, &b, &options);
        let movement = report
            .ratio_moves
            .iter()
            .find(|m| m.class == SensitiveClass::Gender(adcomp_population::Gender::Female))
            .expect("female crossing present");
        let (lo, hi) = movement.before_interval.expect("interval attached");
        assert!(lo < crate::metrics::FOUR_FIFTHS_LOW && hi >= crate::metrics::FOUR_FIFTHS_LOW);
        assert!(movement.low_confidence());
        assert!(
            report.render("drift test").contains("low-confidence"),
            "render carries the tag"
        );

        // Legacy path: same epochs, no options — no intervals, no tag.
        let legacy = drift_between(&a, &b);
        let movement = legacy
            .ratio_moves
            .iter()
            .find(|m| m.class == SensitiveClass::Gender(adcomp_population::Gender::Female))
            .expect("female crossing present");
        assert_eq!(movement.before_interval, None);
        assert!(!movement.low_confidence());
        assert!(!legacy.render("drift test").contains("low-confidence"));
    }

    #[test]
    fn schedule_divergence_is_counted() {
        let a = epoch("sched-a", 50);
        let dir = std::env::temp_dir().join(format!("adcomp-drift-sched-b-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        record_meta(&store, &meta()).unwrap();
        record(&store, &TargetingSpec::and_of([AttributeId(1)]), 7);
        let b = store.snapshot();
        std::fs::remove_dir_all(&dir).ok();
        let report = drift_between(&a, &b);
        assert_eq!(report.common_specs, 0);
        assert!(report.only_before > 0 && report.only_after > 0);
        assert!(report.findings() > 0);
    }
}
