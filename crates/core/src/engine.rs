//! Parallel estimate execution and memoization.
//!
//! The audit workload is thousands of independent, rounded size
//! estimates. Two properties make it safe to parallelise and cache
//! without touching the methodology:
//!
//! 1. **Estimates are pure.** A platform's answer is a deterministic
//!    function of the spec (the simulators are referentially transparent;
//!    a real platform is *assumed* consistent — and [`consistency_probe`]
//!    (crate::probe::consistency_probe) exists precisely to test that
//!    assumption, which is why memoization stays off by default there).
//! 2. **Order only matters for presentation.** Every derived quantity
//!    (ratios, recall, inclusion–exclusion sums) consumes estimates by
//!    *position*, not by arrival time.
//!
//! [`QueryEngine`] is a bounded worker pool executing batches of specs
//! against any [`EstimateSource`] and returning results **in submission
//! order**, so parallel runs are bit-identical to serial ones.
//! [`MemoCache`]/[`MemoizedSource`] dedupe repeated specs (the base
//! population and class-constraint queries every experiment re-issues)
//! behind a sharded, capacity-bounded map keyed on canonicalized specs.
//!
//! Everything is observable: queue-depth and in-flight gauges, a
//! batch-latency histogram, and memo hit/miss/eviction counters, all in
//! the global [`Registry`].

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use adcomp_obs::metrics::{duration_us_buckets, Counter, Gauge, Histogram, Registry};
use adcomp_targeting::TargetingSpec;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use crate::source::{EstimateSource, SourceError};

/// Worker-pool parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads (0 → available parallelism).
    pub workers: usize,
    /// Bound of the job queue; submitters block when it is full.
    pub queue_depth: usize,
    /// Fixed specs-per-job chunk (`None` → sized from the batch so each
    /// worker sees several jobs; natively batching sources always get
    /// their preferred window).
    pub chunk: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_depth: 64,
            chunk: None,
        }
    }
}

impl EngineConfig {
    /// A pool of exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Default::default()
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// One unit of work: a contiguous slice of a submitted batch.
struct Job {
    start: usize,
    specs: Vec<TargetingSpec>,
    source: Arc<dyn EstimateSource>,
    reply: Sender<(usize, Vec<Result<u64, SourceError>>)>,
}

/// A bounded worker pool executing estimate batches in deterministic
/// submission order.
///
/// Workers are spawned once at construction and live until the engine is
/// dropped. [`run_on`](QueryEngine::run_on) may be called concurrently
/// from any number of threads; each call gets its own reply channel, so
/// batches never interleave results.
pub struct QueryEngine {
    jobs: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    chunk: Option<usize>,
    queue_depth: Arc<Gauge>,
    batch_latency_us: Arc<Histogram>,
    queries: Arc<Counter>,
}

impl QueryEngine {
    /// Spawns the worker pool.
    pub fn new(config: EngineConfig) -> QueryEngine {
        let reg = Registry::global();
        let queue_depth = reg.gauge("adcomp_engine_queue_depth");
        let in_flight = reg.gauge("adcomp_engine_in_flight");
        let (tx, rx) = bounded::<Job>(config.queue_depth.max(1));
        let workers = (0..config.resolved_workers())
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let queue_depth = queue_depth.clone();
                let in_flight = in_flight.clone();
                std::thread::Builder::new()
                    .name(format!("adcomp-engine-{i}"))
                    .spawn(move || worker_loop(rx, queue_depth, in_flight))
                    .expect("spawn engine worker")
            })
            .collect();
        QueryEngine {
            jobs: Some(tx),
            workers,
            worker_count: config.resolved_workers(),
            chunk: config.chunk,
            queue_depth,
            batch_latency_us: reg
                .histogram("adcomp_engine_batch_latency_us", duration_us_buckets()),
            queries: reg.counter("adcomp_engine_queries_total"),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Executes `specs` against `source` and returns one result per spec,
    /// **in submission order** regardless of completion order.
    ///
    /// The batch is split into contiguous chunks; each worker runs its
    /// chunk through [`EstimateSource::estimate_batch`], so natively
    /// batching sources (the pipelined wire client) keep their window
    /// while plain sources fall back to a serial loop per chunk.
    pub fn run_on(
        &self,
        source: Arc<dyn EstimateSource>,
        specs: Vec<TargetingSpec>,
    ) -> Vec<Result<u64, SourceError>> {
        let total = specs.len();
        if total == 0 {
            return Vec::new();
        }
        let start = Instant::now();
        self.queries.add(total as u64);
        let chunk = self.chunk_size(total, source.batch_window());
        let (reply_tx, reply_rx) = unbounded();
        let jobs = self.jobs.as_ref().expect("engine workers are alive");
        let mut specs = specs;
        let mut submitted = 0usize;
        let mut pending = 0usize;
        // Submit front-to-back by draining the vec; `split_off` keeps the
        // remainder, so each job owns its slice without re-allocating.
        while !specs.is_empty() {
            let rest = specs.split_off(chunk.min(specs.len()));
            let job = Job {
                start: submitted,
                specs: std::mem::replace(&mut specs, rest),
                source: source.clone(),
                reply: reply_tx.clone(),
            };
            submitted += job.specs.len();
            self.queue_depth.add(1);
            assert!(jobs.send(job).is_ok(), "engine workers are alive");
            pending += 1;
        }
        drop(reply_tx);
        let mut results: Vec<Option<Result<u64, SourceError>>> = vec![None; total];
        for _ in 0..pending {
            let (start, chunk_results) = reply_rx.recv().expect("engine workers reply");
            for (offset, r) in chunk_results.into_iter().enumerate() {
                results[start + offset] = Some(r);
            }
        }
        self.batch_latency_us.observe_duration(start.elapsed());
        results
            .into_iter()
            .map(|r| r.expect("every index answered exactly once"))
            .collect()
    }

    fn chunk_size(&self, total: usize, window: usize) -> usize {
        if window > 1 {
            return window;
        }
        if let Some(chunk) = self.chunk {
            return chunk.max(1);
        }
        // Several jobs per worker for load balance, but big enough that
        // channel traffic is noise next to the estimates themselves.
        (total / (self.worker_count * 4)).clamp(1, 64)
    }
}

fn worker_loop(rx: Receiver<Job>, queue_depth: Arc<Gauge>, in_flight: Arc<Gauge>) {
    while let Ok(job) = rx.recv() {
        queue_depth.add(-1);
        in_flight.add(1);
        let results = job.source.estimate_batch(&job.specs);
        in_flight.add(-1);
        // A dropped reply receiver means the submitter is gone; nothing
        // left to do with the results.
        let _ = job.reply.send((job.start, results));
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        // Closing the job channel ends every worker's recv loop.
        self.jobs.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryEngine(workers={})", self.worker_count)
    }
}

const MEMO_SHARDS: usize = 16;

/// A sharded, capacity-bounded map from canonicalized specs to rounded
/// estimates.
///
/// Keys are [`TargetingSpec::normalized`] forms, so syntactically
/// different but semantically identical specs share an entry. Eviction is
/// FIFO per shard — the workload is dominated by a stable set of repeated
/// specs (base population, class constraints), for which insertion order
/// is as good as LRU and much cheaper.
pub struct MemoCache {
    shards: Vec<Mutex<MemoShard>>,
    per_shard_capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

#[derive(Default)]
struct MemoShard {
    map: HashMap<TargetingSpec, u64>,
    order: VecDeque<TargetingSpec>,
}

impl MemoCache {
    /// A cache holding at most `capacity` entries (rounded up to a
    /// multiple of the shard count).
    pub fn new(capacity: usize) -> MemoCache {
        let reg = Registry::global();
        MemoCache {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
            per_shard_capacity: capacity.div_ceil(MEMO_SHARDS).max(1),
            hits: reg.counter("adcomp_memo_hits_total"),
            misses: reg.counter("adcomp_memo_misses_total"),
            evictions: reg.counter("adcomp_memo_evictions_total"),
        }
    }

    fn shard(&self, key: &TargetingSpec) -> &Mutex<MemoShard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % MEMO_SHARDS]
    }

    /// Cached estimate for a canonicalized key, counting the hit/miss.
    pub fn get(&self, key: &TargetingSpec) -> Option<u64> {
        let shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let value = shard.map.get(key).copied();
        match value {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        value
    }

    /// Records an estimate, evicting the shard's oldest entry at
    /// capacity.
    pub fn insert(&self, key: TargetingSpec, value: u64) {
        let mut shard = self
            .shard(&key)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if shard.map.insert(key.clone(), value).is_none() {
            shard.order.push_back(key);
            if shard.order.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                    self.evictions.inc();
                }
            }
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits recorded (process-wide counter).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses recorded (process-wide counter).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Fraction of lookups served from cache (0 when none were made).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

/// An [`EstimateSource`] wrapper answering repeated specs from a
/// [`MemoCache`].
///
/// Only successful estimates are cached; errors always propagate and are
/// retried on the next ask. The inner source still receives the
/// *original* (un-normalized) spec on a miss, so the platform sees
/// exactly the queries the serial, uncached path would send.
///
/// **Soundness**: caching assumes estimates are deterministic per spec —
/// true for the simulators, an explicit assumption for live platforms.
/// Consistency probes must run uncached (a cache would trivially make any
/// platform look consistent), which is why memoization is opt-in via
/// [`AuditTarget::with_memo`](crate::source::AuditTarget::with_memo) and
/// never applied by default.
pub struct MemoizedSource {
    inner: Arc<dyn EstimateSource>,
    cache: Arc<MemoCache>,
}

impl MemoizedSource {
    /// Wraps `inner` with `cache`.
    pub fn new(inner: Arc<dyn EstimateSource>, cache: Arc<MemoCache>) -> MemoizedSource {
        MemoizedSource { inner, cache }
    }

    /// The shared cache (for hit-ratio reporting).
    pub fn cache(&self) -> &Arc<MemoCache> {
        &self.cache
    }

    /// Seeds the cache with every estimate a
    /// [`RunStore`](adcomp_store::RunStore) recorded for this source's
    /// interface (matched by label), returning how many entries were
    /// loaded. A warm audit can then start from a previous run's
    /// answers: recorded specs hit the cache instead of the platform.
    ///
    /// Recorded specs are stored normalized — exactly the form
    /// [`MemoCache`] keys on — so the preload is a straight insert.
    pub fn preload_from_replay(&self, store: &adcomp_store::RunStore) -> usize {
        let label = self.inner.label();
        let index = store.snapshot();
        let mut loaded = 0usize;
        crate::recording::each_estimate_in(&index, &label, |spec, value| {
            self.cache.insert(spec, value);
            loaded += 1;
        });
        loaded
    }
}

impl EstimateSource for MemoizedSource {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let key = spec.normalized();
        if let Some(value) = self.cache.get(&key) {
            return Ok(value);
        }
        let value = self.inner.estimate(spec)?;
        self.cache.insert(key, value);
        Ok(value)
    }

    fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, SourceError>> {
        // Resolve hits up front; duplicates *within* the batch collapse
        // onto the first occurrence's query, exactly as a serial
        // memoized loop would behave.
        let keys: Vec<TargetingSpec> = specs.iter().map(|s| s.normalized()).collect();
        let mut results: Vec<Option<Result<u64, SourceError>>> = vec![None; specs.len()];
        let mut missing: Vec<usize> = Vec::new();
        let mut first_seen: HashMap<&TargetingSpec, usize> = HashMap::new();
        let mut follower_of: Vec<Option<usize>> = vec![None; specs.len()];
        for (i, key) in keys.iter().enumerate() {
            if let Some(value) = self.cache.get(key) {
                results[i] = Some(Ok(value));
            } else if let Some(&leader) = first_seen.get(key) {
                follower_of[i] = Some(leader);
            } else {
                first_seen.insert(key, i);
                missing.push(i);
            }
        }
        if !missing.is_empty() {
            let queries: Vec<TargetingSpec> = missing.iter().map(|&i| specs[i].clone()).collect();
            let answers = self.inner.estimate_batch(&queries);
            for (&i, answer) in missing.iter().zip(answers) {
                if let Ok(value) = answer {
                    self.cache.insert(keys[i].clone(), value);
                }
                results[i] = Some(answer);
            }
        }
        for i in 0..specs.len() {
            if let Some(leader) = follower_of[i] {
                results[i] = results[leader].clone();
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    fn batch_window(&self) -> usize {
        self.inner.batch_window()
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: adcomp_targeting::AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(
        &self,
        id: adcomp_targeting::AttributeId,
    ) -> Option<adcomp_targeting::FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(
        &self,
        a: adcomp_targeting::AttributeId,
        b: adcomp_targeting::AttributeId,
    ) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::AuditTarget;
    use adcomp_platform::{SimScale, Simulation};
    use adcomp_targeting::AttributeId;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(52, SimScale::Test))
    }

    fn specs(n: u32) -> Vec<TargetingSpec> {
        (0..n)
            .map(|i| {
                TargetingSpec::and_of([AttributeId(i % sim().linkedin.catalog().len() as u32)])
            })
            .collect()
    }

    #[test]
    fn engine_matches_serial_in_submission_order() {
        let engine = QueryEngine::new(EngineConfig::with_workers(4));
        let source: Arc<dyn EstimateSource> = sim().linkedin.clone();
        let batch = specs(40);
        let serial: Vec<_> = batch.iter().map(|s| source.estimate(s)).collect();
        let pooled = engine.run_on(source.clone(), batch.clone());
        assert_eq!(pooled, serial);
        // Repeat runs are stable (no order sensitivity).
        assert_eq!(engine.run_on(source, batch), serial);
    }

    #[test]
    fn engine_handles_empty_and_single_batches() {
        let engine = QueryEngine::new(EngineConfig::with_workers(2));
        let source: Arc<dyn EstimateSource> = sim().linkedin.clone();
        assert!(engine.run_on(source.clone(), Vec::new()).is_empty());
        let one = engine.run_on(source, specs(1));
        assert_eq!(one.len(), 1);
        assert!(one[0].is_ok());
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = Arc::new(QueryEngine::new(EngineConfig::with_workers(3)));
        let source: Arc<dyn EstimateSource> = sim().linkedin.clone();
        let expected: Vec<_> = specs(20).iter().map(|s| source.estimate(s)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let engine = engine.clone();
                let source = source.clone();
                let expected = expected.clone();
                s.spawn(move || {
                    assert_eq!(engine.run_on(source, specs(20)), expected);
                });
            }
        });
    }

    struct CountingSource(Arc<dyn EstimateSource>, AtomicU64);
    impl EstimateSource for CountingSource {
        fn label(&self) -> String {
            self.0.label()
        }
        fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
            self.1.fetch_add(1, Ordering::Relaxed);
            self.0.estimate(spec)
        }
        fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
            self.0.check(spec)
        }
        fn catalog_len(&self) -> u32 {
            self.0.catalog_len()
        }
        fn attribute_name(&self, id: AttributeId) -> Option<String> {
            self.0.attribute_name(id)
        }
        fn attribute_feature(&self, id: AttributeId) -> Option<adcomp_targeting::FeatureId> {
            self.0.attribute_feature(id)
        }
        fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
            self.0.can_compose(a, b)
        }
        fn supports_demographics(&self) -> bool {
            self.0.supports_demographics()
        }
    }

    #[test]
    fn memo_cache_dedupes_and_reports_hit_ratio() {
        let counting = Arc::new(CountingSource(sim().linkedin.clone(), AtomicU64::new(0)));
        let issued = || counting.1.load(Ordering::Relaxed);
        let memo = MemoizedSource::new(counting.clone(), Arc::new(MemoCache::new(256)));
        let spec = TargetingSpec::and_of([AttributeId(1)]);
        let first = memo.estimate(&spec).unwrap();
        assert_eq!(issued(), 1);
        assert_eq!(memo.estimate(&spec).unwrap(), first);
        assert_eq!(issued(), 1, "second ask is a cache hit");
        // Batch with intra-batch duplicates: one real query per distinct
        // *normalized* spec.
        let other = TargetingSpec::and_of([AttributeId(2)]);
        let results =
            memo.estimate_batch(&[other.clone(), spec.clone(), other.clone(), other.clone()]);
        assert_eq!(issued(), 2, "spec was cached; `other` queried once");
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(results[0], results[2]);
        assert_eq!(results[0], results[3]);
        assert!(memo.cache().hit_ratio() > 0.0);
    }

    #[test]
    fn memo_cache_respects_capacity() {
        let cache = MemoCache::new(MEMO_SHARDS); // one entry per shard
        for i in 0..200u32 {
            cache.insert(TargetingSpec::and_of([AttributeId(i)]), u64::from(i));
        }
        assert!(cache.len() <= MEMO_SHARDS);
    }

    #[test]
    fn memoized_survey_matches_uncached_survey() {
        let direct = AuditTarget::direct(sim().linkedin.clone());
        let cached = direct.with_memo(4096);
        let plain = crate::discovery::survey_individuals(&direct).unwrap();
        let memo = crate::discovery::survey_individuals(&cached).unwrap();
        assert_eq!(plain.entries, memo.entries);
    }

    #[test]
    fn preload_from_replay_serves_recorded_specs_without_queries() {
        use crate::source::RecordingSource;
        let dir =
            std::env::temp_dir().join(format!("adcomp-engine-preload-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(adcomp_store::RunStore::open(&dir).unwrap());
        // Epoch one: record a handful of answered queries.
        let recorder = RecordingSource::new(sim().linkedin.clone(), store.clone()).unwrap();
        let batch = specs(12);
        let recorded: Vec<u64> = batch
            .iter()
            .map(|s| recorder.estimate(s).unwrap())
            .collect();
        // Epoch two: a cold cache warmed purely from the store.
        let counting = Arc::new(CountingSource(sim().linkedin.clone(), AtomicU64::new(0)));
        let memo = MemoizedSource::new(counting.clone(), Arc::new(MemoCache::new(256)));
        let loaded = memo.preload_from_replay(&store);
        assert!(loaded >= 12, "all recorded estimates load, got {loaded}");
        let hits_before = memo.cache().hits();
        for (spec, expected) in batch.iter().zip(&recorded) {
            assert_eq!(memo.estimate(spec).unwrap(), *expected);
        }
        assert_eq!(
            counting.1.load(Ordering::Relaxed),
            0,
            "every preloaded spec must hit the cache, not the platform"
        );
        assert_eq!(
            memo.cache().hits() - hits_before,
            batch.len() as u64,
            "hit-rate accounting reflects the preload"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
