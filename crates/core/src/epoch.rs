//! One audit epoch, as the continuous-audit daemon runs it.
//!
//! An epoch is the recurring unit of a longitudinal audit: one full
//! [individual survey](crate::survey_individuals) of an interface,
//! recorded into its own crash-safe [`RunStore`] so that a killed
//! process resumes mid-epoch with answered queries replayed from disk
//! (the [`RecordingSource`](crate::RecordingSource) sits outermost) and
//! so consecutive epochs can be diffed entirely offline by
//! [`drift_between`](crate::drift_between).
//!
//! [`run_epoch`] owns the target layering — scheduler (for replicated
//! endpoints) under resilience under recording — plus endpoint health
//! probing: an unreachable replica is dropped for the epoch and the run
//! continues *degraded* on the survivors, reported in the
//! [`EpochOutcome`] rather than silently absorbed.

use std::sync::Arc;

use adcomp_store::RunStore;

use crate::discovery::survey_individuals;
use crate::distributed::SchedulerConfig;
use crate::recording::{fnv1a, KIND_ESTIMATE};
use crate::resilience::ResilienceConfig;
use crate::source::{AuditTarget, EstimateSource, SourceError};

/// Everything [`run_epoch`] needs for one epoch.
pub struct EpochPlan {
    /// Replicated endpoints for the audited interface, in a stable
    /// order. One endpoint runs serially; several are sharded through
    /// the distributed scheduler.
    pub endpoints: Vec<Arc<dyn EstimateSource>>,
    /// The epoch's own recording store (one directory per epoch).
    pub store: Arc<RunStore>,
    /// Scheduler tuning for the multi-endpoint path.
    pub scheduler: SchedulerConfig,
    /// Optional resilience layer between scheduler and recorder.
    pub resilience: Option<ResilienceConfig>,
}

/// What one epoch produced.
#[derive(Clone, Debug)]
pub struct EpochOutcome {
    /// Attributes surveyed.
    pub entries: usize,
    /// Base audience total — a quick cross-epoch sanity anchor.
    pub base_total: u64,
    /// FNV-1a digest over the epoch's key-ordered estimate records;
    /// byte-identity of two runs is checked on this.
    pub digest: u64,
    /// Estimate records in the epoch store.
    pub estimates: u64,
    /// Labels of endpoints that failed their health probe and were
    /// excluded; non-empty means the epoch ran degraded.
    pub degraded: Vec<String>,
}

/// Digest of every [`KIND_ESTIMATE`] record in `store`, folded in
/// ascending key order — stable across processes and platforms, so two
/// epoch stores with identical estimates always agree.
pub fn epoch_digest(store: &RunStore) -> u64 {
    let mut acc = 0xCBF2_9CE4_8422_2325u64;
    store.for_each_kind(KIND_ESTIMATE, |key, payload| {
        acc ^= fnv1a(&key.to_be_bytes());
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        acc ^= fnv1a(payload);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    });
    acc
}

/// Probes `endpoints` with a cheap validation query (no estimate is
/// issued, so platform-side query counters stay untouched) and splits
/// them into survivors and the labels of the dead.
fn probe_endpoints(
    endpoints: &[Arc<dyn EstimateSource>],
) -> (Vec<Arc<dyn EstimateSource>>, Vec<String>) {
    let everyone = adcomp_targeting::TargetingSpec::everyone();
    let mut alive = Vec::with_capacity(endpoints.len());
    let mut dead = Vec::new();
    for (i, ep) in endpoints.iter().enumerate() {
        match ep.check(&everyone) {
            // Transport-class failures mean the endpoint is unreachable;
            // any *answer* (including a policy rejection) means alive.
            Err(SourceError::Transport(_)) | Err(SourceError::CircuitOpen { .. }) => {
                dead.push(format!("replica-{i} ({})", ep.label()));
            }
            _ => alive.push(ep.clone()),
        }
    }
    (alive, dead)
}

/// Runs one epoch: probe endpoints, survey through the recorded target,
/// persist the snapshot, and digest the result.
///
/// Fails with the probe's verdict when *no* endpoint survives; with one
/// or more survivors the epoch completes and reports the dead replicas
/// in [`EpochOutcome::degraded`].
pub fn run_epoch(plan: &EpochPlan) -> Result<EpochOutcome, SourceError> {
    assert!(!plan.endpoints.is_empty(), "an epoch needs endpoints");
    let (alive, degraded) = probe_endpoints(&plan.endpoints);
    if alive.is_empty() {
        return Err(SourceError::Transport(format!(
            "no healthy endpoint for this epoch (probed {}, all down)",
            plan.endpoints.len()
        )));
    }

    let base = AuditTarget::direct(alive[0].clone());
    let target = if alive.len() > 1 {
        base.with_scheduler_cfg(alive.clone(), plan.scheduler.clone(), None)
    } else {
        base
    };
    let target = match plan.resilience {
        Some(cfg) => target.with_resilience(cfg),
        None => target,
    };
    // Recording sits outermost: everything answered below it is on disk
    // before the caller sees the value, which is the whole crash-safety
    // story — a killed epoch resumes by replaying this store.
    let target = target
        .with_recording(plan.store.clone())
        .map_err(|e| SourceError::Transport(format!("epoch store: {e}")))?;

    let survey = survey_individuals(&target)?;
    plan.store
        .save_snapshot()
        .and_then(|()| plan.store.sync())
        .map_err(|e| SourceError::Transport(format!("epoch store: {e}")))?;

    Ok(EpochOutcome {
        entries: survey.entries.len(),
        base_total: survey.base.total,
        digest: epoch_digest(&plan.store),
        estimates: plan.store.count_kind(KIND_ESTIMATE) as u64,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_platform::{SimScale, Simulation};

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("adcomp-epoch-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plan_for(sim: &Simulation, store: Arc<RunStore>) -> EpochPlan {
        EpochPlan {
            endpoints: vec![sim.linkedin.clone() as Arc<dyn EstimateSource>],
            store,
            scheduler: SchedulerConfig::fast(),
            resilience: None,
        }
    }

    #[test]
    fn epoch_is_deterministic_and_resumable() {
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");

        let sim_a = Simulation::build(11, SimScale::Test);
        let store_a = Arc::new(RunStore::open(&dir_a).unwrap());
        let out_a = run_epoch(&plan_for(&sim_a, store_a.clone())).unwrap();
        assert!(out_a.entries > 0);
        assert!(out_a.degraded.is_empty());
        assert!(out_a.estimates > 0);

        // Same seed, fresh store: identical digest.
        let sim_b = Simulation::build(11, SimScale::Test);
        let store_b = Arc::new(RunStore::open(&dir_b).unwrap());
        let out_b = run_epoch(&plan_for(&sim_b, store_b)).unwrap();
        assert_eq!(out_b.digest, out_a.digest);
        assert_eq!(out_b.estimates, out_a.estimates);

        // Re-running over the complete store replays from disk: zero new
        // platform queries, same digest.
        let before = sim_a.linkedin.stats().estimates;
        let out_c = run_epoch(&plan_for(&sim_a, store_a)).unwrap();
        assert_eq!(out_c.digest, out_a.digest);
        assert_eq!(sim_a.linkedin.stats().estimates, before);

        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn all_endpoints_down_is_an_error_not_a_hang() {
        struct Dead;
        impl EstimateSource for Dead {
            fn label(&self) -> String {
                "LinkedIn".into()
            }
            fn estimate(&self, _: &adcomp_targeting::TargetingSpec) -> Result<u64, SourceError> {
                Err(SourceError::Transport("down".into()))
            }
            fn check(&self, _: &adcomp_targeting::TargetingSpec) -> Result<(), SourceError> {
                Err(SourceError::Transport("down".into()))
            }
            fn catalog_len(&self) -> u32 {
                0
            }
            fn attribute_name(&self, _: adcomp_targeting::AttributeId) -> Option<String> {
                None
            }
            fn attribute_feature(
                &self,
                _: adcomp_targeting::AttributeId,
            ) -> Option<adcomp_targeting::FeatureId> {
                None
            }
            fn can_compose(
                &self,
                _: adcomp_targeting::AttributeId,
                _: adcomp_targeting::AttributeId,
            ) -> bool {
                false
            }
            fn supports_demographics(&self) -> bool {
                true
            }
        }
        let dir = temp_dir("all-down");
        let plan = EpochPlan {
            endpoints: vec![Arc::new(Dead) as Arc<dyn EstimateSource>],
            store: Arc::new(RunStore::open(&dir).unwrap()),
            scheduler: SchedulerConfig::fast(),
            resilience: None,
        };
        let err = run_epoch(&plan).unwrap_err();
        assert!(matches!(err, SourceError::Transport(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
