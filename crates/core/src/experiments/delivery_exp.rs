//! Delivery-skew audit: the Imana-style paired job-ad vs neutral-ad
//! experiment (arXiv 2104.04502), separating *platform-induced delivery
//! skew* from audience composition.
//!
//! The paper audits the targeting stage; this driver audits the stage
//! after it. Two ads run simultaneously with an **identical, neutral
//! targeting spec** ([`TargetingSpec::everyone`]) against the same
//! competitor campaigns:
//!
//! * the **job ad**, whose creative the delivery optimizer has learned a
//!   demographic load for (a positive gender bias — think "lumberjack
//!   wanted", per Imana et al.'s job-ad corpus);
//! * the **baseline ad**, demographically neutral but otherwise
//!   identical (same topic loading, budget, bid, cap).
//!
//! Because both ads face the same audience, the same auctions, and the
//! same pacing, any demographic difference between their *delivered*
//! audiences is attributable to the platform's relevance scoring — not
//! to audience composition and not to the advertiser's targeting. Each
//! [`DeliveryCell`] therefore reports three representation ratios:
//!
//! 1. **targeting-stage** — the ratio of the (neutral) spec, measured
//!    through the audited estimate pipeline exactly like every other
//!    experiment (and therefore ≈ 1: the advertiser did nothing wrong);
//! 2. **delivery-stage** — the ratio of each ad's unique delivered users
//!    against the platform's measured base rates;
//! 3. **paired skew** — job over baseline, the Imana-style difference
//!    that controls for everything but the creative.
//!
//! The measurement side runs through [`ExperimentContext::target`], so
//! delivery audits inherit recording/replay, resilience, scheduling, and
//! engine pooling unchanged; the delivery simulation itself is a pure
//! function of `(seed, campaigns, universe)` (see `adcomp-delivery`), so
//! serial, pooled and distributed runs stay byte-identical.

use std::sync::Arc;

use adcomp_delivery::{
    deliver, Campaign, CampaignId, DeliveredTally, DeliveryConfig, DeliverySetup,
};
use adcomp_platform::{AdPlatform, InterfaceKind, SimScale};
use adcomp_population::{AttributeModel, Gender, LATENT_DIMS};
use adcomp_targeting::TargetingSpec;

use crate::engine::QueryEngine;
use crate::metrics::{
    four_fifths_band, measure_spec_batch, rep_ratio, rep_ratio_of, SkewBand, SpecMeasurement,
};
use crate::source::{AuditTarget, SensitiveClass, SourceError};

use super::ExperimentContext;

/// The interfaces the delivery table covers. The restricted Facebook
/// interface is omitted: delivery is a platform-side process, so its row
/// would be the Facebook row behind a narrower targeting surface —
/// which is precisely Imana et al.'s point that targeting restrictions
/// do not reach the delivery stage.
pub const DELIVERY_INTERFACES: [InterfaceKind; 3] = [
    InterfaceKind::FacebookNormal,
    InterfaceKind::GoogleDisplay,
    InterfaceKind::LinkedIn,
];

/// Parameters of the paired-ad experiment.
#[derive(Clone, Copy, Debug)]
pub struct PairedAdConfig {
    /// Ad opportunities per interface.
    pub rounds: u64,
    /// Pacing-window length in rounds.
    pub window: u64,
    /// Competitor campaigns auctioned against the pair.
    pub competitors: usize,
    /// Per-user frequency cap for every campaign.
    pub frequency_cap: u32,
    /// Gender load of the job ad's creative (positive = male-leaning).
    pub gender_load: f32,
    /// Budget per campaign in micros, sized so pacing engages.
    pub budget_micros: u64,
    /// Maximum bid per impression in micros.
    pub max_bid_micros: u64,
}

impl PairedAdConfig {
    /// Per-scale defaults: enough rounds for stable delivered-audience
    /// demographics, budgets tight enough that pacing has work to do.
    pub fn for_scale(scale: SimScale) -> PairedAdConfig {
        match scale {
            SimScale::Paper => PairedAdConfig {
                rounds: 240_000,
                window: 4_000,
                competitors: 6,
                frequency_cap: 3,
                gender_load: 1.0,
                budget_micros: 960_000_000,
                max_bid_micros: 100_000,
            },
            SimScale::Test => PairedAdConfig {
                rounds: 24_000,
                window: 1_000,
                competitors: 6,
                frequency_cap: 3,
                gender_load: 1.0,
                budget_micros: 96_000_000,
                max_bid_micros: 100_000,
            },
        }
    }
}

/// One interface's paired-ad result.
#[derive(Clone, Debug)]
pub struct DeliveryCell {
    /// Interface label.
    pub target: String,
    /// The disadvantaged class the ratios are computed for.
    pub class: SensitiveClass,
    /// Representation ratio of the (neutral) targeting spec, measured
    /// through the audited estimate pipeline.
    pub targeting_ratio: f64,
    /// Representation ratio of the job ad's delivered audience.
    pub job_delivery_ratio: f64,
    /// Representation ratio of the baseline ad's delivered audience.
    pub baseline_delivery_ratio: f64,
    /// Job over baseline — the paired, composition-controlled skew.
    pub paired_skew: f64,
    /// Four-fifths verdict at the targeting stage.
    pub targeting_band: SkewBand,
    /// Four-fifths verdict at the delivery stage (job ad).
    pub delivery_band: SkewBand,
    /// Who the job ad reached.
    pub job: DeliveredTally,
    /// Who the baseline ad reached.
    pub baseline: DeliveredTally,
    /// Opportunities no campaign bid on.
    pub unfilled: u64,
    /// Pacing throttles across all campaigns.
    pub throttles: u64,
    /// Frequency-cap suppressions across all campaigns.
    pub cap_hits: u64,
    /// Digest of the full impression log and settlement state — byte
    /// identity of the delivery run itself.
    pub log_digest: u64,
}

/// Stable per-interface salt so each platform gets its own opportunity
/// stream from one experiment seed. Shared with the uncertainty
/// experiment, whose delivery rows must replay the exact same runs.
pub(crate) fn interface_salt(kind: InterfaceKind) -> u64 {
    kind.label().bytes().fold(0xD311u64, |acc, b| {
        acc.wrapping_mul(131).wrapping_add(u64::from(b))
    })
}

/// The paired roster: job ad (id 0), baseline ad (id 1), and
/// `cfg.competitors` background campaigns — all with the same neutral
/// targeting spec, so delivery alone decides who sees what.
pub fn paired_campaigns(seed: u64, cfg: &PairedAdConfig) -> Vec<Campaign> {
    let creative_seed = |slot: u64| seed.wrapping_mul(0x0100_0000_01B3).wrapping_add(slot);
    let base_campaign = |id: u32, name: &str, creative: AttributeModel| Campaign {
        id: CampaignId(id),
        name: name.to_string(),
        targeting: TargetingSpec::everyone(),
        creative,
        budget_micros: cfg.budget_micros,
        max_bid_micros: cfg.max_bid_micros,
        frequency_cap: cfg.frequency_cap,
    };
    let mut campaigns = vec![
        base_campaign(
            0,
            "job-ad",
            AttributeModel::new(creative_seed(0))
                .popularity(0.5)
                .loading(4, 0.8)
                .gender_bias(cfg.gender_load),
        ),
        base_campaign(
            1,
            "baseline-ad",
            AttributeModel::new(creative_seed(1))
                .popularity(0.5)
                .loading(4, 0.8),
        ),
    ];
    for i in 0..cfg.competitors {
        // Mildly varied background demand: different topic axes, small
        // alternating gender leans — the ambient auction pressure a real
        // campaign pair competes against.
        let lean = [0.3f32, -0.3, 0.15, -0.15, 0.0, 0.0][i % 6];
        let topic = 2 + (i % (LATENT_DIMS - 2));
        campaigns.push(base_campaign(
            2 + i as u32,
            &format!("competitor-{i}"),
            AttributeModel::new(creative_seed(2 + i as u64))
                .popularity(0.45)
                .loading(topic, 0.9)
                .gender_bias(lean),
        ));
    }
    campaigns
}

/// Runs the paired-ad experiment against an explicit audit target and
/// backing platform — the building block `examples/delivery_audit.rs`
/// uses to audit over a faulty wire transport.
pub fn paired_ad_cell_for(
    target: &AuditTarget,
    platform: &Arc<AdPlatform>,
    seed: u64,
    cfg: &PairedAdConfig,
) -> Result<DeliveryCell, SourceError> {
    let kind = platform.config().kind;
    let _span = adcomp_obs::trace::Tracer::global().span_with(
        "experiment:delivery",
        &[("platform", kind.label().to_string())],
    );
    let class = SensitiveClass::Gender(Gender::Female);
    let spec = TargetingSpec::everyone();

    // Targeting stage: the advertiser-visible measurement, through the
    // full audited pipeline (engine, scheduler, recording, resilience —
    // whatever the target is wrapped in).
    let base: SpecMeasurement = measure_spec_batch(target, std::slice::from_ref(&spec))?
        .pop()
        .expect("one spec in, one measurement out");
    let targeting_ratio = rep_ratio_of(&base, &base, class).unwrap_or(1.0);

    // Delivery stage: the platform-internal simulation.
    let delivery_seed = seed ^ interface_salt(kind);
    let setup = DeliverySetup::for_platform(platform, paired_campaigns(delivery_seed, cfg))
        .map_err(SourceError::Platform)?;
    let universe = platform.universe();
    let outcome = deliver(
        universe,
        universe.everyone(),
        &setup,
        &DeliveryConfig::new(cfg.rounds, delivery_seed)
            .window(cfg.window)
            .label(kind.label()),
    );
    let job = outcome.delivered(0, &setup, universe);
    let baseline = outcome.delivered(1, &setup, universe);

    // Delivered-audience ratios against the *measured* (rounded) base
    // rates — same denominators the targeting audit uses.
    let female = Gender::Female.index();
    let male = Gender::Male.index();
    let delivery_ratio = |tally: &DeliveredTally| {
        rep_ratio(
            tally.by_gender[female],
            tally.by_gender[male],
            base.by_gender[female],
            base.by_gender[male],
        )
        .unwrap_or(1.0)
    };
    let job_delivery_ratio = delivery_ratio(&job);
    let baseline_delivery_ratio = delivery_ratio(&baseline);

    Ok(DeliveryCell {
        target: kind.label().to_string(),
        class,
        targeting_ratio,
        job_delivery_ratio,
        baseline_delivery_ratio,
        paired_skew: job_delivery_ratio / baseline_delivery_ratio,
        targeting_band: four_fifths_band(targeting_ratio),
        delivery_band: four_fifths_band(job_delivery_ratio),
        job,
        baseline,
        unfilled: outcome.unfilled,
        throttles: outcome.throttles.iter().sum(),
        cap_hits: outcome.cap_hits.iter().sum(),
        log_digest: outcome.digest(),
    })
}

/// One interface's cell through an [`ExperimentContext`], optionally
/// pooling the measurement queries on `engine`.
pub fn paired_ad_cell_with(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
    engine: Option<&Arc<QueryEngine>>,
) -> Result<DeliveryCell, SourceError> {
    let mut target = ctx.target(kind);
    if let Some(engine) = engine {
        target = target.with_engine(engine.clone());
    }
    let platform = match kind {
        InterfaceKind::FacebookNormal => &ctx.simulation.facebook,
        InterfaceKind::FacebookRestricted => &ctx.simulation.facebook_restricted,
        InterfaceKind::GoogleDisplay => &ctx.simulation.google,
        InterfaceKind::LinkedIn => &ctx.simulation.linkedin,
    };
    paired_ad_cell_for(
        &target,
        platform,
        ctx.config.seed,
        &PairedAdConfig::for_scale(ctx.config.scale),
    )
}

/// One interface's cell with the context's default (serial) measurement.
pub fn paired_ad_cell(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
) -> Result<DeliveryCell, SourceError> {
    paired_ad_cell_with(ctx, kind, None)
}

/// The full paired-ad table over [`DELIVERY_INTERFACES`].
pub fn delivery_table(ctx: &ExperimentContext) -> Result<Vec<DeliveryCell>, SourceError> {
    delivery_table_with(ctx, None)
}

/// [`delivery_table`] with the measurement queries pooled on `engine`.
pub fn delivery_table_with(
    ctx: &ExperimentContext,
    engine: Option<&Arc<QueryEngine>>,
) -> Result<Vec<DeliveryCell>, SourceError> {
    DELIVERY_INTERFACES
        .iter()
        .map(|&kind| paired_ad_cell_with(ctx, kind, engine))
        .collect()
}

/// TSV rendering. Includes the impression-log digest, so byte-equality
/// of two tables implies byte-equality of the underlying delivery runs.
pub fn delivery_table_tsv(cells: &[DeliveryCell]) -> String {
    let mut out = String::from(
        "interface\tclass\ttargeting_ratio\tjob_delivery_ratio\tbaseline_delivery_ratio\t\
         paired_skew\tjob_unique\tbaseline_unique\tunfilled\tlog_digest\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{}\t{}\t{}\t{:016x}\n",
            c.target,
            c.class.label(),
            c.targeting_ratio,
            c.job_delivery_ratio,
            c.baseline_delivery_ratio,
            c.paired_skew,
            c.job.unique_users,
            c.baseline.unique_users,
            c.unfilled,
            c.log_digest,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentConfig;
    use crate::metrics::FOUR_FIFTHS_THRESHOLD;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(2020)))
    }

    /// ISSUE 9 acceptance: a neutral targeting spec with a
    /// demographically loaded creative passes the four-fifths test at
    /// the targeting stage and fails it at the delivery stage.
    #[test]
    fn paired_experiment_separates_targeting_from_delivery() {
        let cell = paired_ad_cell(ctx(), InterfaceKind::FacebookNormal).unwrap();
        assert!(
            cell.targeting_ratio >= FOUR_FIFTHS_THRESHOLD,
            "neutral targeting must clear the four-fifths line, got {}",
            cell.targeting_ratio
        );
        assert_eq!(cell.targeting_band, SkewBand::Within);
        assert!(
            cell.job_delivery_ratio < FOUR_FIFTHS_THRESHOLD,
            "loaded creative must push delivery under the line, got {}",
            cell.job_delivery_ratio
        );
        assert_eq!(cell.delivery_band, SkewBand::Under);
        assert!(
            cell.paired_skew < 1.0,
            "job ad must under-deliver to women relative to its own baseline, got {}",
            cell.paired_skew
        );
    }

    /// The paired design isolates the creative: the baseline ad never
    /// *under*-delivers to women, while the job ad always delivers to
    /// fewer of them than its own baseline. (Competitive spillover —
    /// the job ad winning male users' auctions — can push the baseline
    /// *above* parity, which is exactly why the paired ratio, not the
    /// absolute one, is the attribution signal.)
    #[test]
    fn baseline_ad_delivers_unskewed() {
        for kind in DELIVERY_INTERFACES {
            let cell = paired_ad_cell(ctx(), kind).unwrap();
            assert_ne!(
                four_fifths_band(cell.baseline_delivery_ratio),
                SkewBand::Under,
                "{}: baseline ratio {}",
                cell.target,
                cell.baseline_delivery_ratio
            );
            assert!(
                cell.job_delivery_ratio < cell.baseline_delivery_ratio,
                "{}: job {} vs baseline {}",
                cell.target,
                cell.job_delivery_ratio,
                cell.baseline_delivery_ratio
            );
            assert!(cell.paired_skew < 1.0);
            assert!(cell.job.unique_users > 0 && cell.baseline.unique_users > 0);
        }
    }

    #[test]
    fn table_is_deterministic_and_tsv_complete() {
        let a = delivery_table_tsv(&delivery_table(ctx()).unwrap());
        let fresh = ExperimentContext::new(ExperimentConfig::test(2020));
        let b = delivery_table_tsv(&delivery_table(&fresh).unwrap());
        assert_eq!(a, b, "same seed must reproduce the table byte-identically");
        assert_eq!(a.lines().count(), 1 + DELIVERY_INTERFACES.len());
        for kind in DELIVERY_INTERFACES {
            assert!(a.contains(kind.label()), "missing {}", kind.label());
        }
    }
}
