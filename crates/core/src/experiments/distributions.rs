//! Figures 1, 2, 4: representation-ratio distributions per targeting set.
//!
//! For each interface and sensitive class, the paper plots the ratio
//! distribution of several *sets of targetings*: every individual
//! attribute, 1 000 random pairs, the greedily discovered most skewed
//! pairs toward/against the class, and (Figure 1, gender) the 3-way
//! analogues. Only targetings with total recall ≥ 10 000 are shown.

use adcomp_platform::InterfaceKind;

use crate::discovery::{
    random_compositions, rank_individuals, top_compositions, Direction, DiscoveryConfig,
    IndividualSurvey, MeasuredTargeting,
};
use crate::metrics::{FOUR_FIFTHS_HIGH, FOUR_FIFTHS_LOW};
use crate::source::{AuditTarget, SensitiveClass, SourceError};
use crate::stats::{fraction_outside, BoxStats};

use super::ExperimentContext;

/// Which set of targetings a distribution row describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetLabel {
    /// Every individual catalog attribute.
    Individual,
    /// Random k-way compositions.
    Random(usize),
    /// Greedy most-skewed compositions toward the class.
    Top(usize),
    /// Greedy most-skewed compositions against the class.
    Bottom(usize),
}

impl std::fmt::Display for SetLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetLabel::Individual => write!(f, "Individual"),
            SetLabel::Random(k) => write!(f, "Random {k}-way"),
            SetLabel::Top(k) => write!(f, "Top {k}-way"),
            SetLabel::Bottom(k) => write!(f, "Bottom {k}-way"),
        }
    }
}

/// One box of a figure: the ratio distribution of one set for one class
/// on one interface.
#[derive(Clone, Debug)]
pub struct DistributionRow {
    /// Interface label.
    pub target: String,
    /// The set of targetings.
    pub set: SetLabel,
    /// The sensitive class the ratios are relative to.
    pub class: SensitiveClass,
    /// All ratios (reach-filtered).
    pub ratios: Vec<f64>,
    /// Box-plot summary.
    pub stats: BoxStats,
    /// Fraction outside the four-fifths band (the paper quotes this for
    /// the skewed pair sets).
    pub violating: f64,
}

impl DistributionRow {
    fn build(
        target: &AuditTarget,
        set: SetLabel,
        class: SensitiveClass,
        ratios: Vec<f64>,
    ) -> Option<DistributionRow> {
        let stats = BoxStats::from_samples(&ratios)?;
        Some(DistributionRow {
            target: target.label(),
            set,
            class,
            violating: fraction_outside(&ratios, FOUR_FIFTHS_LOW, FOUR_FIFTHS_HIGH),
            ratios,
            stats,
        })
    }

    /// TSV row: `interface, set, class, violating,` then box stats.
    pub fn tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{:.3}\t{}",
            self.target,
            self.set,
            self.class,
            self.violating,
            self.stats.tsv()
        )
    }

    /// Header for [`DistributionRow::tsv`].
    pub fn tsv_header() -> String {
        format!(
            "interface\tset\tclass\tviolating\t{}",
            BoxStats::tsv_header()
        )
    }
}

fn ratios_of(
    set: &[MeasuredTargeting],
    survey: &IndividualSurvey,
    class: SensitiveClass,
    min_reach: u64,
) -> Vec<f64> {
    set.iter()
        .filter(|t| t.measurement.total >= min_reach)
        .filter_map(|t| t.ratio(&survey.base, class))
        .collect()
}

/// Computes the distribution rows for one interface: Individual and
/// Random k plus Top/Bottom for every requested class and arity.
///
/// `arities` typically is `[2]`; Figure 1 uses `[2, 3]` for gender on the
/// restricted interface.
pub fn distributions_for(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
    classes: &[SensitiveClass],
    arities: &[usize],
) -> Result<Vec<DistributionRow>, SourceError> {
    let target = ctx.target(kind);
    let survey = ctx.survey(kind)?;
    let cfg = ctx.config.discovery;
    let mut rows = Vec::new();

    // Individual ratios per class.
    for &class in classes {
        let ratios: Vec<f64> = survey
            .entries
            .iter()
            .filter(|e| e.measurement.total >= cfg.min_reach)
            .filter_map(|e| e.ratio(&survey.base, class))
            .collect();
        rows.extend(DistributionRow::build(
            &target,
            SetLabel::Individual,
            class,
            ratios,
        ));
    }

    for &arity in arities {
        let arity_cfg = DiscoveryConfig { arity, ..cfg };
        // Random compositions are class-independent; measure once.
        let random = random_compositions(&target, &arity_cfg)?;
        for &class in classes {
            let ratios = ratios_of(&random, survey, class, cfg.min_reach);
            rows.extend(DistributionRow::build(
                &target,
                SetLabel::Random(arity),
                class,
                ratios,
            ));
        }
        // Top/Bottom per class.
        for &class in classes {
            for direction in Direction::BOTH {
                let ranked = rank_individuals(survey, class, direction, cfg.min_reach);
                let set = top_compositions(&target, survey, &ranked, &arity_cfg)?;
                let ratios = ratios_of(&set, survey, class, cfg.min_reach);
                let label = match direction {
                    Direction::Toward => SetLabel::Top(arity),
                    Direction::Against => SetLabel::Bottom(arity),
                };
                rows.extend(DistributionRow::build(&target, label, class, ratios));
            }
        }
    }
    Ok(rows)
}

/// Figure 1: the restricted interface, males and ages 18–24, with 2-way
/// and (for gender) 3-way compositions.
pub fn figure1(ctx: &ExperimentContext) -> Result<Vec<DistributionRow>, SourceError> {
    use adcomp_population::{AgeBucket, Gender};
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:figure1");
    let mut rows = distributions_for(
        ctx,
        InterfaceKind::FacebookRestricted,
        &[SensitiveClass::Gender(Gender::Male)],
        &[2, 3],
    )?;
    rows.extend(distributions_for(
        ctx,
        InterfaceKind::FacebookRestricted,
        &[SensitiveClass::Age(AgeBucket::A18_24)],
        &[2],
    )?);
    Ok(rows)
}

/// Figure 2: all four interfaces, males and ages 18–24, 2-way sets.
pub fn figure2(ctx: &ExperimentContext) -> Result<Vec<DistributionRow>, SourceError> {
    use adcomp_population::{AgeBucket, Gender};
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:figure2");
    let classes = [
        SensitiveClass::Gender(Gender::Male),
        SensitiveClass::Age(AgeBucket::A18_24),
    ];
    let mut rows = Vec::new();
    for kind in super::INTERFACE_ORDER {
        rows.extend(distributions_for(ctx, kind, &classes, &[2])?);
    }
    Ok(rows)
}

/// Figure 4 (appendix): all four interfaces, the three older age ranges.
pub fn figure4(ctx: &ExperimentContext) -> Result<Vec<DistributionRow>, SourceError> {
    use adcomp_population::AgeBucket;
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:figure4");
    let classes = [
        SensitiveClass::Age(AgeBucket::A25_34),
        SensitiveClass::Age(AgeBucket::A35_54),
        SensitiveClass::Age(AgeBucket::A55Plus),
    ];
    let mut rows = Vec::new();
    for kind in super::INTERFACE_ORDER {
        rows.extend(distributions_for(ctx, kind, &classes, &[2])?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentConfig, ExperimentContext};
    use adcomp_population::Gender;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(60)))
    }

    #[test]
    fn restricted_interface_compositions_amplify_skew() {
        // The §4.1 headline: Top 2-way out-skews Individual, Top 3-way
        // out-skews Top 2-way, on the sanitized interface.
        let male = SensitiveClass::Gender(Gender::Male);
        let rows =
            distributions_for(ctx(), InterfaceKind::FacebookRestricted, &[male], &[2, 3]).unwrap();
        let p90 = |set: SetLabel| {
            rows.iter()
                .find(|r| r.set == set && r.class == male)
                .map(|r| r.stats.p90)
        };
        let individual = p90(SetLabel::Individual).unwrap();
        let top2 = p90(SetLabel::Top(2)).unwrap();
        let top3 = p90(SetLabel::Top(3)).unwrap();
        assert!(
            top2 > individual,
            "top2 {top2:.2} vs individual {individual:.2}"
        );
        // At test scale one simulated user is thousands of platform users,
        // so 3-way audiences are heavily quantised and their measured tail
        // can dip below the 2-way tail; require it to at least stay in the
        // same band and far above individuals. The strict top3 > top2
        // ordering is asserted at paper scale (fig1 binary / EXPERIMENTS.md).
        assert!(
            top3 > individual * 1.5 && top3 > top2 * 0.6,
            "top3 {top3:.2} vs top2 {top2:.2}, individual {individual:.2}"
        );
        let p10 = |set: SetLabel| {
            rows.iter()
                .find(|r| r.set == set && r.class == male)
                .map(|r| r.stats.p10)
        };
        let bottom2 = p10(SetLabel::Bottom(2)).unwrap();
        assert!(bottom2 < p10(SetLabel::Individual).unwrap());
    }

    #[test]
    fn most_skewed_pairs_mostly_violate_four_fifths() {
        // §4.3: "over 90 percent of these falling outside the thresholds".
        let male = SensitiveClass::Gender(Gender::Male);
        let rows = distributions_for(ctx(), InterfaceKind::LinkedIn, &[male], &[2]).unwrap();
        for set in [SetLabel::Top(2), SetLabel::Bottom(2)] {
            let row = rows.iter().find(|r| r.set == set).unwrap();
            assert!(
                row.violating > 0.8,
                "{set}: only {:.0}% violating",
                row.violating * 100.0
            );
        }
    }

    #[test]
    fn tsv_rows_are_well_formed() {
        let male = SensitiveClass::Gender(Gender::Male);
        let rows = distributions_for(ctx(), InterfaceKind::LinkedIn, &[male], &[2]).unwrap();
        let header_cols = DistributionRow::tsv_header().split('\t').count();
        for r in &rows {
            assert_eq!(r.tsv().split('\t').count(), header_cols);
        }
        assert!(rows.len() >= 4, "Individual + Random + Top + Bottom");
    }
}
