//! Tables 2 and 3: illustrative skewed compositions.
//!
//! The paper's appendix lists, per platform and favoured gender/age,
//! example "Top 2-way" pairs where the composition's representation ratio
//! far exceeds either component's — e.g. *Interests — Electrical
//! engineering* (3.71) ∧ *Interests — Cars* (2.18) → 12.43. This driver
//! re-derives such examples from the discovered compositions.

use adcomp_platform::InterfaceKind;
use adcomp_population::{AgeBucket, Gender};

use crate::discovery::{rank_individuals, top_compositions, Direction};
use crate::source::{SensitiveClass, SourceError};

use super::ExperimentContext;

/// One example row of Tables 2/3.
#[derive(Clone, Debug)]
pub struct ExampleRow {
    /// Interface label.
    pub target: String,
    /// The favoured class.
    pub class: SensitiveClass,
    /// Name of the first composed attribute.
    pub name1: String,
    /// Name of the second composed attribute.
    pub name2: String,
    /// Individual ratio of the first attribute.
    pub ratio1: f64,
    /// Individual ratio of the second attribute.
    pub ratio2: f64,
    /// Ratio of the composition.
    pub combined: f64,
}

impl ExampleRow {
    /// Amplification factor over the stronger component.
    pub fn amplification(&self) -> f64 {
        self.combined / self.ratio1.max(self.ratio2)
    }

    /// TSV row.
    pub fn tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{:.2}\t{:.2}\t{:.2}",
            self.target,
            self.class,
            self.name1,
            self.name2,
            self.ratio1,
            self.ratio2,
            self.combined
        )
    }

    /// TSV header.
    pub fn tsv_header() -> &'static str {
        "interface\tclass\ttargeting1\ttargeting2\tr1\tr2\tr_combined"
    }
}

/// Finds up to `limit` illustrative examples for one class on one
/// interface: compositions whose ratio exceeds both components', ordered
/// by combined ratio.
pub fn examples_for(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
    class: SensitiveClass,
    limit: usize,
) -> Result<Vec<ExampleRow>, SourceError> {
    let target = ctx.target(kind);
    let survey = ctx.survey(kind)?;
    let cfg = ctx.config.discovery;
    let ranked = rank_individuals(survey, class, Direction::Toward, cfg.min_reach);
    let compositions = top_compositions(&target, survey, &ranked, &cfg)?;

    let mut rows: Vec<ExampleRow> = compositions
        .iter()
        .filter_map(|c| {
            let combined = c.ratio(&survey.base, class)?;
            let e1 = &survey.entries[c.attrs[0].0 as usize];
            let e2 = &survey.entries[c.attrs[1].0 as usize];
            let ratio1 = e1.ratio(&survey.base, class)?;
            let ratio2 = e2.ratio(&survey.base, class)?;
            if combined <= ratio1.max(ratio2) {
                return None; // not an amplification example
            }
            Some(ExampleRow {
                target: target.label(),
                class,
                name1: target.targeting.attribute_name(c.attrs[0])?,
                name2: target.targeting.attribute_name(c.attrs[1])?,
                ratio1,
                ratio2,
                combined,
            })
        })
        .collect();
    rows.sort_by(|a, b| b.combined.partial_cmp(&a.combined).expect("finite"));
    rows.truncate(limit);
    Ok(rows)
}

/// Table 2: gender examples (male and female) on every interface.
pub fn table2(ctx: &ExperimentContext, per_cell: usize) -> Result<Vec<ExampleRow>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:table2");
    let mut rows = Vec::new();
    for kind in super::INTERFACE_ORDER {
        for gender in Gender::ALL {
            rows.extend(examples_for(
                ctx,
                kind,
                SensitiveClass::Gender(gender),
                per_cell,
            )?);
        }
    }
    Ok(rows)
}

/// Table 3: age examples (18–24 and 55+) on every interface.
pub fn table3(ctx: &ExperimentContext, per_cell: usize) -> Result<Vec<ExampleRow>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:table3");
    let mut rows = Vec::new();
    for kind in super::INTERFACE_ORDER {
        for age in [AgeBucket::A18_24, AgeBucket::A55Plus] {
            rows.extend(examples_for(ctx, kind, SensitiveClass::Age(age), per_cell)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentConfig, ExperimentContext};
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(64)))
    }

    #[test]
    fn examples_show_amplification() {
        let male = SensitiveClass::Gender(Gender::Male);
        let rows = examples_for(ctx(), InterfaceKind::LinkedIn, male, 5).unwrap();
        assert!(!rows.is_empty(), "amplifying pairs must exist");
        for r in &rows {
            assert!(r.combined > r.ratio1.max(r.ratio2), "{r:?}");
            assert!(r.amplification() > 1.0);
            assert!(r.name1.contains(" — ") && r.name2.contains(" — "));
        }
        // Ordered by combined ratio.
        let combined: Vec<f64> = rows.iter().map(|r| r.combined).collect();
        assert!(combined.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn tsv_shape() {
        let male = SensitiveClass::Gender(Gender::Male);
        let rows = examples_for(ctx(), InterfaceKind::LinkedIn, male, 3).unwrap();
        let cols = ExampleRow::tsv_header().split('\t').count();
        for r in &rows {
            assert_eq!(r.tsv().split('\t').count(), cols);
        }
    }
}
