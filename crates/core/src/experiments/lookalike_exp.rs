//! Lookalike/Special-Ad-Audience skew experiment (extension of §2.2).
//!
//! For each interface, take the most gender-skewed attribute audiences
//! as advertiser seeds, expand each with a regular lookalike and with
//! the Special-Ad-Audience (no-demographic-features) variant, and
//! measure the ground-truth representation ratio of all three sets. The
//! question mirrors the paper's thesis: does removing demographic
//! *features* fix demographic *outcomes*? (No: behavioural similarity
//! leaks the seed's demographics.)

use adcomp_platform::{AdPlatform, InterfaceKind, LookalikeConfig};
use adcomp_population::Gender;

use adcomp_bitset::Bitset;

use crate::metrics::rep_ratio;
use crate::source::SourceError;

use super::ExperimentContext;

/// One seed's expansion outcome.
#[derive(Clone, Debug)]
pub struct LookalikeRow {
    /// Interface label.
    pub target: String,
    /// Name of the seed attribute.
    pub seed_name: String,
    /// Ground-truth male representation ratio of the seed audience.
    pub seed_ratio: f64,
    /// Ratio of the regular lookalike.
    pub lookalike_ratio: f64,
    /// Ratio of the Special Ad Audience expansion.
    pub saa_ratio: f64,
    /// Seed size (simulated users).
    pub seed_size: u64,
}

impl LookalikeRow {
    /// TSV row.
    pub fn tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}",
            self.target,
            self.seed_name,
            self.seed_size,
            self.seed_ratio,
            self.lookalike_ratio,
            self.saa_ratio
        )
    }

    /// TSV header.
    pub fn tsv_header() -> &'static str {
        "interface\tseed\tseed_size\tseed_ratio\tlookalike_ratio\tsaa_ratio"
    }
}

/// Ground-truth male ratio of an arbitrary audience on a platform.
fn male_ratio(platform: &AdPlatform, set: &Bitset) -> Option<f64> {
    let u = platform.universe();
    let males = u.gender_audience(Gender::Male);
    let females = u.gender_audience(Gender::Female);
    rep_ratio(
        set.intersection_len(males),
        set.intersection_len(females),
        males.len(),
        females.len(),
    )
}

/// Runs the experiment on one interface with its `seeds` most male-skewed
/// attribute audiences.
pub fn lookalike_for(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
    seeds: usize,
) -> Result<Vec<LookalikeRow>, SourceError> {
    let platform: &AdPlatform = match kind {
        InterfaceKind::FacebookNormal => &ctx.simulation.facebook,
        InterfaceKind::FacebookRestricted => &ctx.simulation.facebook_restricted,
        InterfaceKind::GoogleDisplay => &ctx.simulation.google,
        InterfaceKind::LinkedIn => &ctx.simulation.linkedin,
    };
    // Rank attribute audiences by ground-truth male ratio (this is an
    // advertiser's seed choice, not an estimate-API query).
    let mut candidates: Vec<(usize, f64)> = (0..platform.catalog().len())
        .filter_map(|idx| {
            let audience = platform.attribute_audience_raw(idx)?;
            if audience.len() < adcomp_platform::MIN_SEED * 2 {
                return None;
            }
            Some((idx, male_ratio(platform, audience)?))
        })
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    candidates.truncate(seeds);

    let mut rows = Vec::with_capacity(candidates.len());
    for (idx, seed_ratio) in candidates {
        let seed = platform
            .attribute_audience_raw(idx)
            .expect("ranked audience")
            .clone();
        let regular = platform
            .lookalike(&seed, &LookalikeConfig::default())
            .expect("seed size was checked");
        let saa = platform
            .lookalike(&seed, &LookalikeConfig::special_ad_audience())
            .expect("seed size was checked");
        rows.push(LookalikeRow {
            target: platform.label().to_string(),
            seed_name: platform
                .catalog()
                .get(adcomp_targeting::AttributeId(idx as u32))
                .expect("catalog entry")
                .name
                .clone(),
            seed_ratio,
            // A perfectly single-gender expansion has an undefined ratio
            // (zero complement); report it as infinite skew.
            lookalike_ratio: male_ratio(platform, &regular).unwrap_or(f64::INFINITY),
            saa_ratio: male_ratio(platform, &saa).unwrap_or(f64::INFINITY),
            seed_size: seed.len(),
        });
    }
    Ok(rows)
}

/// The full experiment: top seeds on every interface.
pub fn lookalike_experiment(
    ctx: &ExperimentContext,
    seeds_per_interface: usize,
) -> Result<Vec<LookalikeRow>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:lookalike");
    let mut rows = Vec::new();
    for kind in super::INTERFACE_ORDER {
        rows.extend(lookalike_for(ctx, kind, seeds_per_interface)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentConfig, ExperimentContext};
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(67)))
    }

    #[test]
    fn saa_reduces_but_rarely_fixes_skew() {
        let rows = lookalike_for(ctx(), InterfaceKind::FacebookNormal, 4).unwrap();
        assert_eq!(rows.len(), 4);
        let mut still_violating = 0;
        for r in &rows {
            assert!(r.seed_ratio >= 1.0, "seeds are male-skewed");
            assert!(
                r.saa_ratio <= r.lookalike_ratio + 1e-9,
                "adjustment must not add skew: {r:?}"
            );
            if r.saa_ratio > crate::metrics::FOUR_FIFTHS_HIGH {
                still_violating += 1;
            }
        }
        assert!(
            still_violating >= rows.len() / 2,
            "behavioural leakage should keep most SAAs skewed ({still_violating}/{})",
            rows.len()
        );
    }

    #[test]
    fn experiment_covers_all_interfaces() {
        let rows = lookalike_experiment(ctx(), 2).unwrap();
        let interfaces: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.target.as_str()).collect();
        assert_eq!(interfaces.len(), 4);
        let cols = LookalikeRow::tsv_header().split('\t').count();
        for r in &rows {
            assert_eq!(r.tsv().split('\t').count(), cols);
        }
    }
}
