//! §3 methodology checks: estimate consistency and granularity.
//!
//! Runs the paper's pre-study against each simulated interface and
//! renders what §3 reports: that estimates are consistent under repeated
//! queries, and each platform's significant-digit ladder and reporting
//! floor.

use adcomp_platform::InterfaceKind;

use crate::probe::{consistency_probe, granularity_probe, ConsistencyReport, GranularityReport};
use crate::source::SourceError;

use super::ExperimentContext;

/// Probe sizes.
#[derive(Clone, Copy, Debug)]
pub struct ProbeConfig {
    /// Random individual options per platform (paper: 20).
    pub individual_specs: usize,
    /// Random compositions per platform (paper: 20).
    pub composed_specs: usize,
    /// Back-to-back repeats per spec (paper: 100).
    pub repeats: usize,
    /// Queries for the granularity study (paper: >80 000 per platform).
    pub granularity_queries: usize,
}

impl ProbeConfig {
    /// The paper's settings.
    pub fn paper() -> Self {
        ProbeConfig {
            individual_specs: 20,
            composed_specs: 20,
            repeats: 100,
            granularity_queries: 80_000,
        }
    }

    /// Scaled-down settings for tests.
    pub fn test() -> Self {
        ProbeConfig {
            individual_specs: 5,
            composed_specs: 5,
            repeats: 10,
            granularity_queries: 500,
        }
    }
}

/// One interface's methodology report.
#[derive(Clone, Debug)]
pub struct MethodologyRow {
    /// Interface label.
    pub target: String,
    /// Consistency probe result.
    pub consistency: ConsistencyReport,
    /// Granularity probe result.
    pub granularity: GranularityReport,
}

impl MethodologyRow {
    /// Human summary line.
    pub fn summary(&self) -> String {
        format!(
            "{}: consistent={} ({} specs × {} repeats), sig-digits≤{}, floor={}",
            self.target,
            self.consistency.is_consistent(),
            self.consistency.specs,
            self.consistency.repeats,
            self.granularity.max_significant_digits(),
            self.granularity
                .min_nonzero
                .map_or("-".into(), |v| v.to_string()),
        )
    }
}

/// Runs both probes on every interface.
pub fn methodology(
    ctx: &ExperimentContext,
    cfg: &ProbeConfig,
) -> Result<Vec<MethodologyRow>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:methodology");
    let mut rows = Vec::new();
    for kind in super::INTERFACE_ORDER {
        let target = ctx.target(kind);
        let consistency = consistency_probe(
            &target,
            ctx.config.seed ^ 0xC0,
            cfg.individual_specs,
            cfg.composed_specs,
            cfg.repeats,
        )?;
        let granularity =
            granularity_probe(&target, ctx.config.seed ^ 0x9A, cfg.granularity_queries)?;
        rows.push(MethodologyRow {
            target: target.label(),
            consistency,
            granularity,
        });
    }
    let _ = InterfaceKind::FacebookNormal; // imported for doc clarity
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentConfig, ExperimentContext};

    #[test]
    fn methodology_reports_consistency_and_ladders() {
        let ctx = ExperimentContext::new(ExperimentConfig::test(65));
        let rows = methodology(&ctx, &ProbeConfig::test()).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.consistency.is_consistent(), "{}", r.target);
            assert!(r.granularity.max_significant_digits() <= 2);
            assert!(r.summary().contains("consistent=true"));
        }
        // Facebook's floor is 1000; LinkedIn's 300 (when observed).
        let fb = rows.iter().find(|r| r.target == "Facebook").unwrap();
        if let Some(min) = fb.granularity.min_nonzero {
            assert!(min >= 1_000);
        }
    }
}
