//! Experiment drivers: one module per paper artifact.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`distributions`] | Figures 1, 2, 4 — representation-ratio box plots per targeting set |
//! | [`recall_exp`] | Figure 5 — recall distributions of skewed targetings |
//! | [`removal_exp`] | Figures 3, 6 — removal of skewed individual targetings |
//! | [`table1`] | Table 1 — overlaps and top-1/top-10 union recalls |
//! | [`examples`] | Tables 2, 3 — illustrative skewed compositions |
//! | [`methodology`] | §3 — estimate consistency and granularity probes |
//! | [`report`] | Markdown rendering of a full reproduction run |
//! | [`lookalike_exp`] | Extension: lookalike / Special-Ad-Audience skew |
//! | [`delivery_exp`] | Extension: paired-ad delivery-skew audit (Imana et al.) |
//! | [`uncertainty_exp`] | Extension: uncertainty-aware audits under inferred/missing demographics |
//!
//! All drivers share an [`ExperimentContext`] that owns the simulated
//! platforms and caches the per-interface individual surveys (the audit's
//! most expensive step, shared by every experiment exactly as the paper's
//! crawl data was).

pub mod delivery_exp;
pub mod distributions;
pub mod examples;
pub mod lookalike_exp;
pub mod methodology;
pub mod recall_exp;
pub mod removal_exp;
pub mod report;
pub mod table1;
pub mod uncertainty_exp;

use std::sync::{Arc, OnceLock};

use adcomp_platform::{InterfaceKind, SimScale, Simulation};
use adcomp_population::AttributeInference;
use adcomp_store::RunStore;

use crate::discovery::{survey_individuals, DiscoveryConfig, IndividualSurvey};
use crate::distributed::{SchedulerConfig, StoreJournal};
use crate::resilience::ResilienceConfig;
use crate::source::{AuditTarget, EstimateSource, SourceError};

/// Experiment-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Simulation size.
    pub scale: SimScale,
    /// Discovery parameters (top-k, reach floor, sampling seed).
    pub discovery: DiscoveryConfig,
    /// Optional retry/degradation layer wrapped around every audit
    /// target. `None` (the default) talks to the sources directly —
    /// the right choice for in-process simulators, which cannot fail
    /// transiently. Set it when the target sits behind a wire client
    /// or a fault-injecting harness.
    pub resilience: Option<ResilienceConfig>,
    /// Optional demographic-inference model. `None` (the default) is the
    /// oracle scenario: platforms resolve demographic constraints against
    /// ground truth. `Some` attaches an
    /// [`InferredView`](adcomp_population::InferredView) to every
    /// platform, so the same experiments run against noisy or missing
    /// demographic labels (see [`uncertainty_exp`]).
    pub inference: Option<AttributeInference>,
}

impl ExperimentConfig {
    /// Paper-scale configuration (full catalogs, top-1000 discovery).
    pub fn paper(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            scale: SimScale::Paper,
            discovery: DiscoveryConfig::default(),
            resilience: None,
            inference: None,
        }
    }

    /// Fast configuration for tests and examples.
    pub fn test(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            scale: SimScale::Test,
            discovery: DiscoveryConfig {
                top_k: 60,
                ..DiscoveryConfig::default()
            },
            resilience: None,
            inference: None,
        }
    }

    /// Wraps every audit target in a [`ResilientSource`] with `config`.
    ///
    /// [`ResilientSource`]: crate::resilience::ResilientSource
    pub fn with_resilience(mut self, config: ResilienceConfig) -> Self {
        self.resilience = Some(config);
        self
    }

    /// Runs the experiments against demographics *inferred* through
    /// `model` instead of ground truth.
    pub fn with_inference(mut self, model: AttributeInference) -> Self {
        self.inference = Some(model);
        self
    }
}

/// How an [`ExperimentContext`] interacts with a [`RunStore`].
enum StoreMode {
    /// Live sources, nothing persisted.
    None,
    /// Live sources with every answered estimate recorded; re-runs
    /// against the same store replay answered queries from disk.
    Record(Arc<RunStore>),
    /// Pure replay: targets are reconstructed from the store and the
    /// platform layer is never queried.
    Replay(Arc<RunStore>),
}

/// Builds the replica endpoint set a distributed context schedules a
/// *measurement* interface's queries across. Called once per
/// [`target`](ExperimentContext::target) with the measurement-side
/// interface (the restricted Facebook interface measures via its
/// parent, so it asks for `FacebookNormal` replicas); every returned
/// source must report that interface's label.
pub type EndpointSetFactory =
    Arc<dyn Fn(InterfaceKind) -> Vec<Arc<dyn EstimateSource>> + Send + Sync>;

/// Owns the simulation and caches per-interface surveys.
pub struct ExperimentContext {
    /// The simulated platforms.
    pub simulation: Simulation,
    /// Global configuration.
    pub config: ExperimentConfig,
    surveys: [OnceLock<IndividualSurvey>; 4],
    store: StoreMode,
    sched: Option<(EndpointSetFactory, SchedulerConfig)>,
}

/// The paper's presentation order of interfaces.
pub const INTERFACE_ORDER: [InterfaceKind; 4] = [
    InterfaceKind::FacebookRestricted,
    InterfaceKind::FacebookNormal,
    InterfaceKind::GoogleDisplay,
    InterfaceKind::LinkedIn,
];

fn interface_index(kind: InterfaceKind) -> usize {
    INTERFACE_ORDER
        .iter()
        .position(|k| *k == kind)
        .expect("known interface")
}

impl ExperimentContext {
    /// Builds the simulation for `config`.
    pub fn new(config: ExperimentConfig) -> ExperimentContext {
        ExperimentContext {
            simulation: Simulation::build_inferred(
                config.seed,
                config.scale,
                config.inference.as_ref(),
            ),
            config,
            surveys: Default::default(),
            store: StoreMode::None,
            sched: None,
        }
    }

    /// Like [`new`](ExperimentContext::new), but every target measures
    /// through a distributed scheduler
    /// ([`AuditTarget::with_scheduler`]) over the replica endpoints
    /// `factory` builds per measurement interface. Every experiment
    /// driver then runs distributed without changes — results stay
    /// bit-identical to the single-endpoint serial run.
    pub fn distributed(
        config: ExperimentConfig,
        factory: EndpointSetFactory,
        sched: SchedulerConfig,
    ) -> ExperimentContext {
        let mut ctx = ExperimentContext::new(config);
        ctx.sched = Some((factory, sched));
        ctx
    }

    /// [`distributed`](ExperimentContext::distributed) +
    /// [`recorded`](ExperimentContext::recorded): scheduled queries are
    /// recorded into `store` (outermost, so answered queries replay
    /// from disk on resume and are never re-issued to any endpoint) and
    /// the scheduler journals its unit grants/completions into the same
    /// store as the coordinator's durable job state.
    pub fn distributed_recorded(
        config: ExperimentConfig,
        store: Arc<RunStore>,
        factory: EndpointSetFactory,
        sched: SchedulerConfig,
    ) -> ExperimentContext {
        let mut ctx = ExperimentContext::distributed(config, factory, sched);
        ctx.store = StoreMode::Record(store);
        ctx
    }

    /// Like [`new`](ExperimentContext::new), but every audit target is
    /// wrapped in a [`RecordingSource`](crate::source::RecordingSource)
    /// writing into `store`. Recording wraps *outermost* (outside
    /// resilience), so the store holds final post-resilience answers —
    /// and because recorded answers are replayed from the store before
    /// any live query, killing and re-running an experiment against the
    /// same store resumes it with zero re-issued platform queries.
    pub fn recorded(config: ExperimentConfig, store: Arc<RunStore>) -> ExperimentContext {
        let mut ctx = ExperimentContext::new(config);
        ctx.store = StoreMode::Record(store);
        ctx
    }

    /// A context whose targets replay `store` with the platform layer
    /// fully detached: [`target`](ExperimentContext::target) returns
    /// [`AuditTarget::from_replay`] targets, and any estimate the
    /// recorded run never answered fails loudly as a replay miss.
    /// `config` must match the recorded run for the drivers to ask the
    /// same questions (spec schedules are derived from its seeds).
    pub fn replayed(config: ExperimentConfig, store: Arc<RunStore>) -> ExperimentContext {
        let mut ctx = ExperimentContext::new(config);
        ctx.store = StoreMode::Replay(store);
        ctx
    }

    /// The audit target for an interface (restricted measures via its
    /// parent automatically).
    pub fn target(&self, kind: InterfaceKind) -> AuditTarget {
        if let StoreMode::Replay(store) = &self.store {
            return AuditTarget::from_replay(store, kind.label())
                .expect("interface was recorded in the replayed run store");
        }
        let platform = match kind {
            InterfaceKind::FacebookNormal => &self.simulation.facebook,
            InterfaceKind::FacebookRestricted => &self.simulation.facebook_restricted,
            InterfaceKind::GoogleDisplay => &self.simulation.google,
            InterfaceKind::LinkedIn => &self.simulation.linkedin,
        };
        let mut target = AuditTarget::for_platform(platform, &self.simulation);
        if let Some((factory, sched_cfg)) = &self.sched {
            // The restricted interface measures via its parent, so the
            // fleet must replicate the measurement-side interface.
            let measurement_kind = match kind {
                InterfaceKind::FacebookRestricted => InterfaceKind::FacebookNormal,
                other => other,
            };
            let journal: Option<Arc<dyn adcomp_sched::UnitJournal>> = match &self.store {
                StoreMode::Record(store) => {
                    Some(Arc::new(StoreJournal::new(store.clone(), kind.label())))
                }
                _ => None,
            };
            target =
                target.with_scheduler_cfg(factory(measurement_kind), sched_cfg.clone(), journal);
        }
        if let Some(config) = self.config.resilience {
            target = target.with_resilience(config);
        }
        if let StoreMode::Record(store) = &self.store {
            target = target
                .with_recording(store.clone())
                .expect("run store accepts interface metadata");
        }
        target
    }

    /// The run store this context records into or replays from, if any.
    pub fn store(&self) -> Option<&Arc<RunStore>> {
        match &self.store {
            StoreMode::None => None,
            StoreMode::Record(store) | StoreMode::Replay(store) => Some(store),
        }
    }

    /// The cached individual survey of an interface (computed on first
    /// use; every experiment shares it).
    pub fn survey(&self, kind: InterfaceKind) -> Result<&IndividualSurvey, SourceError> {
        let slot = &self.surveys[interface_index(kind)];
        if let Some(s) = slot.get() {
            return Ok(s);
        }
        let _span = adcomp_obs::trace::Tracer::global().span_with(
            "discovery:survey",
            &[("platform", kind.label().to_string())],
        );
        let survey = survey_individuals(&self.target(kind))?;
        let _ = slot.set(survey);
        Ok(slot.get().expect("just set"))
    }
}

/// Formats a count the way the paper does ("6.1M", "570K", "46K").
pub fn fmt_count(value: u64) -> String {
    if value >= 1_000_000_000 {
        format!("{:.1}B", value as f64 / 1e9)
    } else if value >= 1_000_000 {
        format!("{:.1}M", value as f64 / 1e6)
    } else if value >= 1_000 {
        format!("{:.0}K", value as f64 / 1e3)
    } else {
        value.to_string()
    }
}

/// Formats a recall with its percentage of the population ("6.1M (5.1%)").
pub fn fmt_recall(recall: u64, population: u64) -> String {
    if population == 0 {
        return fmt_count(recall);
    }
    format!(
        "{} ({:.1}%)",
        fmt_count(recall),
        100.0 * recall as f64 / population as f64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_units() {
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(46_000), "46K");
        assert_eq!(fmt_count(1_100_000), "1.1M");
        assert_eq!(fmt_count(2_400_000_000), "2.4B");
    }

    #[test]
    fn fmt_recall_with_population() {
        assert_eq!(fmt_recall(6_100_000, 120_000_000), "6.1M (5.1%)");
        assert_eq!(fmt_recall(10, 0), "10");
    }

    #[test]
    fn context_builds_and_caches_surveys() {
        let ctx = ExperimentContext::new(ExperimentConfig::test(50));
        let s1 = ctx.survey(InterfaceKind::LinkedIn).unwrap();
        let n1 = s1.entries.len();
        // Second call must be the cached instance (same address).
        let s2 = ctx.survey(InterfaceKind::LinkedIn).unwrap();
        assert!(std::ptr::eq(s1, s2));
        assert_eq!(n1, s2.entries.len());
    }

    #[test]
    fn interface_order_matches_paper() {
        assert_eq!(INTERFACE_ORDER[0].label(), "FB-restricted");
        assert_eq!(INTERFACE_ORDER[1].label(), "Facebook");
        assert_eq!(INTERFACE_ORDER[2].label(), "Google");
        assert_eq!(INTERFACE_ORDER[3].label(), "LinkedIn");
    }
}
