//! Figure 5: recall distributions of skewed targetings.
//!
//! For each sensitive class the paper plots the recall (count of the
//! class reached) of: all individual targetings (reference), the skewed
//! individual targetings, and the skewed Top/Bottom 2-way compositions —
//! where "skewed" means outside the four-fifths band in the studied
//! direction. For Bottom sets (which *exclude* the class) recall is the
//! complement count, per the paper's definition of recall for excluding
//! targetings. The total size of the sensitive population is reported for
//! reference.

use adcomp_platform::InterfaceKind;

use crate::discovery::{rank_individuals, top_compositions, Direction, MeasuredTargeting};
use crate::metrics::{four_fifths_band, SkewBand};
use crate::source::{SensitiveClass, SourceError};
use crate::stats::BoxStats;

use super::ExperimentContext;

/// Which recall set a row describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecallSet {
    /// Every individual targeting (reference distribution).
    AllIndividual,
    /// Individual targetings skewed toward the class (ratio > 1.25).
    SkewedIndividual,
    /// Top 2-way compositions skewed toward the class.
    TopPairs,
    /// Bottom 2-way compositions skewed against the class (recall of the
    /// complement population).
    BottomPairs,
}

impl std::fmt::Display for RecallSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecallSet::AllIndividual => "Individual (all)",
            RecallSet::SkewedIndividual => "Individual (skewed)",
            RecallSet::TopPairs => "Top 2-way",
            RecallSet::BottomPairs => "Bottom 2-way",
        })
    }
}

/// One recall distribution.
#[derive(Clone, Debug)]
pub struct RecallRow {
    /// Interface label.
    pub target: String,
    /// The set of targetings.
    pub set: RecallSet,
    /// The sensitive class whose recall is measured.
    pub class: SensitiveClass,
    /// Whether recall counts the class itself (`true`) or its complement
    /// (`false`, for excluding targetings).
    pub including: bool,
    /// The recalls (one per targeting).
    pub recalls: Vec<u64>,
    /// Box-plot summary of the recalls.
    pub stats: BoxStats,
    /// Total size of the sensitive population on the platform.
    pub population: u64,
}

impl RecallRow {
    fn build(
        target: String,
        set: RecallSet,
        class: SensitiveClass,
        including: bool,
        recalls: Vec<u64>,
        population: u64,
    ) -> Option<RecallRow> {
        let as_f: Vec<f64> = recalls.iter().map(|&r| r as f64).collect();
        let stats = BoxStats::from_samples(&as_f)?;
        Some(RecallRow {
            target,
            set,
            class,
            including,
            recalls,
            stats,
            population,
        })
    }

    /// Median recall with the percentage of the population (the numbers
    /// §4.3 quotes, e.g. "570K (0.47%)").
    pub fn median_summary(&self) -> String {
        super::fmt_recall(self.stats.median.round() as u64, self.population)
    }

    /// TSV row.
    pub fn tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            self.target,
            self.set,
            self.class,
            if self.including { "include" } else { "exclude" },
            self.population,
            self.stats.tsv()
        )
    }

    /// TSV header.
    pub fn tsv_header() -> String {
        format!(
            "interface\tset\tclass\tmode\tpopulation\t{}",
            BoxStats::tsv_header()
        )
    }
}

fn recalls_including(set: &[&MeasuredTargeting], class: SensitiveClass) -> Vec<u64> {
    set.iter()
        .map(|t| t.measurement.class_count(class))
        .collect()
}

fn recalls_excluding(set: &[&MeasuredTargeting], class: SensitiveClass) -> Vec<u64> {
    set.iter()
        .map(|t| t.measurement.complement_count(class))
        .collect()
}

/// Recall rows for one interface and class.
pub fn recall_for(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
    class: SensitiveClass,
) -> Result<Vec<RecallRow>, SourceError> {
    let target = ctx.target(kind);
    let survey = ctx.survey(kind)?;
    let cfg = ctx.config.discovery;
    let label = target.label();
    let population = survey.base.class_count(class);
    let mut rows = Vec::new();

    let eligible: Vec<&MeasuredTargeting> = survey
        .entries
        .iter()
        .filter(|e| e.measurement.total >= cfg.min_reach)
        .collect();
    rows.extend(RecallRow::build(
        label.clone(),
        RecallSet::AllIndividual,
        class,
        true,
        recalls_including(&eligible, class),
        population,
    ));

    let skewed: Vec<&MeasuredTargeting> = eligible
        .iter()
        .copied()
        .filter(|e| {
            e.ratio(&survey.base, class)
                .is_some_and(|r| four_fifths_band(r) == SkewBand::Over)
        })
        .collect();
    rows.extend(RecallRow::build(
        label.clone(),
        RecallSet::SkewedIndividual,
        class,
        true,
        recalls_including(&skewed, class),
        population,
    ));

    // Top pairs skewed toward the class.
    let ranked = rank_individuals(survey, class, Direction::Toward, cfg.min_reach);
    let top = top_compositions(&target, survey, &ranked, &cfg)?;
    let top_skewed: Vec<&MeasuredTargeting> = top
        .iter()
        .filter(|t| {
            t.ratio(&survey.base, class)
                .is_some_and(|r| four_fifths_band(r) == SkewBand::Over)
        })
        .collect();
    rows.extend(RecallRow::build(
        label.clone(),
        RecallSet::TopPairs,
        class,
        true,
        recalls_including(&top_skewed, class),
        population,
    ));

    // Bottom pairs skewed against the class: recall of the complement.
    let ranked = rank_individuals(survey, class, Direction::Against, cfg.min_reach);
    let bottom = top_compositions(&target, survey, &ranked, &cfg)?;
    let bottom_skewed: Vec<&MeasuredTargeting> = bottom
        .iter()
        .filter(|t| {
            t.ratio(&survey.base, class)
                .is_some_and(|r| four_fifths_band(r) == SkewBand::Under)
        })
        .collect();
    let complement_population = survey.base.complement_count(class);
    rows.extend(RecallRow::build(
        label,
        RecallSet::BottomPairs,
        class,
        false,
        recalls_excluding(&bottom_skewed, class),
        complement_population,
    ));

    Ok(rows)
}

/// Figure 5: every interface × every class.
pub fn figure5(ctx: &ExperimentContext) -> Result<Vec<RecallRow>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:figure5");
    let mut rows = Vec::new();
    for kind in super::INTERFACE_ORDER {
        for class in SensitiveClass::ALL {
            rows.extend(recall_for(ctx, kind, class)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentConfig, ExperimentContext};
    use adcomp_population::Gender;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(61)))
    }

    const FEMALE: SensitiveClass = SensitiveClass::Gender(Gender::Female);

    #[test]
    fn pairs_have_lower_median_recall_than_individuals() {
        // §4.3: "targeting compositions tend to achieve lower recalls than
        // individual targeting options".
        let rows = recall_for(ctx(), InterfaceKind::FacebookNormal, FEMALE).unwrap();
        let median = |set: RecallSet| rows.iter().find(|r| r.set == set).map(|r| r.stats.median);
        let all = median(RecallSet::AllIndividual).unwrap();
        if let Some(top) = median(RecallSet::TopPairs) {
            assert!(top < all, "top pairs {top} vs individuals {all}");
        }
    }

    #[test]
    fn recalls_are_niche_fractions_of_population() {
        // Median recall is a small percentage of the sensitive population.
        let rows = recall_for(ctx(), InterfaceKind::FacebookNormal, FEMALE).unwrap();
        let top = rows.iter().find(|r| r.set == RecallSet::TopPairs);
        if let Some(top) = top {
            assert!(top.population > 0);
            let frac = top.stats.median / top.population as f64;
            assert!(frac < 0.5, "recall fraction {frac} should be niche");
            assert!(top.median_summary().contains('%'));
        }
    }

    #[test]
    fn bottom_rows_use_complement_population() {
        let rows = recall_for(ctx(), InterfaceKind::LinkedIn, FEMALE).unwrap();
        let all = rows
            .iter()
            .find(|r| r.set == RecallSet::AllIndividual)
            .unwrap();
        if let Some(bottom) = rows.iter().find(|r| r.set == RecallSet::BottomPairs) {
            assert!(!bottom.including);
            // Complement population differs from the class population in a
            // gender-skewed universe.
            assert_ne!(bottom.population, all.population);
        }
    }

    #[test]
    fn tsv_shape() {
        let rows = recall_for(ctx(), InterfaceKind::LinkedIn, FEMALE).unwrap();
        let cols = RecallRow::tsv_header().split('\t').count();
        for r in &rows {
            assert_eq!(r.tsv().split('\t').count(), cols);
        }
    }
}
