//! Figures 3 and 6: the removal sweep across interfaces.

use adcomp_population::{AgeBucket, Gender};

use crate::discovery::Direction;
use crate::removal::{removal_sweep, RemovalSweep};
use crate::source::{SensitiveClass, SourceError};

use super::ExperimentContext;

/// Paper parameters: steps of 2 percentile up to 10.
pub const STEP_PERCENTILE: f64 = 2.0;
/// Upper end of the sweep.
pub const MAX_PERCENTILE: f64 = 10.0;

/// Runs the sweep for one class and direction on every interface.
pub fn sweep_all_interfaces(
    ctx: &ExperimentContext,
    class: SensitiveClass,
    direction: Direction,
) -> Result<Vec<RemovalSweep>, SourceError> {
    let mut sweeps = Vec::new();
    for kind in super::INTERFACE_ORDER {
        let target = ctx.target(kind);
        let survey = ctx.survey(kind)?;
        sweeps.push(removal_sweep(
            &target,
            survey,
            class,
            direction,
            &ctx.config.discovery,
            STEP_PERCENTILE,
            MAX_PERCENTILE,
        )?);
    }
    Ok(sweeps)
}

/// Figure 3: Top and Bottom 2-way sweeps for males.
pub fn figure3(ctx: &ExperimentContext) -> Result<Vec<RemovalSweep>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:figure3");
    let male = SensitiveClass::Gender(Gender::Male);
    let mut out = sweep_all_interfaces(ctx, male, Direction::Toward)?;
    out.extend(sweep_all_interfaces(ctx, male, Direction::Against)?);
    Ok(out)
}

/// Figure 6 (appendix): Top 2-way sweeps for the four age ranges plus the
/// Bottom sweep for 55+ (the panels the paper shows).
pub fn figure6(ctx: &ExperimentContext) -> Result<Vec<RemovalSweep>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:figure6");
    let mut out = Vec::new();
    for age in AgeBucket::ALL {
        out.extend(sweep_all_interfaces(
            ctx,
            SensitiveClass::Age(age),
            Direction::Toward,
        )?);
    }
    out.extend(sweep_all_interfaces(
        ctx,
        SensitiveClass::Age(AgeBucket::A55Plus),
        Direction::Against,
    )?);
    Ok(out)
}

/// TSV rendering of sweeps (one row per point).
pub fn sweeps_tsv(sweeps: &[RemovalSweep]) -> String {
    let mut out = String::from(
        "interface\tclass\tdirection\tremoved_pct\tremoved_count\ttail_ratio\textreme_ratio\tn\n",
    );
    for s in sweeps {
        for p in &s.points {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{:.4}\t{:.4}\t{}\n",
                s.target,
                s.class,
                s.direction.label(),
                p.removed_percentile,
                p.removed_count,
                p.tail_ratio,
                p.extreme_ratio,
                p.compositions
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentConfig, ExperimentContext};
    use adcomp_platform::InterfaceKind;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(62)))
    }

    #[test]
    fn single_interface_sweep_still_violates_after_removal() {
        // The paper's key conclusion: removing the top decile of skewed
        // individuals leaves compositions outside the four-fifths band.
        let male = SensitiveClass::Gender(Gender::Male);
        let target = ctx().target(InterfaceKind::FacebookRestricted);
        let survey = ctx().survey(InterfaceKind::FacebookRestricted).unwrap();
        let sweep = removal_sweep(
            &target,
            survey,
            male,
            Direction::Toward,
            &ctx().config.discovery,
            5.0,
            10.0,
        )
        .unwrap();
        assert!(
            sweep.still_violating_after_removal(),
            "sweep: {:?}",
            sweep.points
        );
    }

    #[test]
    fn tsv_has_row_per_point() {
        let male = SensitiveClass::Gender(Gender::Male);
        let target = ctx().target(InterfaceKind::LinkedIn);
        let survey = ctx().survey(InterfaceKind::LinkedIn).unwrap();
        let sweep = removal_sweep(
            &target,
            survey,
            male,
            Direction::Toward,
            &ctx().config.discovery,
            5.0,
            10.0,
        )
        .unwrap();
        let tsv = sweeps_tsv(std::slice::from_ref(&sweep));
        assert_eq!(tsv.lines().count(), 1 + sweep.points.len());
    }
}
