//! Markdown report generation: one self-contained document summarising a
//! full reproduction run (the `all` binary writes it to
//! `results/report.md`).

use crate::experiments::distributions::DistributionRow;
use crate::experiments::examples::ExampleRow;
use crate::experiments::lookalike_exp::LookalikeRow;
use crate::experiments::methodology::MethodologyRow;
use crate::experiments::recall_exp::RecallRow;
use crate::experiments::table1::Table1Cell;
use crate::removal::RemovalSweep;

/// Accumulates sections and renders the final document.
#[derive(Default)]
pub struct ReportBuilder {
    sections: Vec<String>,
}

impl ReportBuilder {
    /// An empty report.
    pub fn new() -> Self {
        ReportBuilder::default()
    }

    /// Adds the figure-style ratio distributions as a table.
    pub fn distributions(&mut self, title: &str, rows: &[DistributionRow]) -> &mut Self {
        let mut s = format!("## {title}\n\n");
        s.push_str("| interface | set | class | n | p10 | median | p90 | % outside 4/5 band |\n");
        s.push_str("|---|---|---|---|---|---|---|---|\n");
        for r in rows {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.0}% |\n",
                r.target,
                r.set,
                r.class,
                r.stats.n,
                r.stats.p10,
                r.stats.median,
                r.stats.p90,
                r.violating * 100.0
            ));
        }
        self.sections.push(s);
        self
    }

    /// Adds recall rows.
    pub fn recalls(&mut self, title: &str, rows: &[RecallRow]) -> &mut Self {
        let mut s = format!("## {title}\n\n");
        s.push_str("| interface | set | class | mode | median recall | population |\n");
        s.push_str("|---|---|---|---|---|---|\n");
        for r in rows {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.target,
                r.set,
                r.class,
                if r.including { "include" } else { "exclude" },
                r.median_summary(),
                crate::experiments::fmt_count(r.population)
            ));
        }
        self.sections.push(s);
        self
    }

    /// Adds removal sweeps (first and last point per sweep).
    pub fn removal(&mut self, title: &str, sweeps: &[RemovalSweep]) -> &mut Self {
        let mut s = format!("## {title}\n\n");
        s.push_str("| interface | class | direction | tail@0% | tail@max | still violating |\n");
        s.push_str("|---|---|---|---|---|---|\n");
        for sweep in sweeps {
            let (Some(first), Some(last)) = (sweep.points.first(), sweep.points.last()) else {
                continue;
            };
            s.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.3} | {} |\n",
                sweep.target,
                sweep.class,
                sweep.direction.label(),
                first.tail_ratio,
                last.tail_ratio,
                sweep.still_violating_after_removal()
            ));
        }
        self.sections.push(s);
        self
    }

    /// Adds Table-1 cells.
    pub fn table1(&mut self, title: &str, cells: &[Table1Cell]) -> &mut Self {
        let mut s = format!("## {title}\n\n");
        s.push_str("| favoured | interface | median overlap | top-1 | top-10 |\n");
        s.push_str("|---|---|---|---|---|\n");
        for c in cells {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                c.favoured,
                c.target,
                c.median_overlap
                    .map_or("-".into(), |v| format!("{:.2}%", v * 100.0)),
                c.top1_summary(),
                c.top10_summary()
            ));
        }
        self.sections.push(s);
        self
    }

    /// Adds the illustrative composition examples.
    pub fn examples(&mut self, title: &str, rows: &[ExampleRow]) -> &mut Self {
        let mut s = format!("## {title}\n\n");
        s.push_str("| interface | class | T1 | T2 | r1 | r2 | combined |\n");
        s.push_str("|---|---|---|---|---|---|---|\n");
        for r in rows {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {:.2} | {:.2} | **{:.2}** |\n",
                r.target, r.class, r.name1, r.name2, r.ratio1, r.ratio2, r.combined
            ));
        }
        self.sections.push(s);
        self
    }

    /// Adds the lookalike/Special-Ad-Audience rows.
    pub fn lookalike(&mut self, title: &str, rows: &[LookalikeRow]) -> &mut Self {
        let mut s = format!("## {title}\n\n");
        s.push_str("| interface | seed | seed ratio | lookalike | SAA |\n");
        s.push_str("|---|---|---|---|---|\n");
        for r in rows {
            s.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {:.2} |\n",
                r.target, r.seed_name, r.seed_ratio, r.lookalike_ratio, r.saa_ratio
            ));
        }
        self.sections.push(s);
        self
    }

    /// Adds the methodology probe summaries.
    pub fn methodology(&mut self, title: &str, rows: &[MethodologyRow]) -> &mut Self {
        let mut s = format!("## {title}\n\n");
        for r in rows {
            s.push_str(&format!("- {}\n", r.summary()));
        }
        self.sections.push(s);
        self
    }

    /// Renders the full document.
    pub fn render(&self, run_label: &str) -> String {
        let mut out = format!(
            "# Reproduction run — {run_label}\n\n\
             Generated by `adcomp-bench` from rounded platform estimates only.\n\n"
        );
        for s in &self.sections {
            out.push_str(s);
            out.push('\n');
        }
        out
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections were added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::distributions::distributions_for;
    use crate::experiments::methodology::{methodology, ProbeConfig};
    use crate::experiments::{ExperimentConfig, ExperimentContext};
    use crate::source::SensitiveClass;
    use adcomp_platform::InterfaceKind;
    use adcomp_population::Gender;

    #[test]
    fn report_contains_all_sections_and_valid_tables() {
        let ctx = ExperimentContext::new(ExperimentConfig::test(66));
        let male = SensitiveClass::Gender(Gender::Male);
        let rows = distributions_for(&ctx, InterfaceKind::LinkedIn, &[male], &[2]).unwrap();
        let probes = methodology(&ctx, &ProbeConfig::test()).unwrap();

        let mut b = ReportBuilder::new();
        assert!(b.is_empty());
        b.distributions("Figure 2 (LinkedIn slice)", &rows);
        b.methodology("Methodology", &probes);
        assert_eq!(b.len(), 2);

        let doc = b.render("unit test");
        assert!(doc.starts_with("# Reproduction run — unit test"));
        assert!(doc.contains("## Figure 2 (LinkedIn slice)"));
        assert!(doc.contains("## Methodology"));
        assert!(doc.contains("LinkedIn"));
        // Markdown table rows have a constant column count.
        let header_cols =
            "| interface | set | class | n | p10 | median | p90 | % outside 4/5 band |"
                .matches('|')
                .count();
        for line in doc.lines().filter(|l| l.starts_with("| LinkedIn")) {
            assert_eq!(line.matches('|').count(), header_cols, "{line}");
        }
    }
}
