//! Table 1: increasing recall by combining multiple skewed compositions.
//!
//! For each favoured population (male, female, not 18-24, not 55+) and
//! each of the three interfaces that support boolean AND-of-OR statistics
//! (FB-restricted, Facebook, LinkedIn — Google does not expose sizes for
//! such combinations, footnote 11):
//!
//! * the median pairwise overlap between the audiences of the top 100
//!   most skewed compositions toward that population;
//! * the recall of the single most skewed composition (Top-1);
//! * the inclusion–exclusion estimate of the union recall of the top 10.

use adcomp_platform::InterfaceKind;
use adcomp_population::{AgeBucket, Gender};
use adcomp_targeting::TargetingSpec;

use crate::discovery::{rank_individuals, top_compositions, Direction};
use crate::source::{AuditTarget, Selector, SensitiveClass, SourceError};
use crate::union_estimate::{median_pairwise_overlap, union_recall};

use super::ExperimentContext;

/// The favoured populations of Table 1, in the paper's row order.
pub fn favoured_populations() -> [Selector; 4] {
    [
        Selector::Class(SensitiveClass::Gender(Gender::Male)),
        Selector::Class(SensitiveClass::Gender(Gender::Female)),
        Selector::Complement(SensitiveClass::Age(AgeBucket::A18_24)),
        Selector::Complement(SensitiveClass::Age(AgeBucket::A55Plus)),
    ]
}

/// The interfaces Table 1 covers (Google excluded; see module docs).
pub const TABLE1_INTERFACES: [InterfaceKind; 3] = [
    InterfaceKind::FacebookRestricted,
    InterfaceKind::FacebookNormal,
    InterfaceKind::LinkedIn,
];

/// One cell group of Table 1 (one favoured population on one interface).
#[derive(Clone, Debug)]
pub struct Table1Cell {
    /// Interface label.
    pub target: String,
    /// Favoured population.
    pub favoured: Selector,
    /// Median pairwise overlap among the top-100 skewed compositions
    /// (fraction of the smaller audience; `None` when undefined).
    pub median_overlap: Option<f64>,
    /// Recall of the most skewed composition.
    pub top1_recall: u64,
    /// Union recall of the top 10 compositions (inclusion–exclusion).
    pub top10_recall: u64,
    /// Size of the favoured population on the platform.
    pub population: u64,
    /// Queries spent on the inclusion–exclusion estimate.
    pub union_queries: u64,
}

impl Table1Cell {
    /// Paper-style rendering of the Top-1 column ("1,100K (0.9%)").
    pub fn top1_summary(&self) -> String {
        super::fmt_recall(self.top1_recall, self.population)
    }

    /// Paper-style rendering of the Top-10 column.
    pub fn top10_summary(&self) -> String {
        super::fmt_recall(self.top10_recall, self.population)
    }
}

/// How a favoured population maps onto a discovery problem: compositions
/// skewed toward `Male` are `Toward` male; compositions favouring
/// `not 18-24` are those skewed `Against` 18-24.
fn discovery_problem(favoured: Selector) -> (SensitiveClass, Direction) {
    match favoured {
        Selector::Class(c) => (c, Direction::Toward),
        Selector::Complement(c) => (c, Direction::Against),
    }
}

/// Computes one cell.
pub fn table1_cell(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
    favoured: Selector,
) -> Result<Table1Cell, SourceError> {
    let target: AuditTarget = ctx.target(kind);
    let survey = ctx.survey(kind)?;
    let cfg = ctx.config.discovery;
    let (class, direction) = discovery_problem(favoured);

    let ranked = rank_individuals(survey, class, direction, cfg.min_reach);
    let mut compositions = top_compositions(&target, survey, &ranked, &cfg)?;
    // Order by skew (most favoured first).
    compositions.sort_by(|a, b| {
        let ra = a.ratio(&survey.base, class).unwrap_or(1.0);
        let rb = b.ratio(&survey.base, class).unwrap_or(1.0);
        match direction {
            Direction::Toward => rb.partial_cmp(&ra).expect("finite"),
            Direction::Against => ra.partial_cmp(&rb).expect("finite"),
        }
    });
    let specs: Vec<TargetingSpec> = compositions.iter().map(|c| c.spec.clone()).collect();

    let median_overlap = median_pairwise_overlap(
        &target,
        &specs,
        favoured,
        // Top 100 (paper); at test scale fewer exist, and the pair count
        // grows quadratically, so cap harder there.
        100.min(specs.len())
            .min(if cfg.top_k < 1000 { 20 } else { 100 }),
    )?;

    let population = target.selector_estimate(&TargetingSpec::everyone(), favoured)?;
    let top1_recall = if specs.is_empty() {
        0
    } else {
        target.selector_estimate(&specs[0], favoured)?
    };
    let (top10_recall, union_queries) = if specs.is_empty() {
        (0, 0)
    } else {
        let top10 = &specs[..specs.len().min(10)];
        let est = union_recall(&target, top10, favoured, top10.len())?;
        (est.recall, est.queries)
    };

    Ok(Table1Cell {
        target: target.label(),
        favoured,
        median_overlap,
        top1_recall,
        top10_recall,
        population,
        union_queries,
    })
}

/// The full table: every favoured population × every supported interface.
pub fn table1(ctx: &ExperimentContext) -> Result<Vec<Table1Cell>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span("experiment:table1");
    let mut cells = Vec::new();
    for favoured in favoured_populations() {
        for kind in TABLE1_INTERFACES {
            cells.push(table1_cell(ctx, kind, favoured)?);
        }
    }
    Ok(cells)
}

/// TSV rendering.
pub fn table1_tsv(cells: &[Table1Cell]) -> String {
    let mut out = String::from(
        "favoured\tinterface\tmedian_overlap\ttop1_recall\ttop10_recall\tpopulation\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            c.favoured,
            c.target,
            c.median_overlap
                .map_or("-".to_string(), |v| format!("{:.2}%", v * 100.0)),
            c.top1_recall,
            c.top10_recall,
            c.population
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentConfig, ExperimentContext};
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::new(ExperimentConfig::test(63)))
    }

    #[test]
    fn top10_union_exceeds_top1() {
        // The paper's point: combining compositions raises recall
        // substantially because overlaps are low.
        let favoured = Selector::Class(SensitiveClass::Gender(Gender::Female));
        let cell = table1_cell(ctx(), InterfaceKind::FacebookNormal, favoured).unwrap();
        assert!(cell.top1_recall > 0);
        assert!(
            cell.top10_recall > cell.top1_recall,
            "top10 {} must exceed top1 {}",
            cell.top10_recall,
            cell.top1_recall
        );
        assert!(cell.top10_recall <= cell.population * 2, "sane magnitude");
        assert!(
            cell.union_queries > 10,
            "inclusion–exclusion needs intersections"
        );
    }

    #[test]
    fn overlaps_are_low() {
        let favoured = Selector::Class(SensitiveClass::Gender(Gender::Male));
        let cell = table1_cell(ctx(), InterfaceKind::LinkedIn, favoured).unwrap();
        if let Some(overlap) = cell.median_overlap {
            assert!(overlap < 0.6, "median overlap {overlap} should be low");
        }
    }

    #[test]
    fn complement_population_rows_work() {
        let favoured = Selector::Complement(SensitiveClass::Age(AgeBucket::A18_24));
        let cell = table1_cell(ctx(), InterfaceKind::FacebookNormal, favoured).unwrap();
        // "not 18-24" is the majority of the platform.
        assert!(cell.population > 0);
        let young = ctx()
            .survey(InterfaceKind::FacebookNormal)
            .unwrap()
            .base
            .class_count(SensitiveClass::Age(AgeBucket::A18_24));
        assert!(cell.population > young, "complement should outnumber 18-24");
        assert!(cell.top1_summary().contains('%'));
    }

    #[test]
    fn tsv_covers_all_cells() {
        let favoured = Selector::Class(SensitiveClass::Gender(Gender::Male));
        let cells = vec![table1_cell(ctx(), InterfaceKind::LinkedIn, favoured).unwrap()];
        let tsv = table1_tsv(&cells);
        assert_eq!(tsv.lines().count(), 2);
        assert!(tsv.contains("LinkedIn"));
    }
}
