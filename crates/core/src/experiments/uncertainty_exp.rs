//! Uncertainty-aware audits: the paper's tables re-run as an auditor
//! who does *not* hold ground-truth demographics would have to run them.
//!
//! The paper's audits (and this repo's other experiment drivers) treat
//! the platform's demographic breakdowns as exact. Real external audits
//! never have that: demographics are *inferred* (names, photos, voter
//! files) with known error rates, panels have holes that are usually
//! missing-not-at-random, and the platform's estimates are rounded. Each
//! of those turns a point representation ratio into a *set* of ratios
//! consistent with the observation. This driver measures the paper's
//! headline quantities across a family of observation scenarios —
//! oracle, inferred, inferred-with-MNAR-missingness — and reports every
//! ratio as a [`ConfidentRatio`]: a point, an interval folding all three
//! slack sources, and a four-valued verdict whose fourth value,
//! [`RatioVerdict::Indeterminate`], replaces the silent wrong answer a
//! point audit would give.
//!
//! The interval has two parts, hulled together:
//!
//! * **systematic** — interval arithmetic through Equation 1: the
//!   rounding ladder's inverse image ([`RoundingRule::inverse_interval`])
//!   on every count, the unclassified (panel-missing) mass added to the
//!   *upper* endpoint of each cell (the partial-identification "all the
//!   holes could be here" direction), and the Rogan–Gladen
//!   misclassification correction ([`deconvolve_share`]) intervalised
//!   over the per-group confusion rates;
//! * **stochastic** — a seeded, counter-driven bootstrap
//!   ([`resample_counts`]): replicate `r` is a pure function of
//!   `(seed, r)`, so the fan-out is byte-identical whether the
//!   replicates run serially, across a [`QueryEngine`] worker pool, or
//!   in a recorded-then-resumed audit.
//!
//! The replicates are dispatched as a batch through the existing
//! [`QueryEngine`] machinery (a [`ReplicateSource`] is an
//! [`EstimateSource`] whose "estimates" are ratio bit-patterns), so the
//! bootstrap reuses the audit's scheduling, pooling, and
//! submission-order result discipline instead of growing a second
//! thread pool. Replicate evaluation is derived data — it issues no
//! platform queries, so recorded runs replay with zero re-issued
//! queries.
//!
//! [`RoundingRule::inverse_interval`]: adcomp_platform::RoundingRule::inverse_interval

use std::sync::Arc;

use adcomp_delivery::{deliver, DeliveryConfig, DeliverySetup};
use adcomp_infer::{
    deconvolve_share, percentile_interval, rep_ratio_interval, resample_counts, splitmix64,
    ConfidentRatio, CountRange, Interval, RatioVerdict,
};
use adcomp_platform::{AdPlatform, InterfaceKind, RoundingRule, SimScale};
use adcomp_population::{AttributeInference, Gender};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};

use crate::discovery::{rank_individuals, top_compositions, Direction, MeasuredTargeting};
use crate::engine::QueryEngine;
use crate::metrics::{four_fifths_band, measure_spec_batch, rep_ratio, SkewBand, SpecMeasurement};
use crate::mitigation::{PreflightConfig, PreflightGate, PreflightVerdict};
use crate::source::{AuditTarget, EstimateSource, SensitiveClass, SourceError};

use super::delivery_exp::{interface_salt, paired_campaigns, PairedAdConfig};
use super::{ExperimentConfig, ExperimentContext};

/// The interfaces the uncertainty table covers: the paper's main
/// Facebook surface and the most coarsely rounded one (LinkedIn), where
/// the rounding component of the interval does the most work.
pub const UNCERTAINTY_INTERFACES: [InterfaceKind; 2] =
    [InterfaceKind::FacebookNormal, InterfaceKind::LinkedIn];

/// One observation scenario: a name for the tables and the inference
/// model the auditor sees the population through (`None` = oracle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario label ("oracle", "inferred", "missing").
    pub name: &'static str,
    /// The observation channel; `None` is ground truth.
    pub inference: Option<AttributeInference>,
}

/// Salt separating the scenario family's inference seeds from the
/// simulation seed they are derived from.
const SCENARIO_SALT: u64 = 0x1A7E5;

/// The scenario family every uncertainty experiment runs over:
///
/// 1. **oracle** — ground-truth demographics, complete panel; only
///    rounding and resampling noise remain, and verdicts must reduce to
///    the point verdicts;
/// 2. **inferred** — a symmetric-error classifier (8% gender flips, 12%
///    age swaps), complete panel;
/// 3. **missing** — the same classifier over a panel with 25% baseline
///    missingness, missing-not-at-random along latent dimension 3.
pub fn scenario_family(seed: u64) -> [Scenario; 3] {
    let noisy = AttributeInference::noisy(seed ^ SCENARIO_SALT, 0.08, 0.12);
    [
        Scenario {
            name: "oracle",
            inference: None,
        },
        Scenario {
            name: "inferred",
            inference: Some(noisy),
        },
        Scenario {
            name: "missing",
            inference: Some(noisy.with_missingness(0.25, 3, 0.8)),
        },
    ]
}

/// Bootstrap sizing for the uncertainty table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintyConfig {
    /// Bootstrap replicates per cell.
    pub replicates: u32,
    /// Two-sided coverage of every reported interval.
    pub confidence: f64,
}

impl UncertaintyConfig {
    /// Per-scale defaults: enough replicates for a stable 95% percentile
    /// interval at paper scale, fewer (but still > 1/α) in tests.
    pub fn for_scale(scale: SimScale) -> UncertaintyConfig {
        UncertaintyConfig {
            replicates: match scale {
                SimScale::Paper => 200,
                SimScale::Test => 48,
            },
            confidence: 0.95,
        }
    }
}

/// Which audit stage a cell reports on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// A discovered skewed composition (Table-1-style).
    Targeting,
    /// A delivered audience (delivery-skew audit).
    Delivery,
    /// The outcome-based mitigation gate's evidence.
    Preflight,
}

impl Stage {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Targeting => "targeting",
            Stage::Delivery => "delivery",
            Stage::Preflight => "preflight",
        }
    }
}

/// The misclassification channel of one sensitive class under one
/// inference model, collapsed to class-vs-rest: the sensitivity and
/// specificity intervals the Rogan–Gladen correction needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassChannel {
    /// `P(labelled s | truly s)`.
    pub sensitivity: Interval,
    /// `P(labelled ¬s | truly ¬s)`.
    pub specificity: Interval,
}

impl ClassChannel {
    /// A perfect classifier: observations need no correction.
    pub fn identity() -> ClassChannel {
        ClassChannel {
            sensitivity: Interval::point(1.0),
            specificity: Interval::point(1.0),
        }
    }

    /// The channel `class` is observed through under `inference`.
    ///
    /// Gender collapses exactly (two groups, so specificity is the other
    /// row's diagonal). An age bucket's false-positive rate depends on
    /// the unknown composition of "rest", so its specificity is the
    /// *range* over the other true buckets — an interval, which the
    /// correction propagates instead of guessing a mixture.
    pub fn for_class(
        inference: Option<&AttributeInference>,
        class: SensitiveClass,
    ) -> ClassChannel {
        let Some(model) = inference else {
            return ClassChannel::identity();
        };
        if model.is_oracle() {
            return ClassChannel::identity();
        }
        match class {
            SensitiveClass::Gender(g) => ClassChannel {
                sensitivity: Interval::point(model.gender_sensitivity(g)),
                specificity: Interval::point(model.gender_sensitivity(g.other())),
            },
            SensitiveClass::Age(a) => {
                let (fp_lo, fp_hi) = model.age_false_positive_range(a);
                ClassChannel {
                    sensitivity: Interval::point(model.age_confusion[a.index()][a.index()]),
                    specificity: Interval::new(1.0 - fp_hi, 1.0 - fp_lo),
                }
            }
        }
    }

    /// Whether the channel is the identity (no correction applied).
    pub fn is_identity(&self) -> bool {
        self.sensitivity == Interval::point(1.0) && self.specificity == Interval::point(1.0)
    }

    /// Interval Rogan–Gladen correction of an observed-share interval.
    fn deconvolve(&self, observed: Interval) -> Option<Interval> {
        if self.is_identity() {
            return Some(observed);
        }
        deconvolve_share(observed, self.sensitivity, self.specificity)
    }

    /// Point Rogan–Gladen correction at the channel's midpoint rates
    /// (what each bootstrap replicate applies).
    fn deconvolve_point(&self, observed: f64) -> Option<f64> {
        if self.is_identity() {
            return Some(observed);
        }
        let sens = (self.sensitivity.lo + self.sensitivity.hi) / 2.0;
        let spec = (self.specificity.lo + self.specificity.hi) / 2.0;
        let denom = sens + spec - 1.0;
        if denom <= 0.0 {
            return None;
        }
        Some(((observed - (1.0 - spec)) / denom).clamp(0.0, 1.0))
    }
}

/// One side of Equation 1 as the auditor observed it: the class and
/// complement counts, the mass the observation could not classify
/// (panel-missing users reached by the targeting), and the rounding
/// ladder the counts came through (`Exact` for delivery tallies).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredPair {
    /// `|TA ∧ RAₛ|` as observed.
    pub class_count: u64,
    /// `|TA ∧ RA₋ₛ|` as observed.
    pub complement_count: u64,
    /// Reached users with no demographic label; could belong to either
    /// cell, so it widens both upper endpoints.
    pub unclassified: u64,
    /// Rounding applied to the two counts before the auditor saw them.
    pub rounding: RoundingRule,
}

impl MeasuredPair {
    /// The pair of a measured targeting for `class`, through the
    /// interface's rounding ladder. The unclassified mass is the gap
    /// between the total estimate and the demographic cells — zero at
    /// the oracle up to rounding, the missing panel otherwise.
    pub fn of(m: &SpecMeasurement, class: SensitiveClass, rounding: RoundingRule) -> MeasuredPair {
        let class_count = m.class_count(class);
        let complement_count = m.complement_count(class);
        MeasuredPair {
            class_count,
            complement_count,
            unclassified: m.total.saturating_sub(class_count + complement_count),
            rounding,
        }
    }

    /// An exact (unrounded) pair — delivery tallies, resampled counts.
    pub fn exact(class_count: u64, complement_count: u64, unclassified: u64) -> MeasuredPair {
        MeasuredPair {
            class_count,
            complement_count,
            unclassified,
            rounding: RoundingRule::Exact,
        }
    }

    /// The count ranges consistent with the observation: each cell's
    /// rounding inverse image, widened upward by the unclassified mass.
    /// `None` when a count is outside the ladder's image.
    fn ranges(&self) -> Option<(CountRange, CountRange)> {
        let range = |v: u64| {
            self.rounding
                .inverse_interval(v)
                .map(|(lo, hi)| CountRange::new(lo, hi).widen_hi(self.unclassified))
        };
        Some((range(self.class_count)?, range(self.complement_count)?))
    }

    /// The observed class share, `None` when nothing was classified.
    fn share_point(&self) -> Option<f64> {
        let classified = self.class_count + self.complement_count;
        if classified == 0 {
            return None;
        }
        Some(self.class_count as f64 / classified as f64)
    }
}

/// The interval of observed class shares consistent with the two count
/// ranges (monotone: the share grows with `s` and shrinks with `not`).
fn share_interval(s: CountRange, not: CountRange) -> Option<Interval> {
    let hi_den = s.hi.checked_add(not.lo)?;
    if hi_den == 0 {
        return None;
    }
    let lo_den = s.lo + not.hi;
    let lo = if lo_den == 0 {
        0.0
    } else {
        s.lo as f64 / lo_den as f64
    };
    Some(Interval::new(lo, s.hi as f64 / hi_den as f64))
}

/// `p / (1 - p)` over an interval of shares. `None` when the share can
/// reach 1 — the odds are then unbounded and the ratio unidentified.
fn odds(share: Interval) -> Option<Interval> {
    if share.hi >= 1.0 {
        return None;
    }
    let lo = share.lo.max(0.0);
    Some(Interval::new(lo / (1.0 - lo), share.hi / (1.0 - share.hi)))
}

/// The corrected point ratio: Equation 1 on the observed counts when
/// the channel is the identity, otherwise the odds ratio of the
/// point-deconvolved shares (the same quantity — the representation
/// ratio *is* the odds ratio of the class shares).
fn point_ratio(target: &MeasuredPair, base: &MeasuredPair, channel: &ClassChannel) -> Option<f64> {
    if channel.is_identity() {
        return rep_ratio(
            target.class_count,
            target.complement_count,
            base.class_count,
            base.complement_count,
        );
    }
    let pt = channel.deconvolve_point(target.share_point()?)?;
    let pb = channel.deconvolve_point(base.share_point()?)?;
    if pt >= 1.0 || pb >= 1.0 || pb <= 0.0 {
        return None;
    }
    Some((pt / (1.0 - pt)) / (pb / (1.0 - pb)))
}

/// The systematic interval: every ratio consistent with the rounding
/// inverse images, the unclassified mass, and the misclassification
/// rates. `None` when the ratio is unidentified (a denominator can
/// vanish, the correction's denominator touches zero, or a share can
/// reach 1).
fn systematic_interval(
    target: &MeasuredPair,
    base: &MeasuredPair,
    channel: &ClassChannel,
) -> Option<Interval> {
    let (ts, tn) = target.ranges()?;
    let (bs, bn) = base.ranges()?;
    if channel.is_identity() {
        // Direct endpoint arithmetic on Equation 1 — identical to the
        // share→odds path below (a unit test pins the equivalence), but
        // without the detour through floating-point shares.
        return rep_ratio_interval(ts, tn, bs, bn);
    }
    let pt = channel.deconvolve(share_interval(ts, tn)?)?;
    let pb = channel.deconvolve(share_interval(bs, bn)?)?;
    odds(pt)?.div(odds(pb)?)
}

/// Stream salts decorrelating the target-side and base-side resamples
/// of one cell.
const TARGET_RESAMPLE_SALT: u64 = 0x7A47;
const BASE_RESAMPLE_SALT: u64 = 0xBA5E;

/// An [`EstimateSource`] whose catalog is a bootstrap fan-out: attribute
/// `r` is replicate `r`, and its "estimate" is the replicate's corrected
/// ratio as an IEEE-754 bit pattern (`NaN` for degenerate replicates).
/// Each replicate is a pure function of `(seed, r)` via
/// [`resample_counts`]'s counter streams, so dispatching the catalog
/// through a [`QueryEngine`] pool returns — in submission order — the
/// byte-identical sample vector a serial loop produces.
pub struct ReplicateSource {
    seed: u64,
    target: [u64; 2],
    base: [u64; 2],
    channel: ClassChannel,
    replicates: u32,
}

impl ReplicateSource {
    /// The corrected ratio of replicate `r`.
    fn ratio(&self, replicate: u64) -> f64 {
        let t = resample_counts(self.seed ^ TARGET_RESAMPLE_SALT, replicate, &self.target);
        let b = resample_counts(self.seed ^ BASE_RESAMPLE_SALT, replicate, &self.base);
        // Resampling covers sampling noise only; rounding and missing
        // mass are systematic and already in the interval's other leg.
        let tp = MeasuredPair::exact(t[0], t[1], 0);
        let bp = MeasuredPair::exact(b[0], b[1], 0);
        point_ratio(&tp, &bp, &self.channel).unwrap_or(f64::NAN)
    }
}

impl EstimateSource for ReplicateSource {
    fn label(&self) -> String {
        "bootstrap-replicates".to_string()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let replicate = spec
            .include
            .first()
            .and_then(|group| group.attributes.first())
            .map(|a| u64::from(a.0))
            .unwrap_or(0);
        Ok(self.ratio(replicate).to_bits())
    }

    fn check(&self, _spec: &TargetingSpec) -> Result<(), SourceError> {
        Ok(())
    }

    fn batch_window(&self) -> usize {
        // One replicate is a handful of binomial draws — microseconds,
        // not a platform round-trip. Hand workers big contiguous slabs
        // so engine dispatch is amortised across hundreds of replicates
        // (chunking never changes results: replicate `r` is a pure
        // function of `(seed, r)`).
        512
    }

    fn catalog_len(&self) -> u32 {
        self.replicates
    }

    fn attribute_name(&self, _id: AttributeId) -> Option<String> {
        None
    }

    fn attribute_feature(&self, _id: AttributeId) -> Option<FeatureId> {
        None
    }

    fn can_compose(&self, _a: AttributeId, _b: AttributeId) -> bool {
        false
    }

    fn supports_demographics(&self) -> bool {
        false
    }
}

/// The bootstrap sample vector of one cell: `replicates` corrected
/// ratios, degenerate replicates dropped. With an engine the replicates
/// run as one batch across its worker pool; without one they run
/// serially — the vectors are byte-identical either way.
pub fn bootstrap_ratios(
    seed: u64,
    target: &MeasuredPair,
    base: &MeasuredPair,
    channel: &ClassChannel,
    replicates: u32,
    engine: Option<&Arc<QueryEngine>>,
) -> Vec<f64> {
    let source = ReplicateSource {
        seed,
        target: [target.class_count, target.complement_count],
        base: [base.class_count, base.complement_count],
        channel: *channel,
        replicates,
    };
    let specs: Vec<TargetingSpec> = (0..replicates)
        .map(|r| TargetingSpec::and_of([AttributeId(r)]))
        .collect();
    let results = match engine {
        Some(engine) => engine.run_on(Arc::new(source), specs),
        None => source.estimate_batch(&specs),
    };
    results
        .into_iter()
        .map(|r| f64::from_bits(r.expect("replicate evaluation is infallible")))
        .filter(|v| v.is_finite())
        .collect()
}

/// The full uncertainty-aware ratio of one observed pair against its
/// base: corrected point, systematic interval hulled with the bootstrap
/// percentile interval, and identification status. Unidentified ratios
/// (`None` anywhere in the systematic pipeline) come back as
/// [`ConfidentRatio::unidentified`] — verdict [`RatioVerdict::Indeterminate`],
/// never a silent band.
pub fn confident_rep_ratio(
    target: &MeasuredPair,
    base: &MeasuredPair,
    channel: &ClassChannel,
    seed: u64,
    ucfg: &UncertaintyConfig,
    engine: Option<&Arc<QueryEngine>>,
) -> ConfidentRatio {
    let point = point_ratio(target, base, channel);
    let systematic = systematic_interval(target, base, channel);
    let (Some(point), Some(systematic)) = (point, systematic) else {
        // Report the raw observed ratio for context where it exists.
        let raw = rep_ratio(
            target.class_count,
            target.complement_count,
            base.class_count,
            base.complement_count,
        );
        return ConfidentRatio::unidentified(point.or(raw).unwrap_or(0.0), ucfg.confidence);
    };
    let samples = bootstrap_ratios(seed, target, base, channel, ucfg.replicates, engine);
    let stochastic = percentile_interval(&samples, ucfg.confidence, point);
    ConfidentRatio::new(point, systematic.hull(stochastic), ucfg.confidence)
}

/// One row of the uncertainty table.
#[derive(Clone, Debug)]
pub struct UncertaintyCell {
    /// Scenario label.
    pub scenario: &'static str,
    /// Audit stage.
    pub stage: Stage,
    /// Interface label.
    pub interface: String,
    /// The sensitive class audited.
    pub class: SensitiveClass,
    /// Which creative a delivery row audits (`"job"` for the loaded
    /// ad, `"baseline"` for the neutral one); `None` elsewhere.
    pub creative: Option<&'static str>,
    /// The uncertainty-aware ratio.
    pub ratio: ConfidentRatio,
    /// What a point-only audit would have concluded.
    pub point_band: SkewBand,
    /// The preflight gate's verdict (preflight rows only).
    pub gate: Option<String>,
}

impl UncertaintyCell {
    /// The interval verdict against the four-fifths band.
    pub fn verdict(&self) -> RatioVerdict {
        self.ratio.verdict()
    }
}

/// Per-cell bootstrap seed: a pure function of the experiment seed and
/// the cell's coordinates, so serial, pooled, and recorded-then-resumed
/// runs derive identical replicate streams.
fn cell_seed(seed: u64, scenario: &str, stage: Stage, interface: &str, unit: &str) -> u64 {
    let fold = |acc: u64, s: &str| {
        s.bytes()
            .fold(acc, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(b)))
    };
    splitmix64(fold(
        fold(fold(fold(seed, scenario), stage.label()), interface),
        unit,
    ))
}

fn interface_platform(ctx: &ExperimentContext, kind: InterfaceKind) -> &Arc<AdPlatform> {
    match kind {
        InterfaceKind::FacebookNormal => &ctx.simulation.facebook,
        InterfaceKind::FacebookRestricted => &ctx.simulation.facebook_restricted,
        InterfaceKind::GoogleDisplay => &ctx.simulation.google,
        InterfaceKind::LinkedIn => &ctx.simulation.linkedin,
    }
}

fn audit_target(
    ctx: &ExperimentContext,
    kind: InterfaceKind,
    engine: Option<&Arc<QueryEngine>>,
) -> AuditTarget {
    let target = ctx.target(kind);
    match engine {
        Some(engine) => target.with_engine(engine.clone()),
        None => target,
    }
}

/// The uncertainty cells of one scenario's context: per interface a
/// Table-1-style targeting row (the most female-skewed discovered
/// composition) and two delivery-skew rows (the loaded job ad and its
/// neutral baseline, each delivered audience re-classified through the
/// scenario's observation channel), plus one preflight-mitigation row
/// on Facebook.
pub fn uncertainty_cells(
    ctx: &ExperimentContext,
    scenario: &Scenario,
    ucfg: &UncertaintyConfig,
    engine: Option<&Arc<QueryEngine>>,
) -> Result<Vec<UncertaintyCell>, SourceError> {
    let _span = adcomp_obs::trace::Tracer::global().span_with(
        "experiment:uncertainty",
        &[("scenario", scenario.name.to_string())],
    );
    let class = SensitiveClass::Gender(Gender::Female);
    let channel = ClassChannel::for_class(ctx.config.inference.as_ref(), class);
    let mut cells = Vec::new();
    let mut facebook_top: Option<MeasuredTargeting> = None;

    for kind in UNCERTAINTY_INTERFACES {
        let platform = interface_platform(ctx, kind);
        let rounding = platform.config().rounding;
        let target = audit_target(ctx, kind, engine);

        // Targeting row: discovery runs on what the auditor *observes*
        // (the context's demographic queries resolve against the
        // scenario's inferred view), so the "most skewed" composition
        // itself can differ between scenarios — as it would in the field.
        let survey = ctx.survey(kind)?;
        let ranked = rank_individuals(
            survey,
            class,
            Direction::Against,
            ctx.config.discovery.min_reach,
        );
        let mut compositions = top_compositions(&target, survey, &ranked, &ctx.config.discovery)?;
        compositions.sort_by(|a, b| {
            let ra = a.ratio(&survey.base, class).unwrap_or(f64::INFINITY);
            let rb = b.ratio(&survey.base, class).unwrap_or(f64::INFINITY);
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        });
        if let Some(top) = compositions.into_iter().next() {
            let pair = MeasuredPair::of(&top.measurement, class, rounding);
            let base = MeasuredPair::of(&survey.base, class, rounding);
            let seed = cell_seed(
                ctx.config.seed,
                scenario.name,
                Stage::Targeting,
                kind.label(),
                "",
            );
            let ratio = confident_rep_ratio(&pair, &base, &channel, seed, ucfg, engine);
            cells.push(UncertaintyCell {
                scenario: scenario.name,
                stage: Stage::Targeting,
                interface: kind.label().to_string(),
                class,
                creative: None,
                point_band: four_fifths_band(ratio.point),
                ratio,
                gate: None,
            });
            if kind == InterfaceKind::FacebookNormal {
                facebook_top = Some(top);
            }
        }

        // Delivery row: the delivery run itself is a platform-side
        // process on ground truth (inference is the *auditor's*
        // limitation), but the audit of its outcome is not — the
        // delivered users are re-classified through the scenario's
        // observation channel, and panel-missing users become
        // unclassified mass.
        let spec = TargetingSpec::everyone();
        let base_measurement = measure_spec_batch(&target, std::slice::from_ref(&spec))?
            .pop()
            .expect("one spec in, one measurement out");
        let paired = PairedAdConfig::for_scale(ctx.config.scale);
        let delivery_seed = ctx.config.seed ^ interface_salt(kind);
        let setup = DeliverySetup::for_platform(platform, paired_campaigns(delivery_seed, &paired))
            .map_err(SourceError::Platform)?;
        let universe = platform.universe();
        let outcome = deliver(
            universe,
            universe.everyone(),
            &setup,
            &DeliveryConfig::new(paired.rounds, delivery_seed)
                .window(paired.window)
                .label(kind.label()),
        );
        let base = MeasuredPair::of(&base_measurement, class, rounding);
        // Two cells per interface: the loaded job ad (campaign 0) and
        // its neutral baseline (campaign 1). The baseline is the
        // degradation witness — near parity under oracle attributes,
        // it is exactly the cell a high-error channel must refuse to
        // call clean.
        for (index, creative) in [(0usize, "job"), (1, "baseline")] {
            let users = outcome.delivered_users(index, &setup);
            let delivered = match platform.inferred_view() {
                Some(view) => {
                    let f = users.intersection_len(view.gender_audience(Gender::Female));
                    let m = users.intersection_len(view.gender_audience(Gender::Male));
                    MeasuredPair::exact(f, m, users.len().saturating_sub(f + m))
                }
                None => MeasuredPair::exact(
                    users.intersection_len(universe.gender_audience(Gender::Female)),
                    users.intersection_len(universe.gender_audience(Gender::Male)),
                    0,
                ),
            };
            let seed = cell_seed(
                ctx.config.seed,
                scenario.name,
                Stage::Delivery,
                kind.label(),
                creative,
            );
            let ratio = confident_rep_ratio(&delivered, &base, &channel, seed, ucfg, engine);
            cells.push(UncertaintyCell {
                scenario: scenario.name,
                stage: Stage::Delivery,
                interface: kind.label().to_string(),
                class,
                creative: Some(creative),
                point_band: four_fifths_band(ratio.point),
                ratio,
                gate: None,
            });
        }
    }

    // Preflight row: the outcome-based mitigation gate, fed the same
    // observed data — how well §5's proposal holds up when the platform
    // or auditor running it has inferred/missing demographics.
    if let Some(top) = facebook_top {
        let kind = InterfaceKind::FacebookNormal;
        let target = audit_target(ctx, kind, engine);
        let gate = PreflightGate::new(&target, PreflightConfig::default())?;
        let verdict = gate.check_measurement(&top.measurement);
        let rounding = interface_platform(ctx, kind).config().rounding;
        let pair = MeasuredPair::of(&top.measurement, class, rounding);
        let base = MeasuredPair::of(gate.base(), class, rounding);
        let seed = cell_seed(
            ctx.config.seed,
            scenario.name,
            Stage::Preflight,
            kind.label(),
            "",
        );
        let ratio = confident_rep_ratio(&pair, &base, &channel, seed, ucfg, engine);
        cells.push(UncertaintyCell {
            scenario: scenario.name,
            stage: Stage::Preflight,
            interface: kind.label().to_string(),
            class,
            creative: None,
            point_band: four_fifths_band(ratio.point),
            ratio,
            gate: Some(preflight_label(&verdict)),
        });
    }
    Ok(cells)
}

/// Compact gate-verdict label for the TSV.
fn preflight_label(verdict: &PreflightVerdict) -> String {
    match verdict {
        PreflightVerdict::Accept => "accept".to_string(),
        PreflightVerdict::Flag { violations } => format!("flag({})", violations.len()),
        PreflightVerdict::TooSmall { reach } => format!("too-small({reach})"),
    }
}

/// The full uncertainty table: one context per scenario (each sees the
/// same simulation seed through its own observation channel), cells in
/// scenario-family order. `make_ctx` builds each scenario's context —
/// the hook equivalence tests use to wrap scenarios in per-scenario
/// recording stores; `engine` pools both the measurement queries and
/// the bootstrap fan-out.
pub fn uncertainty_table_with<F>(
    base: ExperimentConfig,
    ucfg: &UncertaintyConfig,
    make_ctx: F,
    engine: Option<&Arc<QueryEngine>>,
) -> Result<Vec<UncertaintyCell>, SourceError>
where
    F: Fn(&Scenario, ExperimentConfig) -> ExperimentContext,
{
    let mut cells = Vec::new();
    for scenario in scenario_family(base.seed) {
        let mut config = base;
        config.inference = scenario.inference;
        let ctx = make_ctx(&scenario, config);
        cells.extend(uncertainty_cells(&ctx, &scenario, ucfg, engine)?);
    }
    Ok(cells)
}

/// [`uncertainty_table_with`] with plain per-scenario contexts, serial
/// measurement, and per-scale bootstrap sizing.
pub fn uncertainty_table(base: ExperimentConfig) -> Result<Vec<UncertaintyCell>, SourceError> {
    uncertainty_table_with(
        base,
        &UncertaintyConfig::for_scale(base.scale),
        |_, config| ExperimentContext::new(config),
        None,
    )
}

/// TSV rendering with fixed-width numeric formatting, so byte-equality
/// of two tables is the equivalence criterion the determinism tests
/// compare.
pub fn uncertainty_tsv(cells: &[UncertaintyCell]) -> String {
    let mut out = String::from(
        "scenario\tstage\tinterface\tcreative\tclass\tpoint\tlo\thi\tconfidence\tverdict\t\
         point_band\tgate\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.2}\t{}\t{:?}\t{}\n",
            c.scenario,
            c.stage.label(),
            c.interface,
            c.creative.unwrap_or("-"),
            c.class.label(),
            c.ratio.point,
            c.ratio.interval.lo,
            c.ratio.interval.hi,
            c.ratio.confidence,
            c.verdict().label(),
            c.point_band,
            c.gate.as_deref().unwrap_or("-"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn pair(s: u64, not: u64) -> MeasuredPair {
        MeasuredPair::exact(s, not, 0)
    }

    #[test]
    fn scenario_family_is_oracle_inferred_missing() {
        let family = scenario_family(2020);
        assert_eq!(family.map(|s| s.name), ["oracle", "inferred", "missing"]);
        assert!(family[0].inference.is_none());
        let inferred = family[1].inference.unwrap();
        assert!(!inferred.is_oracle() && inferred.missing_base <= 0.0);
        let missing = family[2].inference.unwrap();
        assert!(missing.missing_base > 0.0 && missing.mnar_scale > 0.0);
    }

    /// With an identity channel the share→odds pipeline and the direct
    /// endpoint arithmetic on Equation 1 are the same function.
    #[test]
    fn share_path_matches_direct_interval_at_identity() {
        let ts = CountRange::new(900, 1_100);
        let tn = CountRange::new(1_900, 2_100);
        let bs = CountRange::new(9_500, 10_500);
        let bn = CountRange::new(19_000, 21_000);
        let direct = rep_ratio_interval(ts, tn, bs, bn).unwrap();
        let via_shares = odds(share_interval(ts, tn).unwrap())
            .unwrap()
            .div(odds(share_interval(bs, bn).unwrap()).unwrap())
            .unwrap();
        assert!(
            (direct.lo - via_shares.lo).abs() < 1e-12,
            "{direct:?} vs {via_shares:?}"
        );
        assert!(
            (direct.hi - via_shares.hi).abs() < 1e-12,
            "{direct:?} vs {via_shares:?}"
        );
    }

    /// Acceptance: at zero inference error and zero slack the confident
    /// verdict is exactly the point verdict.
    #[test]
    fn zero_uncertainty_reduces_to_point_verdict() {
        let ucfg = UncertaintyConfig {
            replicates: 0,
            confidence: 0.95,
        };
        let channel = ClassChannel::identity();
        for (t, want) in [
            ((600u64, 1_400u64), RatioVerdict::Under),
            ((1_000, 1_000), RatioVerdict::Within),
            ((1_800, 200), RatioVerdict::Over),
        ] {
            let r = confident_rep_ratio(
                &pair(t.0, t.1),
                &pair(5_000, 5_000),
                &channel,
                7,
                &ucfg,
                None,
            );
            assert_eq!(r.verdict(), want, "{t:?}");
            assert_eq!(r.interval, Interval::point(r.point), "{t:?}");
            let band = four_fifths_band(r.point);
            let label = match band {
                SkewBand::Under => RatioVerdict::Under,
                SkewBand::Within => RatioVerdict::Within,
                SkewBand::Over => RatioVerdict::Over,
            };
            assert_eq!(r.verdict(), label, "{t:?}");
        }
    }

    /// Acceptance: at error rates approaching one half the verdict
    /// degrades to Indeterminate — never a silent band.
    #[test]
    fn high_error_degrades_to_indeterminate() {
        let ucfg = UncertaintyConfig {
            replicates: 16,
            confidence: 0.95,
        };
        // sens + spec - 1 = 0: the observation is pure noise.
        let unidentified = ClassChannel {
            sensitivity: Interval::point(0.5),
            specificity: Interval::point(0.5),
        };
        let r = confident_rep_ratio(
            &pair(600, 1_400),
            &pair(5_000, 5_000),
            &unidentified,
            7,
            &ucfg,
            None,
        );
        assert!(!r.identified);
        assert_eq!(r.verdict(), RatioVerdict::Indeterminate);

        // Near-half error: still identified, but the correction divides
        // by `sens + spec - 1 = 0.1`, amplifying resampling noise
        // tenfold — a parity-looking observation must come back
        // Indeterminate, not a silent Within.
        let noisy = ClassChannel {
            sensitivity: Interval::point(0.55),
            specificity: Interval::point(0.55),
        };
        let r = confident_rep_ratio(
            &pair(1_000, 1_000),
            &pair(5_000, 5_000),
            &noisy,
            7,
            &ucfg,
            None,
        );
        assert!((r.point - 1.0).abs() < 1e-9, "parity point survives, {r:?}");
        assert_eq!(r.verdict(), RatioVerdict::Indeterminate, "{r:?}");
    }

    /// The bootstrap fan-out returns byte-identical samples serially and
    /// through an engine pool, and the interval contains the point.
    #[test]
    fn bootstrap_is_pool_invariant_and_contains_point() {
        let channel = ClassChannel::identity();
        let target = pair(6_000, 14_000);
        let base = pair(50_000, 50_000);
        let serial = bootstrap_ratios(42, &target, &base, &channel, 64, None);
        assert_eq!(serial.len(), 64, "no degenerate replicates at this size");
        for workers in [2, 5] {
            let engine = Arc::new(QueryEngine::new(EngineConfig::with_workers(workers)));
            let pooled = bootstrap_ratios(42, &target, &base, &channel, 64, Some(&engine));
            assert_eq!(
                serial, pooled,
                "{workers}-worker pool must reproduce the serial samples byte-for-byte"
            );
        }
        let point = point_ratio(&target, &base, &channel).unwrap();
        let interval = percentile_interval(&serial, 0.95, point);
        assert!(interval.contains(point));
        assert!(interval.width() > 0.0, "resampling must spread the ratio");
    }

    /// Unclassified mass widens the interval but never moves the point.
    #[test]
    fn missing_mass_widens_the_interval() {
        let ucfg = UncertaintyConfig {
            replicates: 0,
            confidence: 0.95,
        };
        let channel = ClassChannel::identity();
        let base = pair(5_000, 5_000);
        let complete = confident_rep_ratio(&pair(600, 1_400), &base, &channel, 7, &ucfg, None);
        let holey = confident_rep_ratio(
            &MeasuredPair::exact(600, 1_400, 300),
            &base,
            &channel,
            7,
            &ucfg,
            None,
        );
        assert_eq!(complete.point, holey.point);
        assert!(holey.interval.width() > complete.interval.width());
        assert!(holey.interval.contains(complete.point));
    }

    /// The gender channel collapses exactly; the age channel's
    /// specificity is an interval over the other buckets' rates.
    #[test]
    fn class_channels_match_the_inference_model() {
        let model = AttributeInference::noisy(5, 0.1, 0.3);
        let g = ClassChannel::for_class(Some(&model), SensitiveClass::Gender(Gender::Female));
        assert_eq!(g.sensitivity, Interval::point(0.9));
        assert_eq!(g.specificity, Interval::point(0.9));
        let a = ClassChannel::for_class(
            Some(&model),
            SensitiveClass::Age(adcomp_population::AgeBucket::A18_24),
        );
        assert_eq!(a.sensitivity, Interval::point(0.7));
        assert!((a.specificity.lo - 0.9).abs() < 1e-12);
        assert!(
            ClassChannel::for_class(None, SensitiveClass::Gender(Gender::Female)).is_identity()
        );
        assert!(ClassChannel::for_class(
            Some(&AttributeInference::oracle(5)),
            SensitiveClass::Gender(Gender::Female)
        )
        .is_identity());
    }
}
