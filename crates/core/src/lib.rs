//! The composition-audit methodology of *On the Potential for
//! Discrimination via Composition* (Venkatadri & Mislove, IMC 2020).
//!
//! This crate is the paper's primary contribution as a library. Given any
//! advertising platform exposing the usual targeting surface — attribute
//! catalogs, AND-of-OR composition, and **rounded** audience-size
//! estimates (abstracted as [`EstimateSource`]) — it measures the
//! potential for discriminatory ad targeting:
//!
//! * [`metrics`] — the representation ratio (Equation 1), recall, the
//!   four-fifths rule, and rounding-robustness interval analysis;
//! * [`discovery`] — the greedy search for the most skewed k-way
//!   targeting compositions, plus random-composition baselines;
//! * [`engine`] — the parallel query engine: a bounded worker pool
//!   executing estimate batches in deterministic submission order, plus
//!   opt-in estimate memoization;
//! * [`union_estimate`] — audience overlap measurement and
//!   inclusion–exclusion union-recall estimation (platforms cannot
//!   express OR-of-ANDs directly);
//! * [`removal`] — the mitigation study: does removing the most skewed
//!   individual attributes fix compositions? (No.);
//! * [`probe`] — black-box characterisation of the platforms' size
//!   estimates (consistency, significant-digit ladders);
//! * [`mitigation`] — the paper's §5 proposal implemented: an
//!   outcome-based pre-flight gate and a streaming advertiser anomaly
//!   monitor;
//! * [`budget`] — client-side query caps and throttling (the ethics
//!   section's discipline);
//! * [`resilience`] — retry, error classification, and graceful
//!   degradation, so multi-day audits survive flaky platforms;
//! * [`experiments`] — drivers reproducing every figure and table of the
//!   paper's evaluation.
//!
//! The pipeline sees only what a real advertiser sees: rounded size
//! estimates from the targeting interface. Ground truth exists in the
//! simulators for validation, but no metric here touches it.
//!
//! # Quickstart
//!
//! ```
//! use adcomp_core::experiments::{ExperimentConfig, ExperimentContext};
//! use adcomp_core::experiments::distributions::distributions_for;
//! use adcomp_core::source::SensitiveClass;
//! use adcomp_platform::InterfaceKind;
//! use adcomp_population::Gender;
//!
//! let ctx = ExperimentContext::new(ExperimentConfig::test(1));
//! let male = SensitiveClass::Gender(Gender::Male);
//! let rows =
//!     distributions_for(&ctx, InterfaceKind::LinkedIn, &[male], &[2]).unwrap();
//! // Top 2-way compositions out-skew individual attributes.
//! assert!(!rows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod discovery;
pub mod distributed;
pub mod drift;
pub mod engine;
pub mod epoch;
pub mod experiments;
pub mod metrics;
pub mod mitigation;
pub mod probe;
pub mod recording;
pub mod removal;
pub mod resilience;
pub mod source;
pub mod stats;
pub mod union_estimate;

pub use budget::{BudgetedSource, QueryBudget};
pub use discovery::{
    compose_and_measure, random_compositions, rank_individuals, survey_individuals,
    top_compositions, top_compositions_bounded, Direction, DiscoveryConfig, IndividualSurvey,
    MeasuredTargeting, DEFAULT_MIN_REACH,
};
pub use distributed::{sched_events_in, ScheduledSource, SchedulerConfig, StoreJournal};
pub use drift::{
    drift_between, drift_between_with, DriftFinding, DriftOptions, DriftReport, RatioMove,
};
pub use engine::{EngineConfig, MemoCache, MemoizedSource, QueryEngine};
pub use epoch::{epoch_digest, run_epoch, EpochOutcome, EpochPlan};
pub use experiments::uncertainty_exp::{
    bootstrap_ratios, confident_rep_ratio, scenario_family, uncertainty_cells, uncertainty_table,
    uncertainty_table_with, uncertainty_tsv, ClassChannel, MeasuredPair, ReplicateSource, Scenario,
    Stage, UncertaintyCell, UncertaintyConfig, UNCERTAINTY_INTERFACES,
};
pub use metrics::{
    four_fifths_band, measure_spec, measure_spec_batch, ratio_bounds, recall_of, rep_ratio,
    rep_ratio_of, RatioBounds, SkewBand, SpecMeasurement, FOUR_FIFTHS_HIGH, FOUR_FIFTHS_LOW,
    FOUR_FIFTHS_THRESHOLD, QUERIES_PER_SPEC,
};
pub use mitigation::{
    AdvertiserMonitor, AdvertiserReport, PreflightConfig, PreflightGate, PreflightVerdict,
};
pub use probe::{
    consistency_probe, granularity_from_observations, granularity_probe, significant_digits,
    ConsistencyReport, GranularityProbe, GranularityReport, ProbeCheckpoint,
};
pub use recording::{EpochEvent, InterfaceMeta, SchedEvent, TargetLayout};
pub use removal::{removal_sweep, RemovalPoint, RemovalSweep};
pub use resilience::{
    classify, DegradationPolicy, ErrorClass, ResilienceConfig, ResilienceStats, ResilientSource,
};
pub use source::{
    ApiSource, AuditTarget, EstimateSource, RecordingSource, ReplaySource, Selector,
    SensitiveClass, SourceError,
};
pub use stats::{fraction_outside, median, percentile, BoxStats};
pub use union_estimate::{median_pairwise_overlap, pairwise_overlap, union_recall, UnionEstimate};
