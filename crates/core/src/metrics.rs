//! The paper's metrics: representation ratio, recall, four-fifths rule.
//!
//! All quantities are computed from **rounded** platform estimates, as in
//! the paper (Equation 1, §3):
//!
//! ```text
//!                     |TA ∧ RAₛ| / |RAₛ|
//! rep_ratioₛ(TA, RA) = ─────────────────────
//!                     |TA ∧ RA₋ₛ| / |RA₋ₛ|
//! ```
//!
//! where `RA` is all US users of the platform and `RA₋ₛ` aggregates every
//! other value of the sensitive attribute. `recall` is `|TA ∧ RAₛ|` when
//! including class `s` (and `|TA ∧ RA₋ₛ|` when excluding it).

use adcomp_platform::RoundingRule;
use adcomp_population::{AgeBucket, Gender};
use adcomp_targeting::TargetingSpec;
use serde::{Deserialize, Serialize};

use crate::source::{AuditTarget, SensitiveClass, SourceError};

/// *The* four-fifths threshold (Biddle; EEOC practice): a selection rate
/// below four fifths of the most-favoured group's is treated as evidence
/// of adverse impact. Every `0.8` in the codebase is this constant; the
/// band edges below are derived from it.
pub const FOUR_FIFTHS_THRESHOLD: f64 = 0.8;
/// Lower edge of the four-fifths band: a ratio below it under-represents
/// the class.
pub const FOUR_FIFTHS_LOW: f64 = FOUR_FIFTHS_THRESHOLD;
/// Upper edge of the four-fifths band (`1/0.8 = 1.25`): a ratio above it
/// over-represents the class.
pub const FOUR_FIFTHS_HIGH: f64 = 1.0 / FOUR_FIFTHS_THRESHOLD;

/// Where a ratio falls relative to the four-fifths band.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkewBand {
    /// Ratio < 0.8: the class is under-represented.
    Under,
    /// 0.8 ≤ ratio ≤ 1.25: within the accepted band.
    Within,
    /// Ratio > 1.25: the class is over-represented.
    Over,
}

/// Classifies a ratio against the four-fifths band.
pub fn four_fifths_band(ratio: f64) -> SkewBand {
    if ratio < FOUR_FIFTHS_LOW {
        SkewBand::Under
    } else if ratio > FOUR_FIFTHS_HIGH {
        SkewBand::Over
    } else {
        SkewBand::Within
    }
}

/// Per-class measurements of one targeting: everything the audit needs to
/// compute ratios and recalls for any sensitive class, obtained with the
/// paper's seven queries (total, two genders, four ages).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpecMeasurement {
    /// `|TA|` (rounded estimate).
    pub total: u64,
    /// `|TA ∧ gender|`, indexed by [`Gender::index`].
    pub by_gender: [u64; 2],
    /// `|TA ∧ age|`, indexed by [`AgeBucket::index`].
    pub by_age: [u64; 4],
}

impl SpecMeasurement {
    /// The class slice `|TA ∧ RAₛ|`.
    pub fn class_count(&self, class: SensitiveClass) -> u64 {
        match class {
            SensitiveClass::Gender(g) => self.by_gender[g.index()],
            SensitiveClass::Age(a) => self.by_age[a.index()],
        }
    }

    /// The complement `|TA ∧ RA₋ₛ|`, aggregated over the other values of
    /// the same sensitive attribute (paper: `Σ_{s'≠s} |TA ∧ RA_{s'}|`).
    pub fn complement_count(&self, class: SensitiveClass) -> u64 {
        match class {
            SensitiveClass::Gender(g) => self.by_gender[g.other().index()],
            SensitiveClass::Age(a) => AgeBucket::ALL
                .iter()
                .filter(|b| **b != a)
                .map(|b| self.by_age[b.index()])
                .sum(),
        }
    }
}

/// Measures a targeting through an [`AuditTarget`]: one total query plus
/// one per class value (7 rounded estimates), mirroring §3.
pub fn measure_spec(
    target: &AuditTarget,
    spec: &TargetingSpec,
) -> Result<SpecMeasurement, SourceError> {
    let total = target.total_estimate(spec)?;
    let mut by_gender = [0u64; 2];
    for g in Gender::ALL {
        by_gender[g.index()] = target.class_estimate(spec, SensitiveClass::Gender(g))?;
    }
    let mut by_age = [0u64; 4];
    for a in AgeBucket::ALL {
        by_age[a.index()] = target.class_estimate(spec, SensitiveClass::Age(a))?;
    }
    Ok(SpecMeasurement {
        total,
        by_gender,
        by_age,
    })
}

/// Number of estimate queries one [`measure_spec`] issues (total + two
/// genders + four ages).
pub const QUERIES_PER_SPEC: usize = 7;

/// Batch form of [`measure_spec`]: measures every spec with the same
/// seven queries per spec, submitted as one batch so an attached
/// [`QueryEngine`](crate::engine::QueryEngine) can execute them across
/// its worker pool.
///
/// The query list — per spec: total, both genders, all four ages — is
/// identical to what the serial loop issues, in the same order, so query
/// accounting is unchanged and results are bit-identical on
/// deterministic sources. On error, the first failure in submission
/// order is returned, matching the error `measure_spec` would surface.
pub fn measure_spec_batch(
    target: &AuditTarget,
    specs: &[TargetingSpec],
) -> Result<Vec<SpecMeasurement>, SourceError> {
    let mut queries: Vec<TargetingSpec> = Vec::with_capacity(specs.len() * QUERIES_PER_SPEC);
    for spec in specs {
        let translated = target.translate(spec);
        queries.push(translated.as_ref().clone());
        for g in Gender::ALL {
            queries.push(SensitiveClass::Gender(g).constrain(&translated));
        }
        for a in AgeBucket::ALL {
            queries.push(SensitiveClass::Age(a).constrain(&translated));
        }
    }
    let mut results = target.run_measurement_batch(queries).into_iter();
    let mut out = Vec::with_capacity(specs.len());
    for _ in specs {
        let mut next = || results.next().expect("one result per query");
        let total = next()?;
        let mut by_gender = [0u64; 2];
        for g in Gender::ALL {
            by_gender[g.index()] = next()?;
        }
        let mut by_age = [0u64; 4];
        for a in AgeBucket::ALL {
            by_age[a.index()] = next()?;
        }
        out.push(SpecMeasurement {
            total,
            by_gender,
            by_age,
        });
    }
    Ok(out)
}

/// Representation ratio from the four estimate counts (Equation 1).
/// `None` when a denominator is zero (the paper's recall filter removes
/// such niche targetings before ratios are interpreted).
pub fn rep_ratio(ta_s: u64, ta_not_s: u64, ra_s: u64, ra_not_s: u64) -> Option<f64> {
    if ra_s == 0 || ra_not_s == 0 || ta_not_s == 0 {
        return None;
    }
    let num = ta_s as f64 / ra_s as f64;
    let den = ta_not_s as f64 / ra_not_s as f64;
    Some(num / den)
}

/// Representation ratio of a measured targeting for a class, given the
/// base-population measurement (`RA`, i.e. the measurement of
/// [`TargetingSpec::everyone`]).
pub fn rep_ratio_of(
    measurement: &SpecMeasurement,
    base: &SpecMeasurement,
    class: SensitiveClass,
) -> Option<f64> {
    rep_ratio(
        measurement.class_count(class),
        measurement.complement_count(class),
        base.class_count(class),
        base.complement_count(class),
    )
}

/// Recall (paper §3): the count of the sensitive population reached when
/// the targeting *includes* the class.
pub fn recall_of(measurement: &SpecMeasurement, class: SensitiveClass) -> u64 {
    measurement.class_count(class)
}

/// Interval of representation ratios consistent with the rounding of the
/// four inputs — the paper's robustness check that conclusions hold "even
/// allowing for the representation ratios to take their least skewed
/// values (subject to the rounding ranges)".
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatioBounds {
    /// Smallest ratio any consistent exact counts could give.
    pub lo: f64,
    /// Largest ratio any consistent exact counts could give.
    pub hi: f64,
}

impl RatioBounds {
    /// The value in the interval closest to 1 — the "least skewed"
    /// consistent ratio.
    pub fn least_skewed(&self) -> f64 {
        if self.lo > 1.0 {
            self.lo
        } else if self.hi < 1.0 {
            self.hi
        } else {
            1.0
        }
    }
}

/// Computes [`RatioBounds`] for a class from rounded measurements and the
/// platform's rounding rule.
///
/// The ratio is monotone increasing in `ta_s` and `ra_not_s` and
/// decreasing in `ta_not_s` and `ra_s`, so the extremes come from the
/// interval endpoints. Returns `None` when any required inverse interval
/// is undefined or a bound's denominator collapses to zero.
pub fn ratio_bounds(
    measurement: &SpecMeasurement,
    base: &SpecMeasurement,
    class: SensitiveClass,
    rounding: &RoundingRule,
) -> Option<RatioBounds> {
    let ta_s = rounding.inverse_interval(measurement.class_count(class))?;
    let ta_not_s = rounding.inverse_interval(measurement.complement_count(class))?;
    let ra_s = rounding.inverse_interval(base.class_count(class))?;
    let ra_not_s = rounding.inverse_interval(base.complement_count(class))?;

    let ratio = |ts: u64, tns: u64, rs: u64, rns: u64| rep_ratio(ts, tns, rs, rns);
    let lo = ratio(ta_s.0, ta_not_s.1, ra_s.1, ra_not_s.0)?;
    let hi = ratio(ta_s.1, ta_not_s.0.max(1), ra_s.0.max(1), ra_not_s.1)?;
    Some(RatioBounds { lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(total: u64, male: u64, female: u64, ages: [u64; 4]) -> SpecMeasurement {
        SpecMeasurement {
            total,
            by_gender: [male, female],
            by_age: ages,
        }
    }

    const MALE: SensitiveClass = SensitiveClass::Gender(Gender::Male);
    const YOUNG: SensitiveClass = SensitiveClass::Age(AgeBucket::A18_24);

    #[test]
    fn rep_ratio_balanced_population() {
        // 60k males vs 40k females targeted out of 1M each: ratio 1.5.
        assert_eq!(rep_ratio(60_000, 40_000, 1_000_000, 1_000_000), Some(1.5));
        // Zero denominators are undefined.
        assert_eq!(rep_ratio(1, 0, 10, 10), None);
        assert_eq!(rep_ratio(1, 1, 0, 10), None);
        assert_eq!(rep_ratio(1, 1, 10, 0), None);
        // Zero numerator is a valid (fully excluding) ratio.
        assert_eq!(rep_ratio(0, 10, 100, 100), Some(0.0));
    }

    #[test]
    fn rep_ratio_accounts_for_base_rates() {
        // Population is 2:1 male; targeting 2:1 male is ratio 1.0.
        let r = rep_ratio(2_000, 1_000, 200_000, 100_000).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_and_complement_counts() {
        let m = meas(100, 60, 40, [10, 20, 30, 40]);
        assert_eq!(m.class_count(MALE), 60);
        assert_eq!(m.complement_count(MALE), 40);
        assert_eq!(m.class_count(YOUNG), 10);
        assert_eq!(
            m.complement_count(YOUNG),
            90,
            "sum of the other three buckets"
        );
    }

    #[test]
    fn rep_ratio_of_uses_base() {
        let base = meas(200, 100, 100, [50, 50, 50, 50]);
        let ta = meas(30, 20, 10, [3, 9, 9, 9]);
        let r = rep_ratio_of(&ta, &base, MALE).unwrap();
        assert!((r - 2.0).abs() < 1e-12);
        let r = rep_ratio_of(&ta, &base, YOUNG).unwrap();
        // (3/50) / (27/150) = 0.06 / 0.18.
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_of(&ta, MALE), 20);
    }

    #[test]
    fn four_fifths_banding() {
        assert_eq!(four_fifths_band(0.79), SkewBand::Under);
        assert_eq!(four_fifths_band(0.8), SkewBand::Within);
        assert_eq!(four_fifths_band(1.0), SkewBand::Within);
        assert_eq!(four_fifths_band(1.25), SkewBand::Within);
        assert_eq!(four_fifths_band(1.26), SkewBand::Over);
    }

    #[test]
    fn ratio_bounds_contain_point_estimate_and_are_ordered() {
        let rule = RoundingRule::facebook();
        // Exact values 63_400 male / 41_200 female in a 100M/110M base.
        let exact = meas(104_600, 63_400, 41_200, [26_000, 26_000, 26_000, 26_600]);
        let rounded = meas(
            rule.apply(exact.total),
            rule.apply(63_400),
            rule.apply(41_200),
            [26_000, 26_000, 26_000, 27_000],
        );
        let base = meas(
            210_000_000,
            rule.apply(100_000_000),
            rule.apply(110_000_000),
            [52_000_000, 52_000_000, 52_000_000, 54_000_000],
        );
        let b = ratio_bounds(&rounded, &base, MALE, &rule).unwrap();
        assert!(b.lo <= b.hi);
        let point = rep_ratio_of(&rounded, &base, MALE).unwrap();
        assert!(b.lo <= point && point <= b.hi);
        // The exact-data ratio is in the interval too.
        let exact_ratio = rep_ratio(63_400, 41_200, 100_000_000, 110_000_000).unwrap();
        assert!(b.lo <= exact_ratio && exact_ratio <= b.hi);
    }

    #[test]
    fn least_skewed_projects_onto_one() {
        assert_eq!(RatioBounds { lo: 1.2, hi: 2.0 }.least_skewed(), 1.2);
        assert_eq!(RatioBounds { lo: 0.2, hi: 0.6 }.least_skewed(), 0.6);
        assert_eq!(RatioBounds { lo: 0.9, hi: 1.1 }.least_skewed(), 1.0);
    }

    /// `adcomp-infer` is dependency-free and restates the band edges;
    /// this pins the two definitions together.
    #[test]
    fn infer_band_edges_match_core() {
        assert_eq!(adcomp_infer::FOUR_FIFTHS_LOW, FOUR_FIFTHS_LOW);
        assert_eq!(adcomp_infer::FOUR_FIFTHS_HIGH, FOUR_FIFTHS_HIGH);
    }

    #[test]
    fn bounds_with_exact_rule_collapse_to_point() {
        let rule = RoundingRule::Exact;
        let base = meas(200, 100, 100, [50, 50, 50, 50]);
        let ta = meas(30, 20, 10, [3, 9, 9, 9]);
        let b = ratio_bounds(&ta, &base, MALE, &rule).unwrap();
        let point = rep_ratio_of(&ta, &base, MALE).unwrap();
        assert!((b.lo - point).abs() < 1e-12 && (b.hi - point).abs() < 1e-12);
    }
}
