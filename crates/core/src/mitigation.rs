//! Outcome-based mitigations — the paper's §5 proposal, implemented.
//!
//! The paper concludes that restricting *individual* targeting options
//! cannot prevent discriminatory targeting and that mitigations must be
//! based on the **outcome of the composed targeting**:
//!
//! > "ad platforms could potentially use anomaly detection based on the
//! > outcome of ad targeting to detect advertisers who consistently
//! > target skewed audiences. Any flagged advertisers could then be
//! > subject to further review…"
//!
//! Two mechanisms are provided:
//!
//! * [`PreflightGate`] — a per-campaign check a platform can run before
//!   accepting an ad in a protected category: measure the *composed*
//!   audience's representation ratios and reject/flag when any class
//!   falls outside a configurable band. This is the "base mitigations on
//!   the outcome of the composition" recommendation.
//! * [`AdvertiserMonitor`] — a streaming anomaly detector over an
//!   advertiser's campaign history: exponentially weighted skew scores
//!   per sensitive attribute, flagging advertisers who *consistently*
//!   target skewed audiences (single skewed campaigns may be benign
//!   relevance effects; consistent skew is the anomaly).

use std::collections::HashMap;

use adcomp_targeting::TargetingSpec;

use crate::metrics::{measure_spec, rep_ratio_of, SpecMeasurement};
use crate::source::{AuditTarget, SensitiveClass, SourceError};

/// Verdict of a pre-flight outcome check.
#[derive(Clone, Debug, PartialEq)]
pub enum PreflightVerdict {
    /// All measured classes within the band.
    Accept,
    /// At least one class outside the band; carries the evidence.
    Flag {
        /// The violating classes with their measured ratios.
        violations: Vec<(SensitiveClass, f64)>,
    },
    /// The audience is too small to measure reliably (below the reach
    /// floor); platforms typically reject such micro-targeting outright
    /// in protected categories.
    TooSmall {
        /// The measured total reach.
        reach: u64,
    },
}

/// Configuration of the outcome gate.
#[derive(Clone, Copy, Debug)]
pub struct PreflightConfig {
    /// Lower ratio bound (default: the four-fifths 0.8).
    pub low: f64,
    /// Upper ratio bound (default: 1.25).
    pub high: f64,
    /// Minimum audience size to evaluate at all.
    pub min_reach: u64,
}

impl Default for PreflightConfig {
    fn default() -> Self {
        PreflightConfig {
            low: crate::metrics::FOUR_FIFTHS_LOW,
            high: crate::metrics::FOUR_FIFTHS_HIGH,
            min_reach: crate::discovery::DEFAULT_MIN_REACH,
        }
    }
}

/// The outcome-based campaign gate.
///
/// Holds the base-population measurement so repeated checks cost only
/// the seven per-spec queries.
pub struct PreflightGate {
    config: PreflightConfig,
    base: SpecMeasurement,
}

impl PreflightGate {
    /// Builds a gate for a target (measures the base population once).
    pub fn new(target: &AuditTarget, config: PreflightConfig) -> Result<Self, SourceError> {
        let base = measure_spec(target, &TargetingSpec::everyone())?;
        Ok(PreflightGate { config, base })
    }

    /// Measures the composed spec and classifies its outcome.
    pub fn check(
        &self,
        target: &AuditTarget,
        spec: &TargetingSpec,
    ) -> Result<PreflightVerdict, SourceError> {
        let m = measure_spec(target, spec)?;
        Ok(self.check_measurement(&m))
    }

    /// Classifies an already-measured targeting.
    pub fn check_measurement(&self, m: &SpecMeasurement) -> PreflightVerdict {
        if m.total < self.config.min_reach {
            return PreflightVerdict::TooSmall { reach: m.total };
        }
        let mut violations = Vec::new();
        for class in SensitiveClass::ALL {
            if let Some(ratio) = rep_ratio_of(m, &self.base, class) {
                if ratio < self.config.low || ratio > self.config.high {
                    violations.push((class, ratio));
                }
            }
        }
        if violations.is_empty() {
            PreflightVerdict::Accept
        } else {
            PreflightVerdict::Flag { violations }
        }
    }

    /// The base-population measurement the gate compares against.
    pub fn base(&self) -> &SpecMeasurement {
        &self.base
    }
}

/// Per-advertiser streaming skew score.
///
/// For every submitted campaign, each sensitive class contributes
/// `|log(ratio)|` when outside the band (0 inside); the advertiser's
/// score is an exponential moving average per class. An advertiser is
/// flagged when any class's average exceeds `threshold` after at least
/// `min_campaigns` observations — "consistently targeting skewed
/// audiences", not a single outlier.
#[derive(Clone, Debug)]
pub struct AdvertiserMonitor {
    /// EMA decay (weight of the newest observation), in `(0, 1]`.
    pub alpha: f64,
    /// Score threshold for flagging (in |log-ratio| units; `ln(2) ≈ 0.69`
    /// means "on average twice as skewed as parity").
    pub threshold: f64,
    /// Minimum campaigns before an advertiser can be flagged.
    pub min_campaigns: u32,
    low: f64,
    high: f64,
    advertisers: HashMap<String, AdvertiserState>,
}

#[derive(Clone, Debug, Default)]
struct AdvertiserState {
    campaigns: u32,
    /// EMA of banded |log ratio| per class index (6 classes).
    scores: [f64; 6],
}

/// Snapshot of one advertiser's standing.
#[derive(Clone, Debug, PartialEq)]
pub struct AdvertiserReport {
    /// Campaigns observed.
    pub campaigns: u32,
    /// Current per-class scores, ordered as [`SensitiveClass::ALL`].
    pub scores: [f64; 6],
    /// Whether the advertiser is currently flagged.
    pub flagged: bool,
}

impl AdvertiserMonitor {
    /// A monitor with the given EMA decay and flag threshold.
    pub fn new(alpha: f64, threshold: f64, min_campaigns: u32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(threshold > 0.0);
        AdvertiserMonitor {
            alpha,
            threshold,
            min_campaigns,
            low: crate::metrics::FOUR_FIFTHS_LOW,
            high: crate::metrics::FOUR_FIFTHS_HIGH,
            advertisers: HashMap::new(),
        }
    }

    /// Records one campaign's measured outcome for `advertiser`.
    pub fn observe(
        &mut self,
        advertiser: &str,
        measurement: &SpecMeasurement,
        base: &SpecMeasurement,
    ) {
        let state = self.advertisers.entry(advertiser.to_string()).or_default();
        state.campaigns += 1;
        for (i, class) in SensitiveClass::ALL.iter().enumerate() {
            let penalty = match rep_ratio_of(measurement, base, *class) {
                Some(r) if r > 0.0 && (r < self.low || r > self.high) => r.ln().abs(),
                // Ratio of exactly zero = total exclusion: maximal penalty.
                Some(0.0) => 4.0,
                _ => 0.0,
            };
            state.scores[i] = (1.0 - self.alpha) * state.scores[i] + self.alpha * penalty;
        }
    }

    /// Current standing of an advertiser (`None` if never observed).
    pub fn report(&self, advertiser: &str) -> Option<AdvertiserReport> {
        let state = self.advertisers.get(advertiser)?;
        let flagged = state.campaigns >= self.min_campaigns
            && state.scores.iter().any(|&s| s > self.threshold);
        Some(AdvertiserReport {
            campaigns: state.campaigns,
            scores: state.scores,
            flagged,
        })
    }

    /// All currently flagged advertisers.
    pub fn flagged(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .advertisers
            .keys()
            .filter(|name| self.report(name).is_some_and(|r| r.flagged))
            .cloned()
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{rank_individuals, survey_individuals, Direction, DiscoveryConfig};
    use adcomp_platform::{SimScale, Simulation};
    use adcomp_population::Gender;
    use adcomp_targeting::AttributeId;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(46, SimScale::Test))
    }

    fn meas(total: u64, male: u64, female: u64, ages: [u64; 4]) -> SpecMeasurement {
        SpecMeasurement {
            total,
            by_gender: [male, female],
            by_age: ages,
        }
    }

    fn balanced_base() -> SpecMeasurement {
        meas(8_000_000, 4_000_000, 4_000_000, [2_000_000; 4])
    }

    #[test]
    fn preflight_accepts_balanced_flags_skewed() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let gate = PreflightGate::new(&target, PreflightConfig::default()).unwrap();
        // Balanced synthetic measurement: parity with the gate's actual
        // base rates.
        let base = gate.base().clone();
        let balanced = SpecMeasurement {
            total: base.total / 10,
            by_gender: [base.by_gender[0] / 10, base.by_gender[1] / 10],
            by_age: base.by_age.map(|v| v / 10),
        };
        assert_eq!(gate.check_measurement(&balanced), PreflightVerdict::Accept);

        // Heavy male skew: flagged with evidence for both genders.
        let skewed = SpecMeasurement {
            total: base.total / 10,
            by_gender: [base.by_gender[0] / 5, base.by_gender[1] / 50],
            by_age: base.by_age.map(|v| v / 10),
        };
        match gate.check_measurement(&skewed) {
            PreflightVerdict::Flag { violations } => {
                assert!(violations
                    .iter()
                    .any(|(c, r)| *c == SensitiveClass::Gender(Gender::Male)
                        && *r > crate::metrics::FOUR_FIFTHS_HIGH));
            }
            other => panic!("expected Flag, got {other:?}"),
        }
    }

    #[test]
    fn preflight_rejects_microtargeting() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let gate = PreflightGate::new(&target, PreflightConfig::default()).unwrap();
        let tiny = meas(500, 300, 200, [100, 150, 150, 100]);
        assert_eq!(
            gate.check_measurement(&tiny),
            PreflightVerdict::TooSmall { reach: 500 }
        );
    }

    #[test]
    fn preflight_catches_discovered_compositions_end_to_end() {
        // The gate must flag exactly the kind of composition the paper's
        // discovery finds on the restricted interface.
        let target = AuditTarget::for_platform(&sim().facebook_restricted, sim());
        let gate = PreflightGate::new(&target, PreflightConfig::default()).unwrap();
        let survey = survey_individuals(&target).unwrap();
        let male = SensitiveClass::Gender(Gender::Male);
        let cfg = DiscoveryConfig {
            top_k: 20,
            ..DiscoveryConfig::default()
        };
        let ranked = rank_individuals(&survey, male, Direction::Toward, cfg.min_reach);
        let top = crate::discovery::top_compositions(&target, &survey, &ranked, &cfg).unwrap();
        let mut flagged = 0;
        for comp in &top {
            if matches!(
                gate.check_measurement(&comp.measurement),
                PreflightVerdict::Flag { .. }
            ) {
                flagged += 1;
            }
        }
        assert!(
            flagged * 2 > top.len(),
            "the gate should flag most discovered top compositions ({flagged}/{})",
            top.len()
        );
        // And accept an honest broad targeting.
        let broad = measure_spec(&target, &TargetingSpec::and_of([AttributeId(0)])).unwrap();
        let verdict = gate.check_measurement(&broad);
        assert!(!matches!(verdict, PreflightVerdict::TooSmall { .. }));
    }

    #[test]
    fn monitor_flags_consistent_not_occasional_skew() {
        let base = balanced_base();
        let skewed = meas(100_000, 90_000, 10_000, [25_000; 4]);
        let balanced = meas(100_000, 50_000, 50_000, [25_000; 4]);
        let mut monitor = AdvertiserMonitor::new(0.3, 0.5, 3);

        // "badco" always skews; "okco" skews once among many balanced.
        for _ in 0..6 {
            monitor.observe("badco", &skewed, &base);
            monitor.observe("okco", &balanced, &base);
        }
        monitor.observe("okco", &skewed, &base);
        for _ in 0..4 {
            monitor.observe("okco", &balanced, &base);
        }

        let bad = monitor.report("badco").unwrap();
        assert!(bad.flagged, "consistent skew must flag: {:?}", bad.scores);
        let ok = monitor.report("okco").unwrap();
        assert!(!ok.flagged, "one-off skew must not flag: {:?}", ok.scores);
        assert_eq!(monitor.flagged(), vec!["badco".to_string()]);
    }

    #[test]
    fn monitor_respects_min_campaigns() {
        let base = balanced_base();
        let skewed = meas(100_000, 95_000, 5_000, [25_000; 4]);
        let mut monitor = AdvertiserMonitor::new(0.5, 0.3, 5);
        for i in 0..4 {
            monitor.observe("newco", &skewed, &base);
            assert!(
                !monitor.report("newco").unwrap().flagged,
                "must not flag before min_campaigns (at {i})"
            );
        }
        monitor.observe("newco", &skewed, &base);
        assert!(monitor.report("newco").unwrap().flagged);
    }

    #[test]
    fn monitor_total_exclusion_gets_max_penalty() {
        let base = balanced_base();
        // Zero females reached: ratio 0 toward females.
        let excluding = meas(100_000, 100_000, 0, [25_000; 4]);
        let mut monitor = AdvertiserMonitor::new(1.0, 0.5, 1);
        monitor.observe("exco", &excluding, &base);
        let report = monitor.report("exco").unwrap();
        let female_idx = 1; // SensitiveClass::ALL[1] = female
        assert_eq!(report.scores[female_idx], 4.0);
        assert!(report.flagged);
    }

    #[test]
    fn unknown_advertiser_reports_none() {
        let monitor = AdvertiserMonitor::new(0.5, 0.5, 1);
        assert!(monitor.report("ghost").is_none());
        assert!(monitor.flagged().is_empty());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn bad_alpha_rejected() {
        let _ = AdvertiserMonitor::new(0.0, 0.5, 1);
    }
}
