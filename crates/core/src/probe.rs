//! Black-box characterisation of the platforms' size estimates.
//!
//! Before trusting the estimates, the paper studies them (§3,
//! "Understanding size estimates"): 100 back-to-back repeated calls on 20
//! random options and 20 random compositions per platform to check
//! **consistency**, and the union of >80 000 distinct calls to infer the
//! **granularity** (significant-digit ladder and reporting minimum).
//! These probes run the same study against any [`EstimateSource`](crate::source::EstimateSource) and are
//! the audit's guard against obfuscated (noised) estimates.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use adcomp_obs::metrics::{Counter, Registry};
use adcomp_obs::progress::ProgressReporter;
use adcomp_obs::trace::Tracer;
use adcomp_targeting::{AttributeId, TargetingSpec};
use rand::{Rng, SeedableRng};

use crate::discovery::AuditRng;
use crate::source::{AuditTarget, SourceError};

/// Sampling shortfalls reported by consistency probes.
fn probe_warnings_total() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("adcomp_probe_warnings_total"))
}

/// Queries abandoned (resilience-layer skips) during granularity probes.
fn probe_skipped_total() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("adcomp_probe_skipped_total"))
}

/// Result of the consistency probe.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsistencyReport {
    /// Distinct specs probed.
    pub specs: usize,
    /// Repeats per spec.
    pub repeats: usize,
    /// Specs whose repeated estimates were not all identical.
    pub inconsistent: Vec<TargetingSpec>,
    /// Sampling shortfalls: specs requested but not delivered because the
    /// catalog ran out of distinct (composable) options to sample.
    pub warnings: usize,
}

impl ConsistencyReport {
    /// True when every probed spec returned identical estimates.
    pub fn is_consistent(&self) -> bool {
        self.inconsistent.is_empty()
    }
}

/// Repeats estimates `repeats` times for `n_individual` random individual
/// options and `n_composed` random pairs (paper: 100 × (20 + 20)).
///
/// Sampled specs are deduplicated — probing the same spec twice would
/// double-count its repeats without adding evidence. When the catalog is
/// too small to deliver the requested number of *distinct* specs, the
/// report's `warnings` counts the shortfall instead of looping forever.
pub fn consistency_probe(
    target: &AuditTarget,
    seed: u64,
    n_individual: usize,
    n_composed: usize,
    repeats: usize,
) -> Result<ConsistencyReport, SourceError> {
    let _span = Tracer::global().span("probe:consistency");
    let mut rng = AuditRng::seed_from_u64(seed);
    let n = target.targeting.catalog_len();
    let mut specs = Vec::with_capacity(n_individual + n_composed);
    // Dedup on the attribute-id shape: (id, MAX) for singles, ordered
    // (min, max) for pairs.
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut attempts = 0;
    while specs.len() < n_individual && attempts < n_individual * 50 {
        attempts += 1;
        let id = rng.gen_range(0..n);
        if seen.insert((id, u32::MAX)) {
            specs.push(TargetingSpec::and_of([AttributeId(id)]));
        }
    }
    let individual_delivered = specs.len();
    let mut attempts = 0;
    while specs.len() < individual_delivered + n_composed && attempts < n_composed * 50 {
        attempts += 1;
        let a = AttributeId(rng.gen_range(0..n));
        let b = AttributeId(rng.gen_range(0..n));
        if target.targeting.can_compose(a, b) && seen.insert((a.0.min(b.0), a.0.max(b.0))) {
            specs.push(TargetingSpec::and_of([a, b]));
        }
    }
    let warnings = (n_individual + n_composed).saturating_sub(specs.len());
    if warnings > 0 {
        probe_warnings_total().add(warnings as u64);
        adcomp_obs::warn!(
            "consistency probe sampled {} of {} requested specs \
             (catalog ran out of distinct options)",
            specs.len(),
            n_individual + n_composed
        );
    }
    let mut inconsistent = Vec::new();
    if target.prefers_batching() {
        // Batched: each spec's repeats go out as one submission. The
        // verdict is identical to the serial loop (any differing repeat
        // marks the spec inconsistent), but an inconsistent platform may
        // see up to `repeats − 1` more queries per flagged spec than the
        // early-breaking serial loop — acceptable, since flagging ends
        // the audit of that platform anyway. Memoization must stay off
        // here (a cache would make any platform look consistent); this
        // probes whatever source the target carries, uncached unless the
        // caller explicitly wrapped it.
        for spec in &specs {
            let queries = vec![target.translate(spec).into_owned(); repeats.max(1)];
            let mut results = target.run_measurement_batch(queries).into_iter();
            let first = results.next().expect("at least one repeat")?;
            for result in results {
                if result? != first {
                    inconsistent.push(spec.clone());
                    break;
                }
            }
        }
    } else {
        for spec in &specs {
            let first = target.total_estimate(spec)?;
            for _ in 1..repeats {
                if target.total_estimate(spec)? != first {
                    inconsistent.push(spec.clone());
                    break;
                }
            }
        }
    }
    if !inconsistent.is_empty() {
        adcomp_obs::warn!(
            "consistency probe found {} inconsistent spec(s): \
             estimates may be noised",
            inconsistent.len()
        );
    }
    Ok(ConsistencyReport {
        specs: specs.len(),
        repeats,
        inconsistent,
        warnings,
    })
}

/// Inferred granularity of a platform's estimates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GranularityReport {
    /// Distinct non-zero estimate values observed.
    pub observed_values: usize,
    /// Smallest non-zero estimate observed (the reporting floor).
    pub min_nonzero: Option<u64>,
    /// Whether a zero estimate was ever returned.
    pub saw_zero: bool,
    /// Maximum number of significant digits per decade (index = decade,
    /// i.e. `10^index ..< 10^(index+1)`); `0` for unobserved decades.
    pub digits_per_decade: Vec<u32>,
}

impl GranularityReport {
    /// Maximum significant digits across all decades.
    pub fn max_significant_digits(&self) -> u32 {
        self.digits_per_decade.iter().copied().max().unwrap_or(0)
    }
}

/// Number of significant digits in a positive integer (trailing zeros
/// stripped).
pub fn significant_digits(mut value: u64) -> u32 {
    assert!(value > 0, "significant digits of zero are undefined");
    while value.is_multiple_of(10) {
        value /= 10;
    }
    let mut digits = 0;
    while value > 0 {
        value /= 10;
        digits += 1;
    }
    digits
}

/// Infers the granularity ladder from a set of observed estimate values
/// (the experiments feed every estimate they ever received into this).
pub fn granularity_from_observations(values: impl IntoIterator<Item = u64>) -> GranularityReport {
    let mut distinct = std::collections::BTreeSet::new();
    let mut saw_zero = false;
    for v in values {
        if v == 0 {
            saw_zero = true;
        } else {
            distinct.insert(v);
        }
    }
    let mut digits_per_decade = vec![0u32; 20];
    for &v in &distinct {
        let decade = (v as f64).log10().floor() as usize;
        let d = significant_digits(v);
        if d > digits_per_decade[decade] {
            digits_per_decade[decade] = d;
        }
    }
    while digits_per_decade.last() == Some(&0) {
        digits_per_decade.pop();
    }
    GranularityReport {
        observed_values: distinct.len(),
        min_nonzero: distinct.first().copied(),
        saw_zero,
        digits_per_decade,
    }
}

/// SplitMix64 — used to derive an independent RNG per spec index, so the
/// probe's spec sequence is a pure function of `(seed, index)` and a
/// resumed run regenerates specs without replaying RNG state.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The random spec scheduled at `index` of a granularity probe: 50/50 a
/// single attribute or an AND pair; `None` when the pair drawn at this
/// index is not composable on the target (the index is skipped for free).
fn spec_at(target: &AuditTarget, seed: u64, index: u64) -> Option<TargetingSpec> {
    let mut rng = AuditRng::seed_from_u64(mix(seed
        ^ 0x9A17
        ^ index.wrapping_mul(0xA076_1D64_78BD_642F)));
    let n = target.targeting.catalog_len();
    let a = AttributeId(rng.gen_range(0..n));
    if rng.gen_bool(0.5) {
        Some(TargetingSpec::and_of([a]))
    } else {
        let b = AttributeId(rng.gen_range(0..n));
        target
            .targeting
            .can_compose(a, b)
            .then(|| TargetingSpec::and_of([a, b]))
    }
}

/// Serialisable snapshot of a [`GranularityProbe`] in flight.
///
/// The format is a plain text file (version header, one field per line,
/// then one observation per line), written atomically via a `.tmp`
/// sibling — robust to being killed mid-save.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeCheckpoint {
    /// The probe's seed (resuming with a different seed is an error).
    pub seed: u64,
    /// Total observations the probe is collecting.
    pub queries: usize,
    /// Next spec index to evaluate.
    pub next_index: u64,
    /// Queries abandoned by the resilience layer so far.
    pub skipped: u64,
    /// Estimates collected so far.
    pub observations: Vec<u64>,
}

const CHECKPOINT_HEADER: &str = "adcomp-granularity-checkpoint v1";

impl ProbeCheckpoint {
    /// The checkpoint's serialized form (the same text format `save`
    /// writes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        let _ = writeln!(out, "{CHECKPOINT_HEADER}");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "queries {}", self.queries);
        let _ = writeln!(out, "next_index {}", self.next_index);
        let _ = writeln!(out, "skipped {}", self.skipped);
        let _ = writeln!(out, "observations {}", self.observations.len());
        for v in &self.observations {
            let _ = writeln!(out, "{v}");
        }
        out.into_bytes()
    }

    /// Writes the checkpoint to `path` via
    /// [`write_atomic`](adcomp_store::write_atomic): unique temp
    /// sibling, `fsync`, atomic rename, directory `fsync`. The old
    /// rename-only path left a window where a crash could persist an
    /// empty or partial checkpoint; this one can't.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        adcomp_store::write_atomic(path, &self.to_bytes())
    }

    /// Saves the checkpoint into a [`RunStore`](adcomp_store::RunStore)
    /// slot named `name` — the durable home any experiment driver can
    /// use instead of a loose file (one store holds the run's estimates
    /// *and* its progress).
    pub fn save_to_store(&self, store: &adcomp_store::RunStore, name: &str) -> std::io::Result<()> {
        crate::recording::save_checkpoint(store, name, &self.to_bytes())
    }

    /// Loads the latest checkpoint saved under `name`, if any.
    pub fn load_from_store(
        store: &adcomp_store::RunStore,
        name: &str,
    ) -> std::io::Result<Option<ProbeCheckpoint>> {
        match crate::recording::load_checkpoint(store, name) {
            Some(bytes) => ProbeCheckpoint::from_bytes(&bytes).map(Some),
            None => Ok(None),
        }
    }

    /// Reads a checkpoint back from `path`.
    pub fn load(path: &Path) -> std::io::Result<ProbeCheckpoint> {
        ProbeCheckpoint::from_bytes(&std::fs::read(path)?)
    }

    /// Parses the serialized form produced by
    /// [`to_bytes`](ProbeCheckpoint::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> std::io::Result<ProbeCheckpoint> {
        use std::io::{Error, ErrorKind};
        let bad = |what: &str| Error::new(ErrorKind::InvalidData, format!("checkpoint: {what}"));
        let text = std::str::from_utf8(bytes).map_err(|_| bad("not utf-8"))?;
        let mut lines = text.lines();
        if lines.next() != Some(CHECKPOINT_HEADER) {
            return Err(bad("bad header"));
        }
        let mut field = |name: &str| -> std::io::Result<u64> {
            let line = lines.next().ok_or_else(|| bad("truncated"))?;
            let value = line
                .strip_prefix(name)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| bad(name))?;
            value.trim().parse().map_err(|_| bad(name))
        };
        let seed = field("seed")?;
        let queries = field("queries")? as usize;
        let next_index = field("next_index")?;
        let skipped = field("skipped")?;
        let count = field("observations")? as usize;
        let observations: Vec<u64> = lines
            .by_ref()
            .take(count)
            .map(|l| l.trim().parse().map_err(|_| bad("observation")))
            .collect::<Result<_, _>>()?;
        if observations.len() != count {
            return Err(bad("missing observations"));
        }
        Ok(ProbeCheckpoint {
            seed,
            queries,
            next_index,
            skipped,
            observations,
        })
    }
}

/// A resumable granularity probe.
///
/// The paper's granularity study is the audit's biggest query bill
/// (>80 000 calls); a crash near the end of a multi-day run must not
/// restart it. The probe's spec schedule is indexed — spec `i` is a pure
/// function of `(seed, i)` — so progress is just `(next_index,
/// observations)`: checkpoint those, and a resumed probe continues
/// exactly where the crash left off, never re-issuing an answered query.
/// Only the single query in flight at the kill is re-asked.
#[derive(Clone, Debug)]
pub struct GranularityProbe {
    seed: u64,
    queries: usize,
    next_index: u64,
    skipped: u64,
    observations: Vec<u64>,
}

impl GranularityProbe {
    /// A fresh probe collecting `queries` estimates.
    pub fn new(seed: u64, queries: usize) -> Self {
        GranularityProbe {
            seed,
            queries,
            next_index: 0,
            skipped: 0,
            observations: Vec::new(),
        }
    }

    /// Resumes from a checkpoint.
    pub fn resume(checkpoint: ProbeCheckpoint) -> Self {
        GranularityProbe {
            seed: checkpoint.seed,
            queries: checkpoint.queries,
            next_index: checkpoint.next_index,
            skipped: checkpoint.skipped,
            observations: checkpoint.observations,
        }
    }

    /// Snapshot of the current progress.
    pub fn checkpoint(&self) -> ProbeCheckpoint {
        ProbeCheckpoint {
            seed: self.seed,
            queries: self.queries,
            next_index: self.next_index,
            skipped: self.skipped,
            observations: self.observations.clone(),
        }
    }

    /// Whether every scheduled query has been answered or skipped.
    pub fn completed(&self) -> bool {
        self.observations.len() as u64 + self.skipped >= self.queries as u64
    }

    /// Estimates collected so far.
    pub fn observations(&self) -> &[u64] {
        &self.observations
    }

    /// Queries skipped (resilience-layer degradation) so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Runs until complete. On error the probe keeps its progress: save
    /// a [`checkpoint`](GranularityProbe::checkpoint) and
    /// [`resume`](GranularityProbe::resume) later. A query abandoned by
    /// the resilience layer ([`SourceError::Skipped`]) is counted and
    /// excluded from the ladder rather than aborting the probe.
    pub fn run(&mut self, target: &AuditTarget) -> Result<GranularityReport, SourceError> {
        let _span = Tracer::global().span("probe:granularity");
        let progress = ProgressReporter::new("granularity_probe", 1_000);
        if target.prefers_batching() {
            return self.run_batched(target, &progress);
        }
        while !self.completed() {
            let index = self.next_index;
            let Some(spec) = spec_at(target, self.seed, index) else {
                // Non-composable pair: the index is consumed, no query.
                self.next_index = index + 1;
                continue;
            };
            match target.total_estimate(&spec) {
                Ok(value) => {
                    self.observations.push(value);
                    self.next_index = index + 1;
                    progress.tick();
                }
                Err(SourceError::Skipped { .. }) => {
                    self.skipped += 1;
                    probe_skipped_total().inc();
                    self.next_index = index + 1;
                }
                // `next_index` still points at this spec: a resumed run
                // re-asks the unanswered query, and only that one.
                Err(e) => return Err(e),
            }
        }
        adcomp_obs::debug!("granularity_probe: {} queries answered", progress.done());
        Ok(self.report())
    }

    /// Chunk of the indexed schedule submitted per batch when an engine
    /// or natively batching source is attached. Bounds the memory of a
    /// paper-scale (>80 000 query) probe.
    const BATCH_CHUNK: u64 = 4_096;

    /// Batched form of [`run`](GranularityProbe::run). The indexed spec
    /// schedule makes this easy: observations land in index order, so
    /// results are identical to the serial walk. On a hard error,
    /// `next_index` points at the first unanswered index — the trade-off
    /// versus the serial walk is that up to a chunk of already-issued
    /// answers past the failure are discarded and re-asked on resume,
    /// which is why [`run_checkpointed`](GranularityProbe::run_checkpointed)
    /// (whose contract is exactly-once re-issue) stays serial.
    fn run_batched(
        &mut self,
        target: &AuditTarget,
        progress: &ProgressReporter,
    ) -> Result<GranularityReport, SourceError> {
        while !self.completed() {
            let outstanding = self.queries as u64 - (self.observations.len() as u64 + self.skipped);
            let mut indices = Vec::new();
            let mut queries = Vec::new();
            let mut index = self.next_index;
            while (queries.len() as u64) < outstanding.min(Self::BATCH_CHUNK) {
                if let Some(spec) = spec_at(target, self.seed, index) {
                    indices.push(index);
                    queries.push(target.translate(&spec).into_owned());
                }
                index += 1;
            }
            for (&index, result) in indices.iter().zip(target.run_measurement_batch(queries)) {
                match result {
                    Ok(value) => {
                        self.observations.push(value);
                        self.next_index = index + 1;
                        progress.tick();
                    }
                    Err(SourceError::Skipped { .. }) => {
                        self.skipped += 1;
                        probe_skipped_total().inc();
                        self.next_index = index + 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        adcomp_obs::debug!("granularity_probe: {} queries answered", progress.done());
        Ok(self.report())
    }

    /// Like [`run`](GranularityProbe::run), saving a checkpoint to
    /// `path` every `every` answered queries (and one final time), so a
    /// kill at any point loses at most `every − 1` answers.
    pub fn run_checkpointed(
        &mut self,
        target: &AuditTarget,
        path: &Path,
        every: usize,
    ) -> Result<GranularityReport, SourceError> {
        assert!(every > 0, "checkpoint interval must be positive");
        let _span = Tracer::global().span("probe:granularity");
        let progress = ProgressReporter::new("granularity_probe", 1_000);
        let mut since_save = 0usize;
        while !self.completed() {
            let index = self.next_index;
            let Some(spec) = spec_at(target, self.seed, index) else {
                self.next_index = index + 1;
                continue;
            };
            match target.total_estimate(&spec) {
                Ok(value) => {
                    self.observations.push(value);
                    self.next_index = index + 1;
                    progress.tick();
                }
                Err(SourceError::Skipped { .. }) => {
                    self.skipped += 1;
                    probe_skipped_total().inc();
                    self.next_index = index + 1;
                }
                Err(e) => {
                    let _ = self.checkpoint().save(path);
                    return Err(e);
                }
            }
            since_save += 1;
            if since_save >= every {
                self.checkpoint()
                    .save(path)
                    .map_err(|e| SourceError::Transport(format!("checkpoint save: {e}")))?;
                since_save = 0;
            }
        }
        self.checkpoint()
            .save(path)
            .map_err(|e| SourceError::Transport(format!("checkpoint save: {e}")))?;
        adcomp_obs::debug!("granularity_probe: {} queries answered", progress.done());
        Ok(self.report())
    }

    /// The granularity inferred from the observations so far.
    pub fn report(&self) -> GranularityReport {
        granularity_from_observations(self.observations.iter().copied())
    }
}

/// Runs a granularity probe by querying many random specs (individuals
/// and pairs) and collecting their estimates. One-shot convenience over
/// [`GranularityProbe`].
pub fn granularity_probe(
    target: &AuditTarget,
    seed: u64,
    queries: usize,
) -> Result<GranularityReport, SourceError> {
    GranularityProbe::new(seed, queries).run(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::AuditTarget;
    use adcomp_platform::{SimScale, Simulation};
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(45, SimScale::Test))
    }

    #[test]
    fn significant_digit_counting() {
        assert_eq!(significant_digits(1), 1);
        assert_eq!(significant_digits(1_000), 1);
        assert_eq!(significant_digits(1_200), 2);
        assert_eq!(significant_digits(123_000), 3);
        assert_eq!(significant_digits(101), 3);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn significant_digits_of_zero_panics() {
        let _ = significant_digits(0);
    }

    #[test]
    fn simulated_platforms_are_consistent() {
        // Paper finding: "across all three platforms, the returned
        // estimates are consistent."
        for p in sim().interfaces() {
            let target = AuditTarget::for_platform(p, sim());
            let report = consistency_probe(&target, 1, 5, 5, 10).unwrap();
            assert!(report.is_consistent(), "{} inconsistent", p.label());
            assert_eq!(report.specs, 10);
        }
    }

    #[test]
    fn granularity_matches_facebook_ladder() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let report = granularity_probe(&target, 2, 400).unwrap();
        assert!(
            report.max_significant_digits() <= 2,
            "facebook is 2 sig digits"
        );
        if let Some(min) = report.min_nonzero {
            assert!(min >= 1_000, "facebook floor is 1000, got {min}");
        }
    }

    #[test]
    fn granularity_matches_google_ladder() {
        let target = AuditTarget::for_platform(&sim().google, sim());
        let report = granularity_probe(&target, 3, 400).unwrap();
        // Below 100_000: one significant digit.
        for (decade, &d) in report.digits_per_decade.iter().enumerate().take(5) {
            assert!(d <= 1, "decade 10^{decade} has {d} digits on google");
        }
        assert!(report.max_significant_digits() <= 2);
    }

    /// Fails with a transport error exactly once, at call `fail_at`.
    struct FailOnceSource {
        inner: std::sync::Arc<dyn crate::source::EstimateSource>,
        calls: std::sync::atomic::AtomicU64,
        fail_at: u64,
    }

    impl crate::source::EstimateSource for FailOnceSource {
        fn label(&self) -> String {
            self.inner.label()
        }

        fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
            let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if call == self.fail_at {
                return Err(SourceError::Transport("injected crash".into()));
            }
            self.inner.estimate(spec)
        }

        fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
            self.inner.check(spec)
        }

        fn catalog_len(&self) -> u32 {
            self.inner.catalog_len()
        }

        fn attribute_name(&self, id: AttributeId) -> Option<String> {
            self.inner.attribute_name(id)
        }

        fn attribute_feature(&self, id: AttributeId) -> Option<adcomp_targeting::FeatureId> {
            self.inner.attribute_feature(id)
        }

        fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
            self.inner.can_compose(a, b)
        }

        fn supports_demographics(&self) -> bool {
            self.inner.supports_demographics()
        }
    }

    #[test]
    fn indexed_schedule_is_deterministic() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let a = granularity_probe(&target, 7, 60).unwrap();
        let b = granularity_probe(&target, 7, 60).unwrap();
        assert_eq!(a, b);
        let c = granularity_probe(&target, 8, 60).unwrap();
        assert_ne!(a.observed_values, 0);
        // Different seeds draw different specs (ladders may coincide, the
        // raw observation sets should not).
        let mut pa = GranularityProbe::new(7, 60);
        let mut pc = GranularityProbe::new(8, 60);
        pa.run(&target).unwrap();
        pc.run(&target).unwrap();
        assert_ne!(pa.observations(), pc.observations());
        let _ = c;
    }

    #[test]
    fn interrupted_probe_resumes_without_reissuing_answered_queries() {
        const QUERIES: usize = 40;
        let flaky = std::sync::Arc::new(FailOnceSource {
            inner: sim().linkedin.clone(),
            calls: std::sync::atomic::AtomicU64::new(0),
            fail_at: 17,
        });
        let target = AuditTarget::direct(flaky.clone());
        let clean = granularity_probe(
            &AuditTarget::for_platform(&sim().linkedin, sim()),
            5,
            QUERIES,
        )
        .unwrap();

        let mut probe = GranularityProbe::new(5, QUERIES);
        let err = probe.run(&target).unwrap_err();
        assert!(matches!(err, SourceError::Transport(_)));
        assert_eq!(
            probe.observations().len(),
            17,
            "answers before the crash are kept"
        );

        // Checkpoint survives a trip through disk.
        let path = std::env::temp_dir().join(format!(
            "adcomp-probe-ckpt-{}-{}.txt",
            std::process::id(),
            5
        ));
        probe.checkpoint().save(&path).unwrap();
        let restored = ProbeCheckpoint::load(&path).unwrap();
        assert_eq!(restored, probe.checkpoint());
        let _ = std::fs::remove_file(&path);

        let mut resumed = GranularityProbe::resume(restored);
        let report = resumed.run(&target).unwrap();
        assert_eq!(report, clean, "interruption must not change the result");
        // Every answered query was issued exactly once; only the one
        // in-flight at the crash was re-asked.
        assert_eq!(
            flaky.calls.load(std::sync::atomic::Ordering::SeqCst),
            QUERIES as u64 + 1
        );
    }

    #[test]
    fn checkpoint_load_rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("adcomp-probe-bad-{}.txt", std::process::id()));
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        assert!(ProbeCheckpoint::load(&path).is_err());
        std::fs::write(&path, format!("{CHECKPOINT_HEADER}\nseed 1\n")).unwrap();
        assert!(ProbeCheckpoint::load(&path).is_err(), "truncated file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_consistency_specs_are_collapsed() {
        // A 1-attribute catalog can deliver one individual spec and no
        // pairs; the rest of the request shows up as warnings.
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let report = consistency_probe(&target, 3, 5, 5, 2).unwrap();
        assert_eq!(report.specs + report.warnings, 10);
        // On a full-size catalog the sampler should find 10 distinct specs.
        assert_eq!(
            report.warnings, 0,
            "552-attribute catalog has plenty of distinct specs"
        );
    }

    #[test]
    fn granularity_from_observations_handles_zero_and_minimum() {
        let r = granularity_from_observations([0, 300, 310, 4_600, 12_000]);
        assert!(r.saw_zero);
        assert_eq!(r.min_nonzero, Some(300));
        assert_eq!(r.observed_values, 4);
        assert_eq!(r.max_significant_digits(), 2);
    }

    #[test]
    fn empty_observations() {
        let r = granularity_from_observations([]);
        assert_eq!(r.observed_values, 0);
        assert_eq!(r.min_nonzero, None);
        assert!(!r.saw_zero);
        assert_eq!(r.max_significant_digits(), 0);
    }
}
