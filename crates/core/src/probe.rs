//! Black-box characterisation of the platforms' size estimates.
//!
//! Before trusting the estimates, the paper studies them (§3,
//! "Understanding size estimates"): 100 back-to-back repeated calls on 20
//! random options and 20 random compositions per platform to check
//! **consistency**, and the union of >80 000 distinct calls to infer the
//! **granularity** (significant-digit ladder and reporting minimum).
//! These probes run the same study against any [`EstimateSource`](crate::source::EstimateSource) and are
//! the audit's guard against obfuscated (noised) estimates.

use adcomp_targeting::{AttributeId, TargetingSpec};
use rand::{Rng, SeedableRng};

use crate::discovery::AuditRng;
use crate::source::{AuditTarget, SourceError};

/// Result of the consistency probe.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsistencyReport {
    /// Specs probed.
    pub specs: usize,
    /// Repeats per spec.
    pub repeats: usize,
    /// Specs whose repeated estimates were not all identical.
    pub inconsistent: Vec<TargetingSpec>,
}

impl ConsistencyReport {
    /// True when every probed spec returned identical estimates.
    pub fn is_consistent(&self) -> bool {
        self.inconsistent.is_empty()
    }
}

/// Repeats estimates `repeats` times for `n_individual` random individual
/// options and `n_composed` random pairs (paper: 100 × (20 + 20)).
pub fn consistency_probe(
    target: &AuditTarget,
    seed: u64,
    n_individual: usize,
    n_composed: usize,
    repeats: usize,
) -> Result<ConsistencyReport, SourceError> {
    let mut rng = AuditRng::seed_from_u64(seed);
    let n = target.targeting.catalog_len();
    let mut specs = Vec::with_capacity(n_individual + n_composed);
    for _ in 0..n_individual {
        specs.push(TargetingSpec::and_of([AttributeId(rng.gen_range(0..n))]));
    }
    let mut attempts = 0;
    while specs.len() < n_individual + n_composed && attempts < n_composed * 50 {
        attempts += 1;
        let a = AttributeId(rng.gen_range(0..n));
        let b = AttributeId(rng.gen_range(0..n));
        if target.targeting.can_compose(a, b) {
            specs.push(TargetingSpec::and_of([a, b]));
        }
    }
    let mut inconsistent = Vec::new();
    for spec in &specs {
        let first = target.total_estimate(spec)?;
        for _ in 1..repeats {
            if target.total_estimate(spec)? != first {
                inconsistent.push(spec.clone());
                break;
            }
        }
    }
    Ok(ConsistencyReport { specs: specs.len(), repeats, inconsistent })
}

/// Inferred granularity of a platform's estimates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GranularityReport {
    /// Distinct non-zero estimate values observed.
    pub observed_values: usize,
    /// Smallest non-zero estimate observed (the reporting floor).
    pub min_nonzero: Option<u64>,
    /// Whether a zero estimate was ever returned.
    pub saw_zero: bool,
    /// Maximum number of significant digits per decade (index = decade,
    /// i.e. `10^index ..< 10^(index+1)`); `0` for unobserved decades.
    pub digits_per_decade: Vec<u32>,
}

impl GranularityReport {
    /// Maximum significant digits across all decades.
    pub fn max_significant_digits(&self) -> u32 {
        self.digits_per_decade.iter().copied().max().unwrap_or(0)
    }
}

/// Number of significant digits in a positive integer (trailing zeros
/// stripped).
pub fn significant_digits(mut value: u64) -> u32 {
    assert!(value > 0, "significant digits of zero are undefined");
    while value.is_multiple_of(10) {
        value /= 10;
    }
    let mut digits = 0;
    while value > 0 {
        value /= 10;
        digits += 1;
    }
    digits
}

/// Infers the granularity ladder from a set of observed estimate values
/// (the experiments feed every estimate they ever received into this).
pub fn granularity_from_observations(values: impl IntoIterator<Item = u64>) -> GranularityReport {
    let mut distinct = std::collections::BTreeSet::new();
    let mut saw_zero = false;
    for v in values {
        if v == 0 {
            saw_zero = true;
        } else {
            distinct.insert(v);
        }
    }
    let mut digits_per_decade = vec![0u32; 20];
    for &v in &distinct {
        let decade = (v as f64).log10().floor() as usize;
        let d = significant_digits(v);
        if d > digits_per_decade[decade] {
            digits_per_decade[decade] = d;
        }
    }
    while digits_per_decade.last() == Some(&0) {
        digits_per_decade.pop();
    }
    GranularityReport {
        observed_values: distinct.len(),
        min_nonzero: distinct.first().copied(),
        saw_zero,
        digits_per_decade,
    }
}

/// Runs a granularity probe by querying many random specs (individuals
/// and pairs) and collecting their estimates.
pub fn granularity_probe(
    target: &AuditTarget,
    seed: u64,
    queries: usize,
) -> Result<GranularityReport, SourceError> {
    let mut rng = AuditRng::seed_from_u64(seed ^ 0x9A17);
    let n = target.targeting.catalog_len();
    let mut observations = Vec::with_capacity(queries);
    while observations.len() < queries {
        let a = AttributeId(rng.gen_range(0..n));
        let spec = if rng.gen_bool(0.5) {
            TargetingSpec::and_of([a])
        } else {
            let b = AttributeId(rng.gen_range(0..n));
            if !target.targeting.can_compose(a, b) {
                continue;
            }
            TargetingSpec::and_of([a, b])
        };
        observations.push(target.total_estimate(&spec)?);
    }
    Ok(granularity_from_observations(observations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::AuditTarget;
    use adcomp_platform::{SimScale, Simulation};
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(45, SimScale::Test))
    }

    #[test]
    fn significant_digit_counting() {
        assert_eq!(significant_digits(1), 1);
        assert_eq!(significant_digits(1_000), 1);
        assert_eq!(significant_digits(1_200), 2);
        assert_eq!(significant_digits(123_000), 3);
        assert_eq!(significant_digits(101), 3);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn significant_digits_of_zero_panics() {
        let _ = significant_digits(0);
    }

    #[test]
    fn simulated_platforms_are_consistent() {
        // Paper finding: "across all three platforms, the returned
        // estimates are consistent."
        for p in sim().interfaces() {
            let target = AuditTarget::for_platform(p, sim());
            let report = consistency_probe(&target, 1, 5, 5, 10).unwrap();
            assert!(report.is_consistent(), "{} inconsistent", p.label());
            assert_eq!(report.specs, 10);
        }
    }

    #[test]
    fn granularity_matches_facebook_ladder() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let report = granularity_probe(&target, 2, 400).unwrap();
        assert!(report.max_significant_digits() <= 2, "facebook is 2 sig digits");
        if let Some(min) = report.min_nonzero {
            assert!(min >= 1_000, "facebook floor is 1000, got {min}");
        }
    }

    #[test]
    fn granularity_matches_google_ladder() {
        let target = AuditTarget::for_platform(&sim().google, sim());
        let report = granularity_probe(&target, 3, 400).unwrap();
        // Below 100_000: one significant digit.
        for (decade, &d) in report.digits_per_decade.iter().enumerate().take(5) {
            assert!(d <= 1, "decade 10^{decade} has {d} digits on google");
        }
        assert!(report.max_significant_digits() <= 2);
    }

    #[test]
    fn granularity_from_observations_handles_zero_and_minimum() {
        let r = granularity_from_observations([0, 300, 310, 4_600, 12_000]);
        assert!(r.saw_zero);
        assert_eq!(r.min_nonzero, Some(300));
        assert_eq!(r.observed_values, 4);
        assert_eq!(r.max_significant_digits(), 2);
    }

    #[test]
    fn empty_observations() {
        let r = granularity_from_observations([]);
        assert_eq!(r.observed_values, 0);
        assert_eq!(r.min_nonzero, None);
        assert!(!r.saw_zero);
        assert_eq!(r.max_significant_digits(), 0);
    }
}
