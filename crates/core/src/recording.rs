//! Durable encoding of audit queries: the bridge between the audit's
//! domain types and the byte-generic [`RunStore`].
//!
//! The store persists `(kind, key, payload)` records; this module fixes
//! what those mean for an audit run:
//!
//! * **Keys** are a stable FNV-1a 64 hash over a domain-separation tag,
//!   the interface label, and (for estimates) the canonical encoding of
//!   the **normalized** [`TargetingSpec`] — the same canonical form the
//!   [`MemoCache`](crate::engine::MemoCache) keys on, so syntactically
//!   different but semantically identical specs share one record.
//!   Attribute ids are interface-local, which is why every key is
//!   salted with the interface label.
//! * **Estimate payloads** carry the encoded spec alongside the value,
//!   so a recorded run can be *iterated* (replay, cache preload, drift
//!   diffs) without inverting any hash.
//! * **Interface metadata** records everything [`ReplaySource`]
//!   (crate::source::ReplaySource) needs to stand in for a live
//!   platform — catalog size, attribute names and features, composition
//!   and demographic capabilities — so replay runs with the platform
//!   layer fully detached.
//!
//! The byte format is deliberately simple (big-endian integers,
//! length-prefixed strings) and versioned by the record `kind`; the
//! store's frames already provide checksums and crash-safety.

use std::io;
use std::sync::Arc;

use adcomp_population::{AgeBucket, Gender};
use adcomp_store::{RunStore, SnapshotIndex};
use adcomp_targeting::{AttributeId, FeatureId, Location, OrGroup, TargetingSpec};

use crate::source::EstimateSource;

/// Record kind: one rounded estimate for one normalized spec.
pub const KIND_ESTIMATE: u8 = 1;
/// Record kind: interface metadata (catalog, capabilities).
pub const KIND_META: u8 = 2;
/// Record kind: audit-target layout (targeting/measurement labels and
/// the id translation between them).
pub const KIND_TARGET: u8 = 3;
/// Record kind: an experiment checkpoint blob (opaque to the store).
pub const KIND_CHECKPOINT: u8 = 4;
/// Record kind: a scheduler unit lifecycle event (grant, completion,
/// requeue, failure) — the distributed coordinator's audit trail.
pub const KIND_SCHED_UNIT: u8 = 5;
/// Record kind: an audit-epoch lifecycle event (started, completed,
/// drift checked, alert raised, degraded) — the continuous-audit
/// daemon's crash-recovery journal.
pub const KIND_EPOCH: u8 = 6;

/// FNV-1a 64 — stable across runs, platforms, and Rust versions
/// (`DefaultHasher` guarantees none of that).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn salted(tag: &[u8], label: &str, rest: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(tag.len() + label.len() + rest.len() + 2);
    buf.extend_from_slice(tag);
    buf.push(0);
    buf.extend_from_slice(label.as_bytes());
    buf.push(0);
    buf.extend_from_slice(rest);
    fnv1a(&buf)
}

/// Content-hash key of `spec` on the interface named `label`. The spec
/// is normalized before encoding, so any spelling of the same audience
/// maps to the same record.
pub fn spec_key(label: &str, spec: &TargetingSpec) -> u64 {
    normalized_spec_key(label, &spec.normalized())
}

/// [`spec_key`] for a spec the caller has already normalized — the hot
/// path for sources that need the normalized form anyway.
pub fn normalized_spec_key(label: &str, normalized: &TargetingSpec) -> u64 {
    salted(b"est", label, &encode_spec(normalized))
}

/// Key of an interface's metadata record.
pub fn meta_key(label: &str) -> u64 {
    salted(b"meta", label, &[])
}

/// Key of an audit target's layout record, by its targeting label.
pub fn target_key(label: &str) -> u64 {
    salted(b"target", label, &[])
}

/// Key of a named checkpoint blob.
pub fn checkpoint_key(name: &str) -> u64 {
    salted(b"ckpt", name, &[])
}

/// Key of the `seq`-th scheduler event in journal scope `scope` (one
/// scope per sharded batch). Every event gets its own key so the whole
/// trail survives in the store's latest-wins keyed view.
pub fn sched_event_key(scope: &str, seq: u64) -> u64 {
    salted(b"sched", scope, &seq.to_be_bytes())
}

/// Key of an epoch lifecycle event in daemon scope `scope`, keyed per
/// `(epoch, stage)` so the store's latest-wins view makes every stage
/// idempotent across restarts: re-journaling "alert raised for epoch 3"
/// after a crash *overwrites* the first record instead of raising a
/// second alert.
pub fn epoch_event_key(scope: &str, epoch: u64, stage: u8) -> u64 {
    let mut rest = [0u8; 9];
    rest[..8].copy_from_slice(&epoch.to_be_bytes());
    rest[8] = stage;
    salted(b"epoch", scope, &rest)
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("recorded run: {what}"))
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.off.checked_add(n).ok_or_else(|| bad("overflow"))?;
        if end > self.bytes.len() {
            return Err(bad("truncated payload"));
        }
        let slice = &self.bytes[self.off..end];
        self.off = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| bad("non-utf8 string"))
    }

    fn done(&self) -> bool {
        self.off == self.bytes.len()
    }
}

/// Canonical byte encoding of a spec. Callers should pass the
/// [normalized](TargetingSpec::normalized) form; [`spec_key`] does.
pub fn encode_spec(spec: &TargetingSpec) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + 4 * spec.include.len());
    let gender_mask = match &spec.demographics.genders {
        None => 0xFF,
        Some(gs) => gs.iter().fold(0u8, |m, g| m | 1 << g.index()),
    };
    let age_mask = match &spec.demographics.ages {
        None => 0xFF,
        Some(ags) => ags.iter().fold(0u8, |m, a| m | 1 << a.index()),
    };
    buf.push(gender_mask);
    buf.push(age_mask);
    buf.push(match spec.demographics.location {
        Location::UnitedStates => 0,
    });
    put_u32(&mut buf, spec.include.len() as u32);
    for group in &spec.include {
        put_u32(&mut buf, group.attributes.len() as u32);
        for id in &group.attributes {
            put_u32(&mut buf, id.0);
        }
    }
    put_u32(&mut buf, spec.exclude.len() as u32);
    for id in &spec.exclude {
        put_u32(&mut buf, id.0);
    }
    buf
}

fn decode_spec_from(r: &mut Reader<'_>) -> io::Result<TargetingSpec> {
    let gender_mask = r.u8()?;
    let age_mask = r.u8()?;
    let location = match r.u8()? {
        0 => Location::UnitedStates,
        _ => return Err(bad("unknown location")),
    };
    let genders = if gender_mask == 0xFF {
        None
    } else {
        Some(
            Gender::ALL
                .into_iter()
                .filter(|g| gender_mask & (1 << g.index()) != 0)
                .collect(),
        )
    };
    let ages = if age_mask == 0xFF {
        None
    } else {
        Some(
            AgeBucket::ALL
                .into_iter()
                .filter(|a| age_mask & (1 << a.index()) != 0)
                .collect(),
        )
    };
    let n_groups = r.u32()? as usize;
    let mut include = Vec::with_capacity(n_groups.min(1024));
    for _ in 0..n_groups {
        let n = r.u32()? as usize;
        let mut attributes = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            attributes.push(AttributeId(r.u32()?));
        }
        include.push(OrGroup { attributes });
    }
    let n_excl = r.u32()? as usize;
    let mut exclude = Vec::with_capacity(n_excl.min(1024));
    for _ in 0..n_excl {
        exclude.push(AttributeId(r.u32()?));
    }
    Ok(TargetingSpec {
        demographics: adcomp_targeting::DemographicSpec {
            genders,
            ages,
            location,
        },
        include,
        exclude,
    })
}

/// Decodes a spec produced by [`encode_spec`].
pub fn decode_spec(bytes: &[u8]) -> io::Result<TargetingSpec> {
    let mut r = Reader::new(bytes);
    let spec = decode_spec_from(&mut r)?;
    if !r.done() {
        return Err(bad("trailing bytes after spec"));
    }
    Ok(spec)
}

/// Payload of a [`KIND_ESTIMATE`] record: the encoded normalized spec
/// plus the rounded estimate.
pub fn encode_estimate(spec: &TargetingSpec, value: u64) -> Vec<u8> {
    let spec_bytes = encode_spec(spec);
    let mut buf = Vec::with_capacity(4 + spec_bytes.len() + 8);
    put_u32(&mut buf, spec_bytes.len() as u32);
    buf.extend_from_slice(&spec_bytes);
    buf.extend_from_slice(&value.to_be_bytes());
    buf
}

/// Decodes a [`KIND_ESTIMATE`] payload back into `(spec, value)`.
pub fn decode_estimate(bytes: &[u8]) -> io::Result<(TargetingSpec, u64)> {
    let mut r = Reader::new(bytes);
    let spec_len = r.u32()? as usize;
    let spec = decode_spec(r.take(spec_len)?)?;
    let value = r.u64()?;
    if !r.done() {
        return Err(bad("trailing bytes after estimate"));
    }
    Ok((spec, value))
}

/// Everything a replay needs to know about an interface without the
/// platform behind it: identity, catalog, and capability flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceMeta {
    /// Report label ("Facebook", "FB-restricted", …).
    pub label: String,
    /// Whether the interface accepts gender/age constraints.
    pub supports_demographics: bool,
    /// Whether two attributes of the same feature may be AND-composed.
    pub same_feature_and: bool,
    /// Attribute names, indexed by [`AttributeId`].
    pub names: Vec<String>,
    /// Attribute features, indexed by [`AttributeId`] (`u16::MAX` when
    /// the source reported none).
    pub features: Vec<u16>,
}

impl InterfaceMeta {
    /// Captures the metadata of a live source by interrogating its
    /// catalog (plus one `can_compose` probe to learn the same-feature
    /// composition rule — no estimate queries are issued).
    pub fn capture(source: &dyn EstimateSource) -> InterfaceMeta {
        let n = source.catalog_len();
        let names = (0..n)
            .map(|i| source.attribute_name(AttributeId(i)).unwrap_or_default())
            .collect();
        let features: Vec<u16> = (0..n)
            .map(|i| {
                source
                    .attribute_feature(AttributeId(i))
                    .map_or(u16::MAX, |f| f.0)
            })
            .collect();
        let mut first_of = std::collections::HashMap::new();
        let mut same_feature_and = false;
        for (i, &f) in features.iter().enumerate() {
            if f == u16::MAX {
                continue;
            }
            match first_of.entry(f) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    same_feature_and =
                        source.can_compose(AttributeId(*e.get() as u32), AttributeId(i as u32));
                    break;
                }
            }
        }
        InterfaceMeta {
            label: source.label(),
            supports_demographics: source.supports_demographics(),
            same_feature_and,
            names,
            features,
        }
    }

    /// Serializes the metadata as a [`KIND_META`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_str(&mut buf, &self.label);
        buf.push(u8::from(self.supports_demographics) | (u8::from(self.same_feature_and) << 1));
        put_u32(&mut buf, self.names.len() as u32);
        for (name, &feature) in self.names.iter().zip(&self.features) {
            buf.extend_from_slice(&feature.to_be_bytes());
            put_str(&mut buf, name);
        }
        buf
    }

    /// Decodes a [`KIND_META`] payload.
    pub fn decode(bytes: &[u8]) -> io::Result<InterfaceMeta> {
        let mut r = Reader::new(bytes);
        let label = r.str()?;
        let flags = r.u8()?;
        let n = r.u32()? as usize;
        let mut names = Vec::with_capacity(n.min(4096));
        let mut features = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            features.push(r.u16()?);
            names.push(r.str()?);
        }
        if !r.done() {
            return Err(bad("trailing bytes after metadata"));
        }
        Ok(InterfaceMeta {
            label,
            supports_demographics: flags & 1 != 0,
            same_feature_and: flags & 2 != 0,
            names,
            features,
        })
    }

    /// Catalog size.
    pub fn catalog_len(&self) -> u32 {
        self.names.len() as u32
    }

    /// Replays the interface's composition rule.
    pub fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        let n = self.catalog_len();
        if a == b || a.0 >= n || b.0 >= n {
            return false;
        }
        if self.same_feature_and {
            return true;
        }
        let (fa, fb) = (self.features[a.0 as usize], self.features[b.0 as usize]);
        fa != u16::MAX && fb != u16::MAX && fa != fb
    }

    /// Attribute feature, replayed.
    pub fn feature(&self, id: AttributeId) -> Option<FeatureId> {
        match self.features.get(id.0 as usize) {
            Some(&f) if f != u16::MAX => Some(FeatureId(f)),
            _ => None,
        }
    }
}

/// Layout of an [`AuditTarget`](crate::source::AuditTarget): which
/// interface was audited, which one measured, and the id translation
/// between them (the restricted-Facebook case).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetLayout {
    /// Label of the audited (targeting) interface.
    pub targeting: String,
    /// Label of the measurement interface.
    pub measurement: String,
    /// `id_map[i]` = attribute `i`'s id on the measurement interface,
    /// when the interfaces differ.
    pub id_map: Option<Vec<AttributeId>>,
}

impl TargetLayout {
    /// Serializes the layout as a [`KIND_TARGET`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_str(&mut buf, &self.targeting);
        put_str(&mut buf, &self.measurement);
        match &self.id_map {
            None => buf.push(0),
            Some(map) => {
                buf.push(1);
                put_u32(&mut buf, map.len() as u32);
                for id in map {
                    put_u32(&mut buf, id.0);
                }
            }
        }
        buf
    }

    /// Decodes a [`KIND_TARGET`] payload.
    pub fn decode(bytes: &[u8]) -> io::Result<TargetLayout> {
        let mut r = Reader::new(bytes);
        let targeting = r.str()?;
        let measurement = r.str()?;
        let id_map = match r.u8()? {
            0 => None,
            1 => {
                let n = r.u32()? as usize;
                let mut map = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    map.push(AttributeId(r.u32()?));
                }
                Some(map)
            }
            _ => return Err(bad("unknown id-map tag")),
        };
        if !r.done() {
            return Err(bad("trailing bytes after target layout"));
        }
        Ok(TargetLayout {
            targeting,
            measurement,
            id_map,
        })
    }
}

/// Looks up the recorded estimate for `key` in a store snapshot.
pub fn estimate_in(index: &SnapshotIndex, key: u64) -> Option<u64> {
    match index.get(key) {
        Some((KIND_ESTIMATE, payload)) => decode_estimate(payload).ok().map(|(_, v)| v),
        _ => None,
    }
}

/// Visits every recorded `(spec, value)` estimate belonging to the
/// interface named `label`, in deterministic (key) order.
///
/// Estimate keys are label-salted, so membership is verified by
/// re-deriving the key from the decoded spec — records of other
/// interfaces never match.
pub fn each_estimate_in(index: &SnapshotIndex, label: &str, mut f: impl FnMut(TargetingSpec, u64)) {
    for (key, kind, payload) in index.iter() {
        if kind != KIND_ESTIMATE {
            continue;
        }
        if let Ok((spec, value)) = decode_estimate(payload) {
            if spec_key(label, &spec) == key {
                f(spec, value);
            }
        }
    }
}

/// Labels of every interface whose metadata the run recorded, in
/// deterministic (sorted) order.
pub fn labels_in(index: &SnapshotIndex) -> Vec<String> {
    let mut labels: Vec<String> = index
        .iter()
        .filter(|(_, kind, _)| *kind == KIND_META)
        .filter_map(|(_, _, payload)| InterfaceMeta::decode(payload).ok())
        .map(|m| m.label)
        .collect();
    labels.sort();
    labels
}

/// Loads the [`InterfaceMeta`] recorded for `label`, if any.
pub fn meta_in(index: &SnapshotIndex, label: &str) -> io::Result<Option<InterfaceMeta>> {
    match index.get(meta_key(label)) {
        Some((KIND_META, payload)) => InterfaceMeta::decode(payload).map(Some),
        Some((kind, _)) => Err(bad(&format!("metadata key holds kind {kind}"))),
        None => Ok(None),
    }
}

/// Records an interface's metadata (idempotent: latest wins, and the
/// metadata of a deterministic interface never changes within a run).
pub fn record_meta(store: &RunStore, meta: &InterfaceMeta) -> io::Result<()> {
    store.append(KIND_META, meta_key(&meta.label), &meta.encode())
}

/// Records an audit target's layout under its targeting label.
pub fn record_layout(store: &RunStore, layout: &TargetLayout) -> io::Result<()> {
    store.append(KIND_TARGET, target_key(&layout.targeting), &layout.encode())
}

/// Loads the target layout recorded under `targeting_label`.
pub fn layout_in(index: &SnapshotIndex, targeting_label: &str) -> io::Result<Option<TargetLayout>> {
    match index.get(target_key(targeting_label)) {
        Some((KIND_TARGET, payload)) => TargetLayout::decode(payload).map(Some),
        Some((kind, _)) => Err(bad(&format!("target key holds kind {kind}"))),
        None => Ok(None),
    }
}

/// Saves an opaque checkpoint blob under `name` (latest wins), giving
/// every experiment driver the crash-safe checkpoint slot the
/// granularity probe used to hand-roll.
pub fn save_checkpoint(store: &RunStore, name: &str, bytes: &[u8]) -> io::Result<()> {
    store.append(KIND_CHECKPOINT, checkpoint_key(name), bytes)?;
    store.sync()
}

/// Loads the latest checkpoint blob saved under `name`.
pub fn load_checkpoint(store: &RunStore, name: &str) -> Option<Vec<u8>> {
    match store.get(checkpoint_key(name)) {
        Some((KIND_CHECKPOINT, payload)) => Some(payload),
        _ => None,
    }
}

/// One scheduler unit lifecycle event, as journaled under
/// [`KIND_SCHED_UNIT`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedEvent {
    /// Unit granted to a worker (attempt is 1-based).
    Granted {
        /// Unit id within the journal scope.
        unit: u64,
        /// Grant count for this unit.
        attempt: u32,
        /// Worker label (`endpoint#n`).
        worker: String,
    },
    /// Unit fully completed with `slots` answered.
    Completed {
        /// Unit id within the journal scope.
        unit: u64,
        /// Worker label.
        worker: String,
        /// Slots answered under the accepted completion.
        slots: u32,
    },
    /// Unit went back on the queue.
    Requeued {
        /// Unit id within the journal scope.
        unit: u64,
        /// Worker label that held the lapsed or partial lease.
        worker: String,
        /// `"partial"` or `"lease expired"`.
        reason: String,
    },
    /// Unit exhausted its attempts with `slots` unanswered.
    Failed {
        /// Unit id within the journal scope.
        unit: u64,
        /// Worker label on the final attempt.
        worker: String,
        /// Slots left unanswered.
        slots: u32,
    },
}

impl SchedEvent {
    /// Byte encoding for a [`KIND_SCHED_UNIT`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            SchedEvent::Granted {
                unit,
                attempt,
                worker,
            } => {
                buf.push(1);
                buf.extend_from_slice(&unit.to_be_bytes());
                put_u32(&mut buf, *attempt);
                put_str(&mut buf, worker);
            }
            SchedEvent::Completed {
                unit,
                worker,
                slots,
            } => {
                buf.push(2);
                buf.extend_from_slice(&unit.to_be_bytes());
                put_u32(&mut buf, *slots);
                put_str(&mut buf, worker);
            }
            SchedEvent::Requeued {
                unit,
                worker,
                reason,
            } => {
                buf.push(3);
                buf.extend_from_slice(&unit.to_be_bytes());
                put_str(&mut buf, worker);
                put_str(&mut buf, reason);
            }
            SchedEvent::Failed {
                unit,
                worker,
                slots,
            } => {
                buf.push(4);
                buf.extend_from_slice(&unit.to_be_bytes());
                put_u32(&mut buf, *slots);
                put_str(&mut buf, worker);
            }
        }
        buf
    }

    /// Decodes a [`KIND_SCHED_UNIT`] payload.
    pub fn decode(bytes: &[u8]) -> io::Result<SchedEvent> {
        let mut r = Reader::new(bytes);
        let event = match r.u8()? {
            1 => SchedEvent::Granted {
                unit: r.u64()?,
                attempt: r.u32()?,
                worker: r.str()?,
            },
            2 => {
                let unit = r.u64()?;
                let slots = r.u32()?;
                SchedEvent::Completed {
                    unit,
                    worker: r.str()?,
                    slots,
                }
            }
            3 => SchedEvent::Requeued {
                unit: r.u64()?,
                worker: r.str()?,
                reason: r.str()?,
            },
            4 => {
                let unit = r.u64()?;
                let slots = r.u32()?;
                SchedEvent::Failed {
                    unit,
                    worker: r.str()?,
                    slots,
                }
            }
            k => return Err(bad(&format!("unknown sched event {k}"))),
        };
        if !r.done() {
            return Err(bad("trailing bytes in sched event"));
        }
        Ok(event)
    }
}

/// One audit-epoch lifecycle event, as journaled under [`KIND_EPOCH`].
///
/// The continuous-audit daemon journals these with
/// [`SyncPolicy::EveryRecord`](adcomp_store::SyncPolicy) durability, so
/// a `kill -9` at any point leaves an unambiguous record of how far the
/// epoch got: a `Started` without a matching `Completed` means "resume
/// this epoch's survey" (the answered queries replay from the epoch's
/// own recording store), a `Completed` without a `DriftChecked` means
/// "re-run the drift diff", and an `AlertRaised` is idempotent thanks
/// to [`epoch_event_key`]'s per-stage keying.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochEvent {
    /// Epoch began (attempt is 1-based and bumps on per-epoch retry).
    Started {
        /// Epoch number (0-based).
        epoch: u64,
        /// Supervision attempt for this epoch.
        attempt: u32,
    },
    /// Epoch's survey finished and its snapshot is durable.
    Completed {
        /// Epoch number.
        epoch: u64,
        /// FNV-1a digest over the epoch's key-ordered estimates —
        /// byte-identity across runs is checked on this.
        digest: u64,
        /// Estimate records in the epoch store.
        estimates: u64,
    },
    /// Drift versus the previous epoch was computed and acted on.
    DriftChecked {
        /// Epoch number (the *later* epoch of the pair).
        epoch: u64,
        /// Total drift findings.
        findings: u32,
        /// Four-fifths threshold crossings among them.
        crossings: u32,
    },
    /// A four-fifths crossing alert was raised for this epoch.
    AlertRaised {
        /// Epoch number.
        epoch: u64,
        /// Crossings that triggered the alert.
        crossings: u32,
        /// Human-readable alert line.
        detail: String,
    },
    /// The epoch ran degraded (an endpoint was down, survivors carried
    /// the work).
    Degraded {
        /// Epoch number.
        epoch: u64,
        /// What degraded.
        detail: String,
    },
}

impl EpochEvent {
    /// The epoch this event belongs to.
    pub fn epoch(&self) -> u64 {
        match self {
            EpochEvent::Started { epoch, .. }
            | EpochEvent::Completed { epoch, .. }
            | EpochEvent::DriftChecked { epoch, .. }
            | EpochEvent::AlertRaised { epoch, .. }
            | EpochEvent::Degraded { epoch, .. } => *epoch,
        }
    }

    /// The stage tag used in [`epoch_event_key`].
    pub fn stage(&self) -> u8 {
        match self {
            EpochEvent::Started { .. } => 1,
            EpochEvent::Completed { .. } => 2,
            EpochEvent::DriftChecked { .. } => 3,
            EpochEvent::AlertRaised { .. } => 4,
            EpochEvent::Degraded { .. } => 5,
        }
    }

    /// Byte encoding for a [`KIND_EPOCH`] payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            EpochEvent::Started { epoch, attempt } => {
                buf.push(1);
                buf.extend_from_slice(&epoch.to_be_bytes());
                put_u32(&mut buf, *attempt);
            }
            EpochEvent::Completed {
                epoch,
                digest,
                estimates,
            } => {
                buf.push(2);
                buf.extend_from_slice(&epoch.to_be_bytes());
                buf.extend_from_slice(&digest.to_be_bytes());
                buf.extend_from_slice(&estimates.to_be_bytes());
            }
            EpochEvent::DriftChecked {
                epoch,
                findings,
                crossings,
            } => {
                buf.push(3);
                buf.extend_from_slice(&epoch.to_be_bytes());
                put_u32(&mut buf, *findings);
                put_u32(&mut buf, *crossings);
            }
            EpochEvent::AlertRaised {
                epoch,
                crossings,
                detail,
            } => {
                buf.push(4);
                buf.extend_from_slice(&epoch.to_be_bytes());
                put_u32(&mut buf, *crossings);
                put_str(&mut buf, detail);
            }
            EpochEvent::Degraded { epoch, detail } => {
                buf.push(5);
                buf.extend_from_slice(&epoch.to_be_bytes());
                put_str(&mut buf, detail);
            }
        }
        buf
    }

    /// Decodes a [`KIND_EPOCH`] payload.
    pub fn decode(bytes: &[u8]) -> io::Result<EpochEvent> {
        let mut r = Reader::new(bytes);
        let event = match r.u8()? {
            1 => EpochEvent::Started {
                epoch: r.u64()?,
                attempt: r.u32()?,
            },
            2 => EpochEvent::Completed {
                epoch: r.u64()?,
                digest: r.u64()?,
                estimates: r.u64()?,
            },
            3 => EpochEvent::DriftChecked {
                epoch: r.u64()?,
                findings: r.u32()?,
                crossings: r.u32()?,
            },
            4 => EpochEvent::AlertRaised {
                epoch: r.u64()?,
                crossings: r.u32()?,
                detail: r.str()?,
            },
            5 => EpochEvent::Degraded {
                epoch: r.u64()?,
                detail: r.str()?,
            },
            k => return Err(bad(&format!("unknown epoch event {k}"))),
        };
        if !r.done() {
            return Err(bad("trailing bytes in epoch event"));
        }
        Ok(event)
    }
}

/// A [`RunStore`] shared across the audit stack.
pub type SharedStore = Arc<RunStore>;

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_targeting::TargetingSpec;

    fn rich_spec() -> TargetingSpec {
        let mut spec = TargetingSpec::and_of([AttributeId(7), AttributeId(3)]);
        spec.include.push(OrGroup {
            attributes: vec![AttributeId(9), AttributeId(1)],
        });
        spec.exclude = vec![AttributeId(12), AttributeId(4)];
        spec.demographics.genders = Some(vec![Gender::Female]);
        spec.demographics.ages = Some(vec![AgeBucket::A25_34, AgeBucket::A55Plus]);
        spec
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn spec_roundtrips_through_codec() {
        for spec in [
            TargetingSpec::everyone(),
            TargetingSpec::and_of([AttributeId(0)]),
            rich_spec().normalized(),
        ] {
            let decoded = decode_spec(&encode_spec(&spec)).unwrap();
            assert_eq!(decoded, spec);
        }
    }

    #[test]
    fn spec_key_is_spelling_invariant_and_label_salted() {
        let a = TargetingSpec::and_of([AttributeId(3), AttributeId(7)]);
        let b = TargetingSpec::and_of([AttributeId(7), AttributeId(3)]);
        assert_eq!(spec_key("Facebook", &a), spec_key("Facebook", &b));
        assert_ne!(
            spec_key("Facebook", &a),
            spec_key("LinkedIn", &a),
            "attribute ids are interface-local; keys must not collide across labels"
        );
    }

    #[test]
    fn estimate_payload_roundtrips() {
        let spec = rich_spec().normalized();
        let (back, value) = decode_estimate(&encode_estimate(&spec, 123_000)).unwrap();
        assert_eq!(back, spec);
        assert_eq!(value, 123_000);
        assert!(decode_estimate(&[1, 2, 3]).is_err());
    }

    #[test]
    fn meta_roundtrips() {
        let meta = InterfaceMeta {
            label: "Facebook".into(),
            supports_demographics: true,
            same_feature_and: true,
            names: vec!["interests — cats".into(), "interests — dogs".into()],
            features: vec![0, u16::MAX],
        };
        let back = InterfaceMeta::decode(&meta.encode()).unwrap();
        assert_eq!(back, meta);
        assert!(back.can_compose(AttributeId(0), AttributeId(1)));
        assert!(!back.can_compose(AttributeId(0), AttributeId(0)));
        assert!(
            !back.can_compose(AttributeId(0), AttributeId(2)),
            "out of range"
        );
        assert_eq!(back.feature(AttributeId(0)), Some(FeatureId(0)));
        assert_eq!(
            back.feature(AttributeId(1)),
            None,
            "sentinel decodes to None"
        );
    }

    #[test]
    fn layout_roundtrips() {
        let direct = TargetLayout {
            targeting: "LinkedIn".into(),
            measurement: "LinkedIn".into(),
            id_map: None,
        };
        assert_eq!(TargetLayout::decode(&direct.encode()).unwrap(), direct);
        let via = TargetLayout {
            targeting: "FB-restricted".into(),
            measurement: "Facebook".into(),
            id_map: Some(vec![AttributeId(4), AttributeId(9)]),
        };
        assert_eq!(TargetLayout::decode(&via.encode()).unwrap(), via);
    }

    #[test]
    fn store_roundtrip_with_label_filtering() {
        let dir =
            std::env::temp_dir().join(format!("adcomp-recording-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        let spec_a = TargetingSpec::and_of([AttributeId(1)]).normalized();
        let spec_b = TargetingSpec::and_of([AttributeId(2)]).normalized();
        store
            .append(
                KIND_ESTIMATE,
                spec_key("A", &spec_a),
                &encode_estimate(&spec_a, 10),
            )
            .unwrap();
        store
            .append(
                KIND_ESTIMATE,
                spec_key("B", &spec_b),
                &encode_estimate(&spec_b, 20),
            )
            .unwrap();
        let index = store.snapshot();
        let mut a_specs = Vec::new();
        each_estimate_in(&index, "A", |s, v| a_specs.push((s, v)));
        assert_eq!(a_specs, vec![(spec_a.clone(), 10)]);
        assert_eq!(estimate_in(&index, spec_key("A", &spec_a)), Some(10));
        assert_eq!(estimate_in(&index, spec_key("A", &spec_b)), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_blobs_roundtrip() {
        let dir =
            std::env::temp_dir().join(format!("adcomp-recording-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        assert!(load_checkpoint(&store, "table1").is_none());
        save_checkpoint(&store, "table1", b"progress v1").unwrap();
        save_checkpoint(&store, "table1", b"progress v2").unwrap();
        assert_eq!(load_checkpoint(&store, "table1").unwrap(), b"progress v2");
        assert!(load_checkpoint(&store, "other").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_events_roundtrip() {
        let events = [
            EpochEvent::Started {
                epoch: 3,
                attempt: 2,
            },
            EpochEvent::Completed {
                epoch: 3,
                digest: 0xDEAD_BEEF_CAFE_F00D,
                estimates: 1_234,
            },
            EpochEvent::DriftChecked {
                epoch: 3,
                findings: 7,
                crossings: 2,
            },
            EpochEvent::AlertRaised {
                epoch: 3,
                crossings: 2,
                detail: "LinkedIn: 2 four-fifths crossing(s) vs epoch 2".into(),
            },
            EpochEvent::Degraded {
                epoch: 3,
                detail: "replica-1 unhealthy; survivors carried 40 slots".into(),
            },
        ];
        for e in &events {
            assert_eq!(&EpochEvent::decode(&e.encode()).unwrap(), e);
            assert_eq!(e.epoch(), 3);
        }
        // Trailing bytes and unknown tags must fail loudly.
        let mut bytes = events[0].encode();
        bytes.push(0);
        assert!(EpochEvent::decode(&bytes).is_err());
        assert!(EpochEvent::decode(&[9]).is_err());
    }

    #[test]
    fn epoch_event_keys_separate_stages_and_scopes() {
        let e = EpochEvent::Started {
            epoch: 1,
            attempt: 1,
        };
        let c = EpochEvent::Completed {
            epoch: 1,
            digest: 0,
            estimates: 0,
        };
        // Same (scope, epoch, stage) collides — that is the idempotence
        // mechanism; different stages, epochs, or scopes never do.
        assert_eq!(
            epoch_event_key("daemon", 1, e.stage()),
            epoch_event_key("daemon", 1, e.stage())
        );
        assert_ne!(
            epoch_event_key("daemon", 1, e.stage()),
            epoch_event_key("daemon", 1, c.stage())
        );
        assert_ne!(
            epoch_event_key("daemon", 1, e.stage()),
            epoch_event_key("daemon", 2, e.stage())
        );
        assert_ne!(
            epoch_event_key("daemon", 1, e.stage()),
            epoch_event_key("other", 1, e.stage())
        );
    }
}
