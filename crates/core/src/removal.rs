//! The removal experiment (paper §4.3, Figures 3 and 6).
//!
//! Would removing the most skewed *individual* targeting attributes
//! mitigate skewed *compositions*? For each step, remove the top
//! `p`-percentile most skewed individuals (in the studied direction),
//! re-run the greedy discovery over the remainder, and record the
//! resulting compositions' tail ratio. The paper finds the tail drops but
//! stays far outside the four-fifths band — the headline argument that
//! individual-option mitigations are insufficient.

use crate::discovery::{
    rank_individuals, top_compositions, Direction, DiscoveryConfig, IndividualSurvey,
};
use crate::source::{AuditTarget, SensitiveClass, SourceError};
use crate::stats::percentile;

/// One point of the removal sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemovalPoint {
    /// Percentile of most-skewed individuals removed (0, 2, …, 10).
    pub removed_percentile: f64,
    /// Number of individual attributes removed.
    pub removed_count: usize,
    /// The tail ratio of the re-discovered compositions: the 90th
    /// percentile for `Direction::Toward`, the 10th for
    /// `Direction::Against` (matching Figures 3/6's y-axes).
    pub tail_ratio: f64,
    /// The most extreme ratio among the re-discovered compositions.
    pub extreme_ratio: f64,
    /// Number of compositions that survived the reach filter.
    pub compositions: usize,
}

/// Sweep output for one (class, direction) pair on one target.
#[derive(Clone, Debug, PartialEq)]
pub struct RemovalSweep {
    /// Audited interface label.
    pub target: String,
    /// Sensitive class under study.
    pub class: SensitiveClass,
    /// Top or Bottom compositions.
    pub direction: Direction,
    /// One point per removal step.
    pub points: Vec<RemovalPoint>,
}

/// Runs the sweep: steps of `step_percentile` (paper: 2) up to
/// `max_percentile` (paper: 10).
pub fn removal_sweep(
    target: &AuditTarget,
    survey: &IndividualSurvey,
    class: SensitiveClass,
    direction: Direction,
    cfg: &DiscoveryConfig,
    step_percentile: f64,
    max_percentile: f64,
) -> Result<RemovalSweep, SourceError> {
    assert!(step_percentile > 0.0 && max_percentile >= step_percentile);
    let ranked = rank_individuals(survey, class, direction, cfg.min_reach);
    let mut points = Vec::new();
    let mut pct = 0.0;
    while pct <= max_percentile + 1e-9 {
        // The ranking is most-skewed-first, so removal drops a prefix.
        let removed_count = ((pct / 100.0) * ranked.len() as f64).round() as usize;
        let remaining = &ranked[removed_count.min(ranked.len())..];
        let compositions = top_compositions(target, survey, remaining, cfg)?;
        let mut ratios: Vec<f64> = compositions
            .iter()
            .filter_map(|c| c.ratio(&survey.base, class))
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        if ratios.is_empty() {
            // Nothing survived the reach filter; record a neutral point
            // rather than aborting the sweep.
            points.push(RemovalPoint {
                removed_percentile: pct,
                removed_count,
                tail_ratio: 1.0,
                extreme_ratio: 1.0,
                compositions: 0,
            });
        } else {
            let (tail, extreme) = match direction {
                Direction::Toward => (
                    percentile(&ratios, 90.0),
                    *ratios.last().expect("non-empty"),
                ),
                Direction::Against => (
                    percentile(&ratios, 10.0),
                    *ratios.first().expect("non-empty"),
                ),
            };
            points.push(RemovalPoint {
                removed_percentile: pct,
                removed_count,
                tail_ratio: tail,
                extreme_ratio: extreme,
                compositions: ratios.len(),
            });
        }
        pct += step_percentile;
    }
    Ok(RemovalSweep {
        target: target.label(),
        class,
        direction,
        points,
    })
}

impl RemovalSweep {
    /// Whether the final sweep point still violates the four-fifths band
    /// — the paper's "removal is insufficient" conclusion.
    pub fn still_violating_after_removal(&self) -> bool {
        match self.points.last() {
            None => false,
            Some(p) => match self.direction {
                Direction::Toward => p.tail_ratio > crate::metrics::FOUR_FIFTHS_HIGH,
                Direction::Against => p.tail_ratio < crate::metrics::FOUR_FIFTHS_LOW,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{survey_individuals, DEFAULT_MIN_REACH};
    use adcomp_platform::{SimScale, Simulation};
    use adcomp_population::Gender;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(44, SimScale::Test))
    }

    const MALE: SensitiveClass = SensitiveClass::Gender(Gender::Male);

    fn small_cfg() -> DiscoveryConfig {
        DiscoveryConfig {
            top_k: 40,
            min_reach: DEFAULT_MIN_REACH,
            arity: 2,
            seed: 3,
        }
    }

    #[test]
    fn sweep_has_expected_steps_and_monotone_removal() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let sweep = removal_sweep(
            &target,
            &survey,
            MALE,
            Direction::Toward,
            &small_cfg(),
            2.0,
            10.0,
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 6, "0,2,4,6,8,10");
        assert_eq!(sweep.points[0].removed_count, 0);
        let counts: Vec<usize> = sweep.points.iter().map(|p| p.removed_count).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        for p in &sweep.points {
            assert!(p.tail_ratio.is_finite());
            assert!(
                p.compositions > 0,
                "reach filter must not empty the set at test scale"
            );
        }
    }

    #[test]
    fn removing_skewed_individuals_reduces_top_tail() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let sweep = removal_sweep(
            &target,
            &survey,
            MALE,
            Direction::Toward,
            &small_cfg(),
            5.0,
            10.0,
        )
        .unwrap();
        let first = sweep.points.first().unwrap().tail_ratio;
        let last = sweep.points.last().unwrap().tail_ratio;
        assert!(
            last < first,
            "removal should reduce the 90th-percentile ratio ({first:.2} -> {last:.2})"
        );
    }

    #[test]
    fn against_direction_uses_p10_tail() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let survey = survey_individuals(&target).unwrap();
        let sweep = removal_sweep(
            &target,
            &survey,
            MALE,
            Direction::Against,
            &small_cfg(),
            10.0,
            10.0,
        )
        .unwrap();
        for p in &sweep.points {
            assert!(
                p.tail_ratio <= 1.0,
                "bottom compositions skew against the class"
            );
            assert!(p.extreme_ratio <= p.tail_ratio);
        }
    }
}
