//! Retry and degradation over any [`EstimateSource`].
//!
//! Transport resilience (timeouts, reconnects, circuit breaking) lives
//! in the wire client; *application* resilience lives here, where the
//! audit methodology can decide what a persistent failure means:
//!
//! * [`classify`] — split [`SourceError`]s into retryable weather
//!   (transient platform errors, throttling, torn connections) and
//!   fatal conditions (validation failures, spent query budgets);
//! * [`ResilientSource`] — wrap a source with a
//!   [`RetryPolicy`](adcomp_platform::RetryPolicy) and, when retries
//!   exhaust, apply a [`DegradationPolicy`]: abort the audit, or skip
//!   the query, record it, and move on — the paper's multi-day
//!   measurement runs did the latter for the rare specs that never
//!   answered.
//!
//! Budget charging comes from wrap order: build
//! `ResilientSource(BudgetedSource(platform))` and every retry passes
//! through the budget gate, so a flaky platform consumes the pledged
//! query budget faster — exactly how a live audit's accounting works.
//! [`SourceError::BudgetExhausted`] is classified fatal, so retries halt
//! the moment the budget runs out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::metrics::{Counter, Registry};
use adcomp_platform::{PlatformError, RetryPolicy};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};

use crate::source::{EstimateSource, SourceError};

/// Metric label for the error that caused a retry.
fn class_label(error: &SourceError) -> &'static str {
    match error {
        SourceError::Platform(PlatformError::Transient(_)) => "transient",
        SourceError::Platform(PlatformError::RateLimited { .. })
        | SourceError::RateLimited { .. } => "rate_limited",
        SourceError::Transport(_) => "transport",
        SourceError::CircuitOpen { .. } => "circuit_open",
        _ => "other",
    }
}

/// How a [`SourceError`] should be handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying, optionally no sooner than the server's hint.
    Retryable {
        /// Server-advertised back-off, when present.
        retry_after: Option<Duration>,
    },
    /// Retrying cannot help (bad spec, spent budget, policy rejection).
    Fatal,
}

/// Classifies an error as retryable weather or a fatal condition.
pub fn classify(error: &SourceError) -> ErrorClass {
    match error {
        SourceError::Platform(PlatformError::Transient(_)) => {
            ErrorClass::Retryable { retry_after: None }
        }
        SourceError::Platform(PlatformError::RateLimited { retry_after }) => {
            ErrorClass::Retryable {
                retry_after: Some(*retry_after),
            }
        }
        SourceError::Platform(_) => ErrorClass::Fatal,
        SourceError::Transport(_) => ErrorClass::Retryable { retry_after: None },
        SourceError::Rejected(_) => ErrorClass::Fatal,
        SourceError::RateLimited { retry_after } => ErrorClass::Retryable {
            retry_after: *retry_after,
        },
        SourceError::CircuitOpen { retry_in } => ErrorClass::Retryable {
            retry_after: Some(*retry_in),
        },
        SourceError::BudgetExhausted { .. } => ErrorClass::Fatal,
        SourceError::Skipped { .. } => ErrorClass::Fatal,
    }
}

/// What to do when a query keeps failing after every retry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Surface the final error: the audit stops.
    #[default]
    Abort,
    /// Record the spec as skipped and return
    /// [`SourceError::Skipped`], letting resumable probes note the gap
    /// and continue.
    SkipAndRecord,
}

/// Retry and degradation settings for [`ResilientSource`].
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Backoff schedule for retryable errors.
    pub retry: RetryPolicy,
    /// What happens when retries exhaust.
    pub degradation: DegradationPolicy,
}

impl ResilienceConfig {
    /// Audit-run defaults: standard backoff, skip-and-record (a multi-day
    /// run should not die on one stubborn spec).
    pub fn standard(seed: u64) -> Self {
        ResilienceConfig {
            retry: RetryPolicy::standard(seed),
            degradation: DegradationPolicy::SkipAndRecord,
        }
    }

    /// Test defaults: tiny backoffs, abort on exhaustion.
    pub fn test() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::fast(5),
            degradation: DegradationPolicy::Abort,
        }
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig::standard(0)
    }
}

/// Counters of what the resilience layer absorbed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Retries issued (beyond first attempts).
    pub retries: u64,
    /// Queries that succeeded only after at least one retry.
    pub recovered: u64,
    /// Queries abandoned under [`DegradationPolicy::SkipAndRecord`].
    pub skipped: u64,
}

/// An [`EstimateSource`] wrapper that retries transient failures and
/// degrades gracefully when they persist.
///
/// Fatal errors ([`ErrorClass::Fatal`]) pass through untouched on the
/// first attempt — the degradation policy only governs queries that
/// *stayed* retryable until the retry budget ran out.
pub struct ResilientSource {
    inner: Arc<dyn EstimateSource>,
    config: ResilienceConfig,
    retries: AtomicU64,
    recovered: AtomicU64,
    skipped: AtomicU64,
    skipped_specs: Mutex<Vec<(TargetingSpec, String)>>,
    recovered_total: Arc<Counter>,
    skipped_total: Arc<Counter>,
}

/// Same std-mutex shim `budget.rs` uses: one lock is not worth a dep.
struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl ResilientSource {
    /// Wraps `inner` with the given policy.
    pub fn new(inner: Arc<dyn EstimateSource>, config: ResilienceConfig) -> Self {
        let reg = Registry::global();
        ResilientSource {
            inner,
            config,
            retries: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            skipped_specs: Mutex::new(Vec::new()),
            recovered_total: reg.counter("adcomp_recovered_total"),
            skipped_total: reg.counter("adcomp_skipped_total"),
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Counters of retries, recoveries, and skips so far.
    pub fn stats(&self) -> ResilienceStats {
        ResilienceStats {
            retries: self.retries.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
        }
    }

    /// The specs abandoned so far, with the final error that doomed each.
    pub fn skipped_specs(&self) -> Vec<(TargetingSpec, String)> {
        self.skipped_specs.lock().clone()
    }

    /// Drives one query to its final outcome, starting from an already
    /// observed first attempt — the shared engine behind both the serial
    /// [`estimate`](EstimateSource::estimate) path and the batch path,
    /// so a query's retry/degradation story is identical either way.
    fn resolve(
        &self,
        spec: &TargetingSpec,
        first: Result<u64, SourceError>,
    ) -> Result<u64, SourceError> {
        let mut attempt: u32 = 0;
        let mut outcome = first;
        loop {
            match outcome {
                Ok(value) => {
                    if attempt > 0 {
                        self.recovered.fetch_add(1, Ordering::Relaxed);
                        self.recovered_total.inc();
                    }
                    return Ok(value);
                }
                Err(error) => match classify(&error) {
                    ErrorClass::Fatal => return Err(error),
                    ErrorClass::Retryable { retry_after } => {
                        if self.config.retry.should_retry(attempt) {
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            Registry::global()
                                .counter_with(
                                    "adcomp_retries_total",
                                    &[("class", class_label(&error))],
                                )
                                .inc();
                            std::thread::sleep(self.config.retry.backoff(attempt, retry_after));
                            attempt += 1;
                            outcome = self.inner.estimate(spec);
                        } else {
                            return Err(self.give_up(spec, error));
                        }
                    }
                },
            }
        }
    }

    fn give_up(&self, spec: &TargetingSpec, error: SourceError) -> SourceError {
        match self.config.degradation {
            DegradationPolicy::Abort => error,
            DegradationPolicy::SkipAndRecord => {
                let reason = error.to_string();
                self.skipped.fetch_add(1, Ordering::Relaxed);
                self.skipped_total.inc();
                adcomp_obs::warn!("skipping spec after exhausted retries: {reason}");
                self.skipped_specs
                    .lock()
                    .push((spec.clone(), reason.clone()));
                SourceError::Skipped { reason }
            }
        }
    }
}

impl EstimateSource for ResilientSource {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let first = self.inner.estimate(spec);
        self.resolve(spec, first)
    }

    fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, SourceError>> {
        // One inner batch first (the fast path when nothing fails), then
        // each failed slot walks the exact per-query retry/degradation
        // path the serial estimate takes.
        let first = self.inner.estimate_batch(specs);
        specs
            .iter()
            .zip(first)
            .map(|(spec, outcome)| self.resolve(spec, outcome))
            .collect()
    }

    fn batch_window(&self) -> usize {
        self.inner.batch_window()
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        // Validation answers come from policy, not from the flaky
        // estimate endpoint; a transport error here still surfaces.
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_platform::{
        FaultKind, FaultPlan, FaultyPlatform, PlatformApi, Schedule, SimScale, Simulation,
    };
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(48, SimScale::Test))
    }

    /// Adapter: a `FaultyPlatform` as an `EstimateSource` (in-process,
    /// no wire), mirroring the `AdPlatform` impl.
    struct FaultySource(FaultyPlatform);

    impl EstimateSource for FaultySource {
        fn label(&self) -> String {
            self.0.label().to_string()
        }

        fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
            let req =
                adcomp_platform::EstimateRequest::borrowed(spec, self.0.config().default_objective);
            Ok(self.0.reach_estimate(&req)?.value)
        }

        fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
            self.0.check(spec).map_err(Into::into)
        }

        fn catalog_len(&self) -> u32 {
            self.0.catalog().len() as u32
        }

        fn attribute_name(&self, id: AttributeId) -> Option<String> {
            self.0.catalog().get(id).map(|e| e.name.clone())
        }

        fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
            self.0.catalog().get(id).map(|e| e.feature)
        }

        fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
            a != b
        }

        fn supports_demographics(&self) -> bool {
            true
        }
    }

    fn faulty(plan: FaultPlan) -> Arc<dyn EstimateSource> {
        Arc::new(FaultySource(FaultyPlatform::new(
            sim().linkedin.clone(),
            plan,
        )))
    }

    #[test]
    fn classification_is_sound() {
        use ErrorClass::*;
        assert_eq!(
            classify(&SourceError::Platform(PlatformError::Transient("x".into()))),
            Retryable { retry_after: None }
        );
        assert_eq!(
            classify(&SourceError::RateLimited {
                retry_after: Some(Duration::from_millis(5))
            }),
            Retryable {
                retry_after: Some(Duration::from_millis(5))
            }
        );
        assert_eq!(
            classify(&SourceError::Transport("torn".into())),
            Retryable { retry_after: None }
        );
        assert_eq!(
            classify(&SourceError::CircuitOpen {
                retry_in: Duration::from_secs(1)
            }),
            Retryable {
                retry_after: Some(Duration::from_secs(1))
            }
        );
        assert_eq!(
            classify(&SourceError::BudgetExhausted { used: 5, cap: 4 }),
            Fatal
        );
        assert_eq!(
            classify(&SourceError::Platform(PlatformError::UnsupportedObjective(
                adcomp_platform::Objective::Reach
            ))),
            Fatal
        );
        assert_eq!(classify(&SourceError::Rejected("policy".into())), Fatal);
        assert_eq!(
            classify(&SourceError::Skipped { reason: "x".into() }),
            Fatal
        );
    }

    #[test]
    fn transient_faults_are_absorbed() {
        // Two transient failures in every three calls: each query needs
        // up to two retries, and all succeed.
        let plan = FaultPlan::new(1)
            .with(
                FaultKind::Transient,
                Schedule::EveryNth {
                    period: 3,
                    offset: 0,
                },
            )
            .with(
                FaultKind::Transient,
                Schedule::EveryNth {
                    period: 3,
                    offset: 1,
                },
            );
        let src = ResilientSource::new(faulty(plan), ResilienceConfig::test());
        let clean: u64 = {
            let direct: Arc<dyn EstimateSource> = sim().linkedin.clone();
            direct.estimate(&TargetingSpec::everyone()).unwrap()
        };
        for _ in 0..5 {
            assert_eq!(src.estimate(&TargetingSpec::everyone()).unwrap(), clean);
        }
        let stats = src.stats();
        assert_eq!(stats.retries, 10, "two retries per query");
        assert_eq!(stats.recovered, 5);
        assert_eq!(stats.skipped, 0);
    }

    #[test]
    fn rate_limits_are_waited_out() {
        let plan = FaultPlan::new(2).with(
            FaultKind::RateLimit {
                retry_after: Duration::from_millis(1),
            },
            Schedule::EveryNth {
                period: 2,
                offset: 0,
            },
        );
        let src = ResilientSource::new(faulty(plan), ResilienceConfig::test());
        for _ in 0..4 {
            assert!(src.estimate(&TargetingSpec::everyone()).is_ok());
        }
        assert_eq!(src.stats().recovered, 4);
    }

    #[test]
    fn abort_policy_surfaces_the_final_error() {
        let plan = FaultPlan::new(3).with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let src = ResilientSource::new(faulty(plan), ResilienceConfig::test());
        match src.estimate(&TargetingSpec::everyone()) {
            Err(SourceError::Platform(PlatformError::Transient(_))) => {}
            other => panic!("expected the transient error, got {other:?}"),
        }
        assert_eq!(src.stats().retries, 5, "the whole retry budget was spent");
    }

    #[test]
    fn skip_policy_records_and_continues() {
        let plan = FaultPlan::new(4).with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let config = ResilienceConfig {
            retry: RetryPolicy::fast(2),
            degradation: DegradationPolicy::SkipAndRecord,
        };
        let src = ResilientSource::new(faulty(plan), config);
        let spec = TargetingSpec::and_of([AttributeId(1)]);
        match src.estimate(&spec) {
            Err(SourceError::Skipped { reason }) => assert!(reason.contains("transient")),
            other => panic!("expected Skipped, got {other:?}"),
        }
        assert_eq!(src.stats().skipped, 1);
        let skipped = src.skipped_specs();
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].0, spec);
    }

    #[test]
    fn fatal_errors_bypass_retry_and_degradation() {
        let config = ResilienceConfig {
            retry: RetryPolicy::fast(5),
            degradation: DegradationPolicy::SkipAndRecord,
        };
        let src = ResilientSource::new(sim().facebook_restricted.clone(), config);
        // Gender targeting is a policy violation on the restricted
        // interface: fatal, not skipped, and never retried.
        let spec = crate::source::SensitiveClass::Gender(adcomp_population::Gender::Male)
            .constrain(&TargetingSpec::everyone());
        match src.estimate(&spec) {
            Err(SourceError::Platform(PlatformError::Validation(_))) => {}
            other => panic!("expected a validation error, got {other:?}"),
        }
        assert_eq!(src.stats(), ResilienceStats::default());
    }

    #[test]
    fn budget_is_charged_per_retry() {
        use crate::budget::{BudgetedSource, QueryBudget};
        // Always-transient platform behind a budget of 4: one query's
        // retries drain it, and the budget error stops the retrying.
        let plan = FaultPlan::new(5).with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let budgeted = Arc::new(BudgetedSource::new(faulty(plan), QueryBudget::capped(4)));
        let src = ResilientSource::new(budgeted.clone(), ResilienceConfig::test());
        match src.estimate(&TargetingSpec::everyone()) {
            Err(SourceError::BudgetExhausted { cap: 4, .. }) => {}
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(budgeted.used(), 5, "4 admitted + 1 rejected");
    }
}
