//! The audit's view of a platform: rounded size estimates only.
//!
//! [`EstimateSource`] is the narrow waist between the methodology and any
//! platform implementation — the in-process simulators here, or a remote
//! platform behind the `adcomp-wire` client. Everything the paper
//! computes is derived from `estimate()` calls, exactly as the authors
//! derived everything from the targeting UIs' size fields.
//!
//! [`AuditTarget`] pairs the interface being *audited* (where specs must
//! validate) with the interface used for *measurement* of demographics.
//! For Facebook's restricted interface — which forbids age and gender
//! targeting — the paper "instead uses the corresponding targeting
//! option on Facebook's normal interface to measure the representation
//! ratio" (§3); the target carries the id translation for that.

use std::sync::Arc;

use adcomp_platform::{AdPlatform, EstimateRequest, PlatformApi, PlatformError};
use adcomp_population::{AgeBucket, Gender};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};

/// A value of a sensitive attribute (the `s` of the representation
/// ratio).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SensitiveClass {
    /// A gender value.
    Gender(Gender),
    /// An age bucket.
    Age(AgeBucket),
}

impl SensitiveClass {
    /// The six classes the paper studies, in presentation order.
    pub const ALL: [SensitiveClass; 6] = [
        SensitiveClass::Gender(Gender::Male),
        SensitiveClass::Gender(Gender::Female),
        SensitiveClass::Age(AgeBucket::A18_24),
        SensitiveClass::Age(AgeBucket::A25_34),
        SensitiveClass::Age(AgeBucket::A35_54),
        SensitiveClass::Age(AgeBucket::A55Plus),
    ];

    /// Constrains a spec to this class (adds the gender/age targeting the
    /// paper layers on top of the audited targeting).
    pub fn constrain(&self, spec: &TargetingSpec) -> TargetingSpec {
        let mut spec = spec.clone();
        match self {
            SensitiveClass::Gender(g) => spec.demographics.genders = Some(vec![*g]),
            SensitiveClass::Age(a) => spec.demographics.ages = Some(vec![*a]),
        }
        spec
    }

    /// Display label matching the paper's axis labels.
    pub fn label(&self) -> String {
        match self {
            SensitiveClass::Gender(g) => g.to_string(),
            SensitiveClass::Age(a) => a.to_string(),
        }
    }
}

impl std::fmt::Display for SensitiveClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A (possibly complemented) sensitive population — the paper's Table 1
/// favours `Male`, `Female`, `Age not 18-24`, and `Age not 55+`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Selector {
    /// Users with the class value.
    Class(SensitiveClass),
    /// Users with any *other* value of the same sensitive attribute.
    Complement(SensitiveClass),
}

impl Selector {
    /// Constrains a spec to this population.
    pub fn constrain(&self, spec: &TargetingSpec) -> TargetingSpec {
        match self {
            Selector::Class(c) => c.constrain(spec),
            Selector::Complement(SensitiveClass::Gender(g)) => {
                SensitiveClass::Gender(g.other()).constrain(spec)
            }
            Selector::Complement(SensitiveClass::Age(a)) => {
                let mut spec = spec.clone();
                spec.demographics.ages =
                    Some(AgeBucket::ALL.iter().copied().filter(|b| b != a).collect());
                spec
            }
        }
    }

    /// Table-style label ("female", "not 18-24", …).
    pub fn label(&self) -> String {
        match self {
            Selector::Class(c) => c.label(),
            Selector::Complement(c) => format!("not {}", c.label()),
        }
    }
}

impl From<SensitiveClass> for Selector {
    fn from(c: SensitiveClass) -> Selector {
        Selector::Class(c)
    }
}

impl std::fmt::Display for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Errors surfaced to the audit.
#[derive(Clone, Debug, PartialEq)]
pub enum SourceError {
    /// The platform rejected or failed the request.
    Platform(PlatformError),
    /// Transport failure (wire-backed sources).
    Transport(String),
    /// The platform definitively rejected the request (policy violation,
    /// unknown attribute, malformed query) — retrying cannot help.
    Rejected(String),
    /// The platform throttled the request; retry after the hint (when
    /// the server sent one).
    RateLimited {
        /// Server-advertised back-off.
        retry_after: Option<std::time::Duration>,
    },
    /// The transport's circuit breaker is open: the endpoint looks dead.
    CircuitOpen {
        /// Time until the breaker admits a probe.
        retry_in: std::time::Duration,
    },
    /// The query budget the audit pledged is spent; querying further
    /// would break the ethics protocol, so this is never retried.
    BudgetExhausted {
        /// Queries issued.
        used: u64,
        /// The pledged cap.
        cap: u64,
    },
    /// The query failed persistently and the resilience policy chose to
    /// skip it (degraded mode) rather than abort the audit.
    Skipped {
        /// The final error, rendered.
        reason: String,
    },
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Platform(e) => write!(f, "platform error: {e}"),
            SourceError::Transport(msg) => write!(f, "transport error: {msg}"),
            SourceError::Rejected(msg) => write!(f, "request rejected: {msg}"),
            SourceError::RateLimited {
                retry_after: Some(d),
            } => {
                write!(f, "rate limited; retry after {d:?}")
            }
            SourceError::RateLimited { retry_after: None } => write!(f, "rate limited"),
            SourceError::CircuitOpen { retry_in } => {
                write!(f, "circuit open; endpoint unavailable for {retry_in:?}")
            }
            SourceError::BudgetExhausted { used, cap } => {
                write!(f, "query budget exhausted ({used}/{cap})")
            }
            SourceError::Skipped { reason } => write!(f, "query skipped: {reason}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<PlatformError> for SourceError {
    fn from(e: PlatformError) -> Self {
        SourceError::Platform(e)
    }
}

/// Anything the audit can query for rounded audience-size estimates.
pub trait EstimateSource: Send + Sync {
    /// Report label ("Facebook", "FB-restricted", …).
    fn label(&self) -> String;

    /// Rounded audience-size estimate for a spec, using the interface's
    /// broadest objective and the most restrictive frequency cap — the
    /// paper's settings.
    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError>;

    /// Estimates a batch of specs, returning one result per spec **in
    /// order**. The default loops [`estimate`](EstimateSource::estimate)
    /// serially; sources with a cheaper bulk path (the pipelined wire
    /// client, the memo cache) override it. Semantics must match the
    /// serial loop query-for-query.
    fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, SourceError>> {
        specs.iter().map(|s| self.estimate(s)).collect()
    }

    /// Preferred `estimate_batch` size (1 = no native batching). The
    /// [`QueryEngine`](crate::engine::QueryEngine) chunks its jobs to
    /// this window so natively batching sources see full batches.
    fn batch_window(&self) -> usize {
        1
    }

    /// Validates a spec without estimating.
    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError>;

    /// Number of catalog attributes.
    fn catalog_len(&self) -> u32;

    /// Human-readable attribute name.
    fn attribute_name(&self, id: AttributeId) -> Option<String>;

    /// Feature family of an attribute (for composition rules).
    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId>;

    /// Whether two attributes may be AND-composed on this interface.
    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool;

    /// Whether the interface itself supports gender/age constraint.
    fn supports_demographics(&self) -> bool;
}

impl EstimateSource for AdPlatform {
    fn label(&self) -> String {
        AdPlatform::label(self).to_string()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let req = EstimateRequest::borrowed(spec, self.config().default_objective);
        Ok(self.reach_estimate(&req)?.value)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        AdPlatform::check(self, spec).map_err(Into::into)
    }

    fn catalog_len(&self) -> u32 {
        self.catalog().len() as u32
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.catalog().get(id).map(|e| e.name.clone())
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.catalog().get(id).map(|e| e.feature)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        if a == b {
            return false;
        }
        if self.config().capabilities.same_feature_and {
            true
        } else {
            match (self.attribute_feature(a), self.attribute_feature(b)) {
                (Some(fa), Some(fb)) => fa != fb,
                _ => false,
            }
        }
    }

    fn supports_demographics(&self) -> bool {
        self.config().capabilities.gender_targeting && self.config().capabilities.age_targeting
    }
}

/// An [`EstimateSource`] over any [`PlatformApi`] — the in-process
/// counterpart of the wire client's remote source. This is what lets a
/// [`FaultyPlatform`](adcomp_platform::FaultyPlatform) (which implements
/// the serving-side trait, not this one) be audited directly: the
/// continuous-audit daemon's simulated provider wraps each epoch's
/// fault-injected platform in one of these.
pub struct ApiSource(pub Arc<dyn PlatformApi>);

impl EstimateSource for ApiSource {
    fn label(&self) -> String {
        self.0.label().to_string()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let req = EstimateRequest::borrowed(spec, self.0.config().default_objective);
        Ok(self.0.reach_estimate(&req)?.value)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.0.check(spec).map_err(Into::into)
    }

    fn catalog_len(&self) -> u32 {
        self.0.catalog().len() as u32
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.0.catalog().get(id).map(|e| e.name.clone())
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.0.catalog().get(id).map(|e| e.feature)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        if a == b {
            return false;
        }
        if self.0.config().capabilities.same_feature_and {
            true
        } else {
            match (self.attribute_feature(a), self.attribute_feature(b)) {
                (Some(fa), Some(fb)) => fa != fb,
                _ => false,
            }
        }
    }

    fn supports_demographics(&self) -> bool {
        self.0.config().capabilities.gender_targeting && self.0.config().capabilities.age_targeting
    }
}

/// The pair of interfaces an audit runs against.
#[derive(Clone)]
pub struct AuditTarget {
    /// Interface whose *targeting options* are being audited.
    pub targeting: Arc<dyn EstimateSource>,
    /// Interface used to measure demographic splits (may be the same).
    pub measurement: Arc<dyn EstimateSource>,
    /// Translation of targeting-interface attribute ids onto the
    /// measurement interface, when they differ.
    id_map: Option<Arc<Vec<AttributeId>>>,
    /// Worker pool for batch execution; `None` keeps every path serial.
    engine: Option<Arc<crate::engine::QueryEngine>>,
}

impl AuditTarget {
    /// A target that measures on the audited interface itself.
    pub fn direct(source: Arc<dyn EstimateSource>) -> AuditTarget {
        assert!(
            source.supports_demographics(),
            "direct targets need demographic targeting for measurement"
        );
        AuditTarget {
            targeting: source.clone(),
            measurement: source,
            id_map: None,
            engine: None,
        }
    }

    /// A target measured through a companion interface (the restricted
    /// Facebook case). `id_map[i]` is attribute `i`'s id on `measurement`.
    pub fn via(
        targeting: Arc<dyn EstimateSource>,
        measurement: Arc<dyn EstimateSource>,
        id_map: Vec<AttributeId>,
    ) -> AuditTarget {
        assert_eq!(
            id_map.len() as u32,
            targeting.catalog_len(),
            "one mapping per attribute"
        );
        assert!(measurement.supports_demographics());
        AuditTarget {
            targeting,
            measurement,
            id_map: Some(Arc::new(id_map)),
            engine: None,
        }
    }

    /// Builds the audit target for a simulated platform, wiring the
    /// restricted interface to its parent automatically.
    pub fn for_platform(
        platform: &Arc<AdPlatform>,
        simulation: &adcomp_platform::Simulation,
    ) -> AuditTarget {
        use adcomp_platform::InterfaceKind;
        match platform.kind() {
            InterfaceKind::FacebookRestricted => {
                let ids: Vec<AttributeId> = platform
                    .catalog()
                    .ids()
                    .map(|id| {
                        platform
                            .parent_id(id)
                            .expect("restricted entries map to parent")
                    })
                    .collect();
                AuditTarget::via(platform.clone(), simulation.facebook.clone(), ids)
            }
            _ => AuditTarget::direct(platform.clone()),
        }
    }

    /// Report label of the audited interface.
    pub fn label(&self) -> String {
        self.targeting.label()
    }

    /// The same target with retry/degradation
    /// ([`ResilientSource`](crate::resilience::ResilientSource)) wrapped
    /// around both interfaces. A direct target (measuring on the audited
    /// interface itself) keeps sharing one wrapper, so retry statistics
    /// stay unified.
    pub fn with_resilience(&self, config: crate::resilience::ResilienceConfig) -> AuditTarget {
        use crate::resilience::ResilientSource;
        let targeting: Arc<dyn EstimateSource> =
            Arc::new(ResilientSource::new(self.targeting.clone(), config));
        let measurement: Arc<dyn EstimateSource> =
            if Arc::ptr_eq(&self.targeting, &self.measurement) {
                targeting.clone()
            } else {
                Arc::new(ResilientSource::new(self.measurement.clone(), config))
            };
        AuditTarget {
            targeting,
            measurement,
            id_map: self.id_map.clone(),
            engine: self.engine.clone(),
        }
    }

    /// The same target executing batch paths through a shared
    /// [`QueryEngine`](crate::engine::QueryEngine) worker pool. Results
    /// stay bit-identical to the serial path (estimates are pure and
    /// assembled in submission order); only wall-clock changes.
    pub fn with_engine(&self, engine: Arc<crate::engine::QueryEngine>) -> AuditTarget {
        let mut target = self.clone();
        target.engine = Some(engine);
        target
    }

    /// The engine driving batch paths, when one is attached.
    pub fn engine(&self) -> Option<&Arc<crate::engine::QueryEngine>> {
        self.engine.as_ref()
    }

    /// The same target with an estimate memo cache
    /// ([`MemoizedSource`](crate::engine::MemoizedSource)) around both
    /// interfaces, holding up to `capacity` entries per interface.
    ///
    /// Opt-in only: memoization is sound for deterministic simulators but
    /// changes query accounting and must stay off for consistency
    /// probes (see the [`engine`](crate::engine) docs). Each interface
    /// gets its own cache — attribute ids are interface-local, so a
    /// shared cache could alias distinct audiences. A direct target
    /// (measuring on the audited interface itself) keeps sharing one
    /// wrapper, mirroring [`with_resilience`](AuditTarget::with_resilience).
    pub fn with_memo(&self, capacity: usize) -> AuditTarget {
        use crate::engine::{MemoCache, MemoizedSource};
        let targeting: Arc<dyn EstimateSource> = Arc::new(MemoizedSource::new(
            self.targeting.clone(),
            Arc::new(MemoCache::new(capacity)),
        ));
        let measurement: Arc<dyn EstimateSource> =
            if Arc::ptr_eq(&self.targeting, &self.measurement) {
                targeting.clone()
            } else {
                Arc::new(MemoizedSource::new(
                    self.measurement.clone(),
                    Arc::new(MemoCache::new(capacity)),
                ))
            };
        AuditTarget {
            targeting,
            measurement,
            id_map: self.id_map.clone(),
            engine: self.engine.clone(),
        }
    }

    /// The same target measuring through a distributed scheduler over
    /// replica `endpoints` (each typically a wire client fronting a
    /// platform replica), with default
    /// [`SchedulerConfig`](crate::distributed::SchedulerConfig). The
    /// targeting interface stays local — catalog metadata, spec checks,
    /// and composition rules don't need the fleet — while every
    /// estimate is sharded across the endpoints and merged in
    /// submission order, bit-identical to a single-endpoint serial run.
    pub fn with_scheduler(&self, endpoints: Vec<Arc<dyn EstimateSource>>) -> AuditTarget {
        self.with_scheduler_cfg(
            endpoints,
            crate::distributed::SchedulerConfig::default(),
            None,
        )
    }

    /// [`with_scheduler`](AuditTarget::with_scheduler) with explicit
    /// tuning and an optional durable job journal (see
    /// [`StoreJournal`](crate::distributed::StoreJournal)).
    pub fn with_scheduler_cfg(
        &self,
        endpoints: Vec<Arc<dyn EstimateSource>>,
        cfg: crate::distributed::SchedulerConfig,
        journal: Option<Arc<dyn adcomp_sched::UnitJournal>>,
    ) -> AuditTarget {
        let scheduled = crate::distributed::ScheduledSource::new(endpoints, cfg, journal);
        assert_eq!(
            scheduled.label(),
            self.measurement.label(),
            "scheduler endpoints must replicate the measurement interface"
        );
        AuditTarget {
            targeting: self.targeting.clone(),
            measurement: Arc::new(scheduled),
            id_map: self.id_map.clone(),
            // The scheduler is its own worker pool; layering the engine on
            // top would chunk batches before they reach the shard queue.
            engine: None,
        }
    }

    /// Whether batch submission buys anything on this target: an engine
    /// is attached, or the measurement interface batches natively (the
    /// pipelined wire client). Paths with order-sensitive serial
    /// semantics (early-exit loops, exactly-once checkpoint resume) use
    /// this to decide between the serial loop and batch submission.
    pub fn prefers_batching(&self) -> bool {
        self.engine.is_some() || self.measurement.batch_window() > 1
    }

    /// Runs a batch of already-translated specs against the measurement
    /// interface: through the engine when one is attached, serially
    /// otherwise. Either way the result vector lines up with `specs`.
    pub fn run_measurement_batch(
        &self,
        specs: Vec<TargetingSpec>,
    ) -> Vec<Result<u64, SourceError>> {
        match &self.engine {
            Some(engine) => engine.run_on(self.measurement.clone(), specs),
            None => self.measurement.estimate_batch(&specs),
        }
    }

    /// Translates a spec from targeting-interface ids to
    /// measurement-interface ids. Direct targets (no id map — the common
    /// case) borrow the input instead of cloning it, which keeps the
    /// estimate hot path allocation-free up to the platform boundary.
    pub fn translate<'a>(&self, spec: &'a TargetingSpec) -> std::borrow::Cow<'a, TargetingSpec> {
        match &self.id_map {
            None => std::borrow::Cow::Borrowed(spec),
            Some(map) => {
                let mut out = spec.clone();
                for group in &mut out.include {
                    for id in &mut group.attributes {
                        *id = map[id.0 as usize];
                    }
                }
                for id in &mut out.exclude {
                    *id = map[id.0 as usize];
                }
                std::borrow::Cow::Owned(out)
            }
        }
    }

    /// Estimate of `spec ∧ class` on the measurement interface
    /// (`spec` is expressed in targeting-interface ids).
    pub fn class_estimate(
        &self,
        spec: &TargetingSpec,
        class: SensitiveClass,
    ) -> Result<u64, SourceError> {
        self.selector_estimate(spec, Selector::Class(class))
    }

    /// Estimate of `spec ∧ selector` on the measurement interface.
    pub fn selector_estimate(
        &self,
        spec: &TargetingSpec,
        selector: Selector,
    ) -> Result<u64, SourceError> {
        let translated = self.translate(spec);
        self.measurement.estimate(&selector.constrain(&translated))
    }

    /// Estimate of `spec` alone on the measurement interface.
    pub fn total_estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        self.measurement.estimate(&self.translate(spec))
    }
}

impl std::fmt::Debug for AuditTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AuditTarget(targeting={}, measurement={})",
            self.targeting.label(),
            self.measurement.label()
        )
    }
}

/// Wraps a live interface so every successful estimate is persisted to
/// a [`RunStore`] as it is answered — and answered *from the store*
/// when already recorded.
///
/// The store lookup happens first, which is what generalizes
/// checkpoint-style resumability to every deterministic experiment
/// driver: re-running a killed experiment against the same store
/// replays all previously answered queries from disk with **zero**
/// re-issued platform queries, and only the unanswered tail reaches the
/// inner source. Recording should therefore wrap *outermost* — outside
/// resilience — so replay hits skip the retry machinery and recorded
/// values are the final post-resilience answers.
///
/// The same caveat as memoization applies: under recording, a repeated
/// spec returns the recorded value, so consistency probes must run
/// against the bare interface.
pub struct RecordingSource {
    inner: Arc<dyn EstimateSource>,
    store: Arc<adcomp_store::RunStore>,
    label: String,
    replay_hits: Arc<adcomp_obs::Counter>,
}

impl RecordingSource {
    /// Wraps `inner`, capturing and persisting its interface metadata so
    /// a later [`ReplaySource`] can stand in for it. No estimate queries
    /// are issued.
    pub fn new(
        inner: Arc<dyn EstimateSource>,
        store: Arc<adcomp_store::RunStore>,
    ) -> std::io::Result<RecordingSource> {
        let meta = crate::recording::InterfaceMeta::capture(inner.as_ref());
        crate::recording::record_meta(&store, &meta)?;
        Ok(RecordingSource {
            label: meta.label,
            inner,
            store,
            replay_hits: adcomp_obs::Registry::global().counter("adcomp_store_replay_hits_total"),
        })
    }

    /// The store this source records into.
    pub fn store(&self) -> &Arc<adcomp_store::RunStore> {
        &self.store
    }

    fn lookup(&self, key: u64) -> Option<u64> {
        match self.store.get(key) {
            Some((crate::recording::KIND_ESTIMATE, payload)) => {
                crate::recording::decode_estimate(&payload)
                    .ok()
                    .map(|(_, v)| v)
            }
            _ => None,
        }
    }

    fn record(&self, normalized: &TargetingSpec, key: u64, value: u64) -> Result<(), SourceError> {
        self.store
            .append(
                crate::recording::KIND_ESTIMATE,
                key,
                &crate::recording::encode_estimate(normalized, value),
            )
            .map_err(|e| SourceError::Transport(format!("run store append: {e}")))
    }
}

impl EstimateSource for RecordingSource {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let normalized = spec.normalized();
        let key = crate::recording::normalized_spec_key(&self.label, &normalized);
        if let Some(value) = self.lookup(key) {
            self.replay_hits.inc();
            return Ok(value);
        }
        let value = self.inner.estimate(spec)?;
        self.record(&normalized, key, value)?;
        Ok(value)
    }

    fn estimate_batch(&self, specs: &[TargetingSpec]) -> Vec<Result<u64, SourceError>> {
        use std::collections::HashMap;
        let normalized: Vec<TargetingSpec> = specs.iter().map(|s| s.normalized()).collect();
        let keys: Vec<u64> = normalized
            .iter()
            .map(|n| crate::recording::normalized_spec_key(&self.label, n))
            .collect();
        let mut results: Vec<Option<Result<u64, SourceError>>> = vec![None; specs.len()];
        let mut missing: Vec<usize> = Vec::new();
        let mut first_seen: HashMap<u64, usize> = HashMap::new();
        let mut follower_of: Vec<Option<usize>> = vec![None; specs.len()];
        for i in 0..specs.len() {
            if let Some(value) = self.lookup(keys[i]) {
                self.replay_hits.inc();
                results[i] = Some(Ok(value));
            } else if let Some(&leader) = first_seen.get(&keys[i]) {
                // Intra-batch duplicate: issue once, copy the answer.
                follower_of[i] = Some(leader);
            } else {
                first_seen.insert(keys[i], i);
                missing.push(i);
            }
        }
        if !missing.is_empty() {
            let queries: Vec<TargetingSpec> = missing.iter().map(|&i| specs[i].clone()).collect();
            let answers = self.inner.estimate_batch(&queries);
            for (&i, answer) in missing.iter().zip(answers) {
                results[i] = Some(match answer {
                    Ok(value) => self.record(&normalized[i], keys[i], value).map(|()| value),
                    Err(e) => Err(e),
                });
            }
        }
        for i in 0..specs.len() {
            if let Some(leader) = follower_of[i] {
                results[i] = results[leader].clone();
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot answered"))
            .collect()
    }

    fn batch_window(&self) -> usize {
        self.inner.batch_window()
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        self.inner.check(spec)
    }

    fn catalog_len(&self) -> u32 {
        self.inner.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        self.inner.attribute_name(id)
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.inner.attribute_feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.inner.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.inner.supports_demographics()
    }
}

/// Replays a recorded run with the platform layer fully detached: every
/// trait method is answered from the store's snapshot and the recorded
/// [`InterfaceMeta`](crate::recording::InterfaceMeta) — no live source,
/// no network, no simulator.
///
/// An estimate the run never recorded is a *replay miss* and surfaces
/// as [`SourceError::Rejected`] (retrying an immutable recording cannot
/// help). A complete recorded run therefore reproduces the original
/// experiment bit-for-bit; an incomplete one fails loudly instead of
/// silently inventing numbers.
pub struct ReplaySource {
    index: Arc<adcomp_store::SnapshotIndex>,
    meta: crate::recording::InterfaceMeta,
    replay_hits: Arc<adcomp_obs::Counter>,
}

impl ReplaySource {
    /// Builds a replay of the interface `label` from a store's current
    /// snapshot. Fails if the run never recorded that interface's
    /// metadata.
    pub fn from_store(
        store: &adcomp_store::RunStore,
        label: &str,
    ) -> std::io::Result<ReplaySource> {
        ReplaySource::from_index(Arc::new(store.snapshot()), label)
    }

    /// Builds a replay from an already-materialized snapshot (shared by
    /// several replay sources of the same run).
    pub fn from_index(
        index: Arc<adcomp_store::SnapshotIndex>,
        label: &str,
    ) -> std::io::Result<ReplaySource> {
        let meta = crate::recording::meta_in(&index, label)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("run store has no interface metadata for {label:?}"),
            )
        })?;
        Ok(ReplaySource {
            index,
            meta,
            replay_hits: adcomp_obs::Registry::global().counter("adcomp_store_replay_hits_total"),
        })
    }

    /// The recorded interface metadata backing this replay.
    pub fn meta(&self) -> &crate::recording::InterfaceMeta {
        &self.meta
    }

    /// Every `(spec, value)` estimate recorded for this interface, in
    /// deterministic key order.
    pub fn recorded_estimates(&self) -> Vec<(TargetingSpec, u64)> {
        let mut out = Vec::new();
        crate::recording::each_estimate_in(&self.index, &self.meta.label, |spec, value| {
            out.push((spec, value));
        });
        out
    }
}

impl EstimateSource for ReplaySource {
    fn label(&self) -> String {
        self.meta.label.clone()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let key = crate::recording::spec_key(&self.meta.label, spec);
        match crate::recording::estimate_in(&self.index, key) {
            Some(value) => {
                self.replay_hits.inc();
                Ok(value)
            }
            None => Err(SourceError::Rejected(format!(
                "replay miss: no recorded estimate for `{spec}` on {}",
                self.meta.label
            ))),
        }
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), SourceError> {
        let n = self.meta.catalog_len();
        for id in spec.referenced_attributes() {
            if id.0 >= n {
                return Err(SourceError::Rejected(format!(
                    "unknown attribute #{} (catalog has {n})",
                    id.0
                )));
            }
        }
        let demographics = &spec.demographics;
        if (demographics.genders.is_some() || demographics.ages.is_some())
            && !self.meta.supports_demographics
        {
            return Err(SourceError::Rejected(
                "interface does not support demographic targeting".into(),
            ));
        }
        Ok(())
    }

    fn catalog_len(&self) -> u32 {
        self.meta.catalog_len()
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        match self.meta.names.get(id.0 as usize) {
            Some(name) if !name.is_empty() => Some(name.clone()),
            _ => None,
        }
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        self.meta.feature(id)
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        self.meta.can_compose(a, b)
    }

    fn supports_demographics(&self) -> bool {
        self.meta.supports_demographics
    }
}

impl AuditTarget {
    /// The same target with a [`RecordingSource`] around both
    /// interfaces, all writing into one shared run store. Also persists
    /// the target's layout (labels and id translation) so
    /// [`AuditTarget::from_replay`] can reconstruct it. A direct target
    /// keeps sharing one wrapper, mirroring
    /// [`with_resilience`](AuditTarget::with_resilience).
    ///
    /// Apply this *last* (outside resilience/memo), so the store records
    /// final answers and replay hits bypass the whole live stack.
    pub fn with_recording(
        &self,
        store: Arc<adcomp_store::RunStore>,
    ) -> std::io::Result<AuditTarget> {
        let targeting: Arc<dyn EstimateSource> =
            Arc::new(RecordingSource::new(self.targeting.clone(), store.clone())?);
        let measurement: Arc<dyn EstimateSource> =
            if Arc::ptr_eq(&self.targeting, &self.measurement) {
                targeting.clone()
            } else {
                Arc::new(RecordingSource::new(
                    self.measurement.clone(),
                    store.clone(),
                )?)
            };
        let layout = crate::recording::TargetLayout {
            targeting: self.targeting.label(),
            measurement: self.measurement.label(),
            id_map: self.id_map.as_ref().map(|m| m.as_ref().clone()),
        };
        crate::recording::record_layout(&store, &layout)?;
        Ok(AuditTarget {
            targeting,
            measurement,
            id_map: self.id_map.clone(),
            engine: self.engine.clone(),
        })
    }

    /// Reconstructs a recorded audit target as a pure replay: both
    /// interfaces become [`ReplaySource`]s over the store's snapshot,
    /// with the recorded id translation. `targeting_label` names the
    /// audited interface (as [`AuditTarget::label`] reported it when
    /// recording).
    pub fn from_replay(
        store: &adcomp_store::RunStore,
        targeting_label: &str,
    ) -> std::io::Result<AuditTarget> {
        AuditTarget::from_replay_index(Arc::new(store.snapshot()), targeting_label)
    }

    /// [`AuditTarget::from_replay`] over an already-materialized
    /// snapshot, so several targets of one run share the index.
    pub fn from_replay_index(
        index: Arc<adcomp_store::SnapshotIndex>,
        targeting_label: &str,
    ) -> std::io::Result<AuditTarget> {
        let layout = crate::recording::layout_in(&index, targeting_label)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("run store has no audit target recorded under {targeting_label:?}"),
            )
        })?;
        let targeting: Arc<dyn EstimateSource> =
            Arc::new(ReplaySource::from_index(index.clone(), &layout.targeting)?);
        let measurement: Arc<dyn EstimateSource> = if layout.measurement == layout.targeting {
            targeting.clone()
        } else {
            Arc::new(ReplaySource::from_index(index, &layout.measurement)?)
        };
        Ok(AuditTarget {
            targeting,
            measurement,
            id_map: layout.id_map.map(Arc::new),
            engine: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_platform::{SimScale, Simulation};

    fn sim() -> Simulation {
        Simulation::build(90, SimScale::Test)
    }

    #[test]
    fn sensitive_class_constrains_spec() {
        let base = TargetingSpec::and_of([AttributeId(0)]);
        let male = SensitiveClass::Gender(Gender::Male).constrain(&base);
        assert_eq!(male.demographics.genders, Some(vec![Gender::Male]));
        assert_eq!(male.include, base.include);
        let young = SensitiveClass::Age(AgeBucket::A18_24).constrain(&base);
        assert_eq!(young.demographics.ages, Some(vec![AgeBucket::A18_24]));
        assert_eq!(SensitiveClass::ALL.len(), 6);
    }

    #[test]
    fn adplatform_source_estimates() {
        let s = sim();
        let src: Arc<dyn EstimateSource> = s.facebook.clone();
        assert_eq!(src.label(), "Facebook");
        assert!(src.estimate(&TargetingSpec::everyone()).unwrap() > 0);
        assert!(src.supports_demographics());
        assert_eq!(src.catalog_len() as usize, s.facebook.catalog().len());
        assert!(src.attribute_name(AttributeId(0)).unwrap().contains(" — "));
    }

    #[test]
    fn composition_rules_respect_features() {
        let s = sim();
        let google: Arc<dyn EstimateSource> = s.google.clone();
        // Find one attribute of each feature.
        let mut by_feature = std::collections::HashMap::new();
        for id in 0..google.catalog_len() {
            let id = AttributeId(id);
            by_feature
                .entry(google.attribute_feature(id).unwrap())
                .or_insert(id);
        }
        let feats: Vec<_> = by_feature.values().copied().collect();
        assert!(feats.len() >= 2, "google needs two features");
        assert!(google.can_compose(feats[0], feats[1]));
        assert!(!google.can_compose(feats[0], feats[0]), "self-composition");
        let fb: Arc<dyn EstimateSource> = s.facebook.clone();
        assert!(
            fb.can_compose(AttributeId(0), AttributeId(1)),
            "facebook allows same-feature"
        );
    }

    #[test]
    fn restricted_target_measures_via_parent() {
        let s = sim();
        let target = AuditTarget::for_platform(&s.facebook_restricted, &s);
        assert_eq!(target.label(), "FB-restricted");
        assert_eq!(target.measurement.label(), "Facebook");
        let spec = TargetingSpec::and_of([AttributeId(0)]);
        // Restricted interface rejects gender targeting…
        assert!(target
            .targeting
            .check(&SensitiveClass::Gender(Gender::Male).constrain(&spec))
            .is_err());
        // …but the target measures it through the parent.
        let male = target
            .class_estimate(&spec, SensitiveClass::Gender(Gender::Male))
            .unwrap();
        let female = target
            .class_estimate(&spec, SensitiveClass::Gender(Gender::Female))
            .unwrap();
        let total = target.total_estimate(&spec).unwrap();
        assert!(male > 0 && female > 0);
        assert!(total >= male.max(female));
    }

    #[test]
    fn translate_maps_ids() {
        let s = sim();
        let target = AuditTarget::for_platform(&s.facebook_restricted, &s);
        let spec = TargetingSpec::and_of([AttributeId(0), AttributeId(1)]);
        let translated = target.translate(&spec);
        let expected: Vec<AttributeId> = [AttributeId(0), AttributeId(1)]
            .iter()
            .map(|id| s.facebook_restricted.parent_id(*id).unwrap())
            .collect();
        let got: Vec<AttributeId> = translated.referenced_attributes().collect();
        assert_eq!(got, expected);
        // Direct targets translate to themselves.
        let direct = AuditTarget::for_platform(&s.linkedin, &s);
        assert_eq!(*direct.translate(&spec), spec);
        assert!(
            matches!(direct.translate(&spec), std::borrow::Cow::Borrowed(_)),
            "direct targets must not clone on translate"
        );
    }

    #[test]
    fn estimates_match_between_target_paths_on_direct_interfaces() {
        let s = sim();
        let target = AuditTarget::for_platform(&s.linkedin, &s);
        let spec = TargetingSpec::and_of([AttributeId(2)]);
        assert_eq!(
            target.total_estimate(&spec).unwrap(),
            s.linkedin.clone().estimate(&spec).unwrap()
        );
    }
}
