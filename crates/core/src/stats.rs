//! Distribution summaries for the paper's box plots.
//!
//! Every figure in the paper reports a distribution of representation
//! ratios or recalls as a box plot with the median, the 25th/75th
//! percentiles (box), and the 10th/90th percentiles (whiskers).
//! [`BoxStats`] captures exactly those five numbers plus the extremes.

use serde::{Deserialize, Serialize};

use crate::discovery::AuditRng;
use rand::SeedableRng;

/// Seeded stateful RNG for audit-side sampling (subset sampling, probe
/// schedules). One definition so every sampler derives its stream the
/// same way; the seed maps straight onto the generator, preserving the
/// historical draw sequences bit for bit.
pub fn seeded_rng(seed: u64) -> AuditRng {
    AuditRng::seed_from_u64(seed)
}

/// Seeded RNG for unit `unit` of the counter-partitioned stream
/// `(seed, domain)`.
///
/// The per-unit seed is [`adcomp_infer::stream_seed`] — the same
/// splitmix64 derivation the bootstrap's [`counter_rng`] streams and the
/// delivery simulator use — so any fan-out (discovery draw units,
/// bootstrap replicates, auction rounds) reproduces its slice of the
/// schedule independently of how units are sharded across workers.
pub fn unit_rng(seed: u64, domain: u64, unit: u64) -> AuditRng {
    AuditRng::seed_from_u64(adcomp_infer::stream_seed(seed, domain, unit))
}

/// Counter-driven RNG for unit `unit` of stream `(seed, domain)` — the
/// stateless flavour of [`unit_rng`], used by the bootstrap resampler
/// where byte-identity across thread counts is load-bearing.
pub fn counter_rng(seed: u64, domain: u64, unit: u64) -> adcomp_infer::CounterRng {
    adcomp_infer::CounterRng::stream(seed, domain, unit)
}

/// Linear-interpolated percentile of a sorted slice, `p ∈ [0, 100]`.
///
/// Uses the same convention as NumPy's default (`linear`): rank
/// `p/100 · (n−1)` interpolated between neighbours.
///
/// # Panics
/// Panics when `sorted` is empty or `p` outside `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary the paper's box plots show, plus extremes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 10th percentile (lower whisker).
    pub p10: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 90th percentile (upper whisker).
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Summarises a sample (need not be sorted). Returns `None` for an
    /// empty sample.
    pub fn from_samples(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        Some(BoxStats {
            n: sorted.len(),
            min: sorted[0],
            p10: percentile(&sorted, 10.0),
            p25: percentile(&sorted, 25.0),
            median: percentile(&sorted, 50.0),
            p75: percentile(&sorted, 75.0),
            p90: percentile(&sorted, 90.0),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Tab-separated row (used by the experiment binaries' TSV output).
    pub fn tsv(&self) -> String {
        format!(
            "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
            self.n, self.min, self.p10, self.p25, self.median, self.p75, self.p90, self.max
        )
    }

    /// Header matching [`BoxStats::tsv`].
    pub fn tsv_header() -> &'static str {
        "n\tmin\tp10\tp25\tmedian\tp75\tp90\tmax"
    }
}

/// Median of an unsorted sample; `None` when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    BoxStats::from_samples(values).map(|b| b.median)
}

/// Fraction of samples outside `[lo, hi]` (the paper reports the share of
/// compositions violating the four-fifths band).
pub fn fraction_outside(values: &[f64], lo: f64, hi: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v < lo || v > hi).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert!((percentile(&v, 10.0) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn box_stats_orders_unsorted_input() {
        let b = BoxStats::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(b.n, 3);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 2.0);
        assert_eq!(b.max, 3.0);
        assert!(b.p10 <= b.p25 && b.p25 <= b.median);
        assert!(b.median <= b.p75 && b.p75 <= b.p90);
    }

    #[test]
    fn box_stats_empty_is_none() {
        assert!(BoxStats::from_samples(&[]).is_none());
        assert!(median(&[]).is_none());
    }

    #[test]
    fn fraction_outside_band() {
        let v = [0.5, 0.9, 1.0, 1.3, 2.0];
        // 0.5 < 0.8 and 1.3, 2.0 > 1.25 → 3/5.
        assert!((fraction_outside(&v, 0.8, 1.25) - 0.6).abs() < 1e-12);
        assert_eq!(fraction_outside(&[], 0.8, 1.25), 0.0);
    }

    #[test]
    fn tsv_roundtrip_shape() {
        let b = BoxStats::from_samples(&[1.0, 2.0]).unwrap();
        let row = b.tsv();
        assert_eq!(
            row.split('\t').count(),
            BoxStats::tsv_header().split('\t').count()
        );
    }
}
