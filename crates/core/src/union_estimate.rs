//! Audience overlap and union-recall estimation.
//!
//! Platforms support a logical-AND of OR-groups but **not** a logical-OR
//! of ANDs, so an advertiser (and the paper) cannot directly query the
//! union of several compositions. §4.3 therefore:
//!
//! 1. measures *pairwise overlaps* between skewed composition audiences
//!    (each intersection is itself an AND-of-ORs, hence queryable), and
//! 2. estimates the union's recall via the **inclusion–exclusion
//!    principle**, adding higher-order intersection terms until the
//!    estimate converges (footnote 13 and Appendix A).
//!
//! Overlaps are "conservatively measured by comparing the size of the
//! intersection to the size of the smaller set in the pair"
//! (footnote 12).

use crate::source::{AuditTarget, Selector, SourceError};
use adcomp_targeting::TargetingSpec;

/// Pairwise overlap of two composition audiences restricted to a class:
/// `|A ∧ B ∧ s| / min(|A ∧ s|, |B ∧ s|)` — `None` when either class
/// audience is empty (below the platform's reporting floor).
pub fn pairwise_overlap(
    target: &AuditTarget,
    a: &TargetingSpec,
    b: &TargetingSpec,
    selector: Selector,
) -> Result<Option<f64>, SourceError> {
    let size_a = target.selector_estimate(a, selector)?;
    let size_b = target.selector_estimate(b, selector)?;
    let smaller = size_a.min(size_b);
    if smaller == 0 {
        return Ok(None);
    }
    let both = match a.intersect(b) {
        Some(ab) => target.selector_estimate(&ab, selector)?,
        None => 0,
    };
    Ok(Some(both as f64 / smaller as f64))
}

/// Median pairwise overlap among the first `limit` specs (the paper uses
/// the top 100 most skewed compositions). Pairs whose smaller audience is
/// below the reporting floor are skipped.
pub fn median_pairwise_overlap(
    target: &AuditTarget,
    specs: &[TargetingSpec],
    selector: Selector,
    limit: usize,
) -> Result<Option<f64>, SourceError> {
    let specs = &specs[..specs.len().min(limit)];
    let mut overlaps = Vec::new();
    for i in 0..specs.len() {
        for j in i + 1..specs.len() {
            if let Some(v) = pairwise_overlap(target, &specs[i], &specs[j], selector)? {
                overlaps.push(v);
            }
        }
    }
    Ok(crate::stats::median(&overlaps))
}

/// Result of an inclusion–exclusion union estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct UnionEstimate {
    /// The final estimate (last partial sum, clamped at 0).
    pub recall: u64,
    /// Partial sums after each order (order 1 = sum of singles, …),
    /// recorded so callers can check convergence as the paper did
    /// ("we confirmed that the estimated recalls converged as we
    /// successively added the higher-order terms").
    pub partial_sums: Vec<i128>,
    /// Number of estimate queries spent.
    pub queries: u64,
}

impl UnionEstimate {
    /// Largest change between the last two partial sums, as a fraction of
    /// the final estimate (0 when fewer than two orders were computed).
    pub fn final_correction(&self) -> f64 {
        match self.partial_sums.len() {
            0 | 1 => 0.0,
            n => {
                let last = self.partial_sums[n - 1] as f64;
                let prev = self.partial_sums[n - 2] as f64;
                if last == 0.0 {
                    0.0
                } else {
                    ((last - prev) / last).abs()
                }
            }
        }
    }
}

/// Estimates `|A₁ ∨ … ∨ A_k ∧ class|` by inclusion–exclusion over
/// AND-queries, up to `max_order` (use `specs.len()` for the exact
/// expansion; the paper combines the top 10 compositions, i.e. up to
/// 2¹⁰ − 1 queries).
///
/// Intersections with contradictory demographics contribute zero without
/// spending a query.
pub fn union_recall(
    target: &AuditTarget,
    specs: &[TargetingSpec],
    selector: Selector,
    max_order: usize,
) -> Result<UnionEstimate, SourceError> {
    let k = specs.len();
    assert!(k > 0, "union of zero audiences");
    assert!(
        k <= 20,
        "inclusion–exclusion over {k} sets is 2^{k} queries; cap is 20"
    );
    let max_order = max_order.min(k);

    let mut partial_sums = Vec::with_capacity(max_order);
    let mut acc: i128 = 0;
    let mut queries = 0u64;
    for order in 1..=max_order {
        let sign: i128 = if order % 2 == 1 { 1 } else { -1 };
        // Collect every non-contradictory intersection of this order,
        // then measure them as one batch — the same queries, in the same
        // enumeration order, the serial loop issued one at a time; an
        // attached engine spreads each order across its workers.
        let mut order_queries: Vec<TargetingSpec> = Vec::new();
        let mut subset: Vec<usize> = (0..order).collect();
        loop {
            // Intersect the subset's specs.
            let mut spec = specs[subset[0]].clone();
            let mut contradictory = false;
            for &idx in &subset[1..] {
                match spec.intersect(&specs[idx]) {
                    Some(s) => spec = s,
                    None => {
                        contradictory = true;
                        break;
                    }
                }
            }
            if !contradictory {
                order_queries.push(selector.constrain(&target.translate(&spec)));
            }
            if !next_combination(&mut subset, k) {
                break;
            }
        }
        queries += order_queries.len() as u64;
        let mut order_total: i128 = 0;
        for result in target.run_measurement_batch(order_queries) {
            order_total += result? as i128;
        }
        acc += sign * order_total;
        partial_sums.push(acc);
    }
    Ok(UnionEstimate {
        recall: acc.max(0) as u64,
        partial_sums,
        queries,
    })
}

/// Advances `subset` to the next `|subset|`-combination of `0..k` in
/// lexicographic order; `false` when `subset` was the last one.
fn next_combination(subset: &mut [usize], k: usize) -> bool {
    let order = subset.len();
    let mut i = order;
    while i > 0 {
        i -= 1;
        if subset[i] != i + k - order {
            subset[i] += 1;
            for j in i + 1..order {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{rank_individuals, survey_individuals, Direction, DEFAULT_MIN_REACH};
    use crate::source::AuditTarget;
    use adcomp_platform::{SimScale, Simulation};
    use adcomp_population::Gender;
    use adcomp_targeting::AttributeId;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(43, SimScale::Test))
    }

    const FEMALE: Selector = Selector::Class(crate::source::SensitiveClass::Gender(Gender::Female));

    #[test]
    fn overlap_of_identical_specs_is_one() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let spec = TargetingSpec::and_of([AttributeId(0)]);
        let o = pairwise_overlap(&target, &spec, &spec, FEMALE)
            .unwrap()
            .unwrap();
        assert!((o - 1.0).abs() < 1e-9, "overlap {o}");
    }

    #[test]
    fn overlap_is_at_most_one_and_nonnegative() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        for (a, b) in [(0u32, 1u32), (2, 3), (4, 10)] {
            let sa = TargetingSpec::and_of([AttributeId(a)]);
            let sb = TargetingSpec::and_of([AttributeId(b)]);
            if let Some(o) = pairwise_overlap(&target, &sa, &sb, FEMALE).unwrap() {
                // Rounding can push the measured intersection slightly past
                // the smaller rounded side; allow a small margin.
                assert!((0.0..=1.05).contains(&o), "overlap {o} for ({a},{b})");
            }
        }
    }

    #[test]
    fn union_recall_two_sets_matches_manual_ie() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let a = TargetingSpec::and_of([AttributeId(0)]);
        let b = TargetingSpec::and_of([AttributeId(1)]);
        let est = union_recall(&target, &[a.clone(), b.clone()], FEMALE, 2).unwrap();
        let sa = target.selector_estimate(&a, FEMALE).unwrap();
        let sb = target.selector_estimate(&b, FEMALE).unwrap();
        let sab = target
            .selector_estimate(&a.intersect(&b).unwrap(), FEMALE)
            .unwrap();
        assert_eq!(est.recall as i128, sa as i128 + sb as i128 - sab as i128);
        assert_eq!(est.partial_sums.len(), 2);
        assert_eq!(est.queries, 3);
    }

    #[test]
    fn union_recall_converges_with_order() {
        // Union over several skewed compositions: successive partial sums
        // oscillate toward the final value (alternating-series behaviour).
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let survey = survey_individuals(&target).unwrap();
        let female_class = crate::source::SensitiveClass::Gender(Gender::Female);
        let ranked = rank_individuals(&survey, female_class, Direction::Toward, DEFAULT_MIN_REACH);
        let specs: Vec<TargetingSpec> = ranked
            .iter()
            .take(5)
            .map(|&i| survey.entries[i].spec.clone())
            .collect();
        let full = union_recall(&target, &specs, FEMALE, specs.len()).unwrap();
        assert!(full.recall > 0);
        // The exact expansion's final correction is small relative to the
        // total (convergence), and partial sums bracket the final value.
        assert!(
            full.final_correction() < 0.35,
            "correction {}",
            full.final_correction()
        );
        let final_sum = *full.partial_sums.last().unwrap();
        let odd = full.partial_sums[0];
        assert!(odd >= final_sum, "order-1 overestimates the union");
    }

    #[test]
    fn union_recall_at_least_max_single_and_at_most_sum() {
        let target = AuditTarget::for_platform(&sim().linkedin, sim());
        let specs: Vec<TargetingSpec> = (0..4)
            .map(|i| TargetingSpec::and_of([AttributeId(i)]))
            .collect();
        let singles: Vec<u64> = specs
            .iter()
            .map(|s| target.selector_estimate(s, FEMALE).unwrap())
            .collect();
        let est = union_recall(&target, &specs, FEMALE, specs.len()).unwrap();
        let max_single = *singles.iter().max().unwrap();
        let sum: u64 = singles.iter().sum();
        // Rounded estimates make exact bracketing approximate; allow 5 %.
        assert!(
            est.recall as f64 >= max_single as f64 * 0.95,
            "union {} below max single {max_single}",
            est.recall
        );
        assert!(est.recall <= sum, "union {} above sum {sum}", est.recall);
    }

    #[test]
    fn combination_enumeration_counts() {
        for (k, order, expect) in [(5usize, 2usize, 10), (6, 3, 20), (4, 4, 1), (10, 1, 10)] {
            let mut subset: Vec<usize> = (0..order).collect();
            let mut n = 1;
            while super::next_combination(&mut subset, k) {
                n += 1;
            }
            assert_eq!(n, expect, "C({k},{order})");
        }
    }

    #[test]
    #[should_panic(expected = "union of zero audiences")]
    fn empty_union_panics() {
        let target = AuditTarget::for_platform(&sim().facebook, sim());
        let _ = union_recall(&target, &[], FEMALE, 1);
    }
}
