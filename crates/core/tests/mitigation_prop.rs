//! Property tests for the mitigation layer: the pre-flight gate must
//! flag exactly the measurements whose ratios leave the band, and the
//! advertiser monitor's flagging must be monotone in skew exposure.

use adcomp_core::{
    rep_ratio_of, AdvertiserMonitor, SensitiveClass, SpecMeasurement, FOUR_FIFTHS_HIGH,
    FOUR_FIFTHS_LOW,
};
use proptest::prelude::*;

fn measurement(male: u64, female: u64, ages: [u64; 4]) -> SpecMeasurement {
    SpecMeasurement {
        total: male + female,
        by_gender: [male, female],
        by_age: ages,
    }
}

fn balanced_base() -> SpecMeasurement {
    measurement(4_000_000, 4_000_000, [2_000_000; 4])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn monitor_never_flags_within_band(
        male in 1_000_000u64..1_100_000,
        campaigns in 1usize..20)
    {
        // Ratios forced near parity: male/female within ~10 %.
        let base = balanced_base();
        let m = measurement(male, 1_050_000, [500_000; 4]);
        let male_ratio = rep_ratio_of(&m, &base, SensitiveClass::ALL[0]).unwrap();
        prop_assume!((FOUR_FIFTHS_LOW..=FOUR_FIFTHS_HIGH).contains(&male_ratio));
        let mut monitor = AdvertiserMonitor::new(0.5, 0.2, 1);
        for _ in 0..campaigns {
            monitor.observe("adv", &m, &base);
        }
        let report = monitor.report("adv").unwrap();
        prop_assert!(!report.flagged, "in-band campaigns must never flag: {report:?}");
        prop_assert_eq!(report.campaigns, campaigns as u32);
    }

    #[test]
    fn monitor_flag_is_monotone_in_exposure(
        skew in 2.0f64..20.0,
        campaigns in 3usize..15)
    {
        // A consistently skewed advertiser's score grows with campaigns
        // until it crosses the threshold; more campaigns never un-flag.
        let base = balanced_base();
        let male = (1_000_000.0 * skew) as u64;
        let m = measurement(male, 1_000_000, [500_000; 4]);
        let mut monitor = AdvertiserMonitor::new(0.4, 0.5, 3);
        let mut flagged_at: Option<usize> = None;
        for i in 1..=campaigns {
            monitor.observe("adv", &m, &base);
            let report = monitor.report("adv").unwrap();
            if report.flagged && flagged_at.is_none() {
                flagged_at = Some(i);
            }
            if let Some(at) = flagged_at {
                prop_assert!(report.flagged, "must stay flagged after campaign {at}");
            }
        }
        if campaigns >= 5 && skew >= 3.0 {
            prop_assert!(flagged_at.is_some(), "strong consistent skew must flag");
        }
    }

    #[test]
    fn monitor_scores_bounded_by_max_penalty(
        male in 0u64..10_000_000,
        female in 0u64..10_000_000,
        campaigns in 1usize..30)
    {
        prop_assume!(male + female > 0);
        let base = balanced_base();
        let m = measurement(male, female, [500_000; 4]);
        let mut monitor = AdvertiserMonitor::new(0.3, 0.5, 1);
        for _ in 0..campaigns {
            monitor.observe("adv", &m, &base);
        }
        let report = monitor.report("adv").unwrap();
        // EMA of penalties in [0, max(|ln r|, 4)] stays bounded.
        for s in report.scores {
            prop_assert!(s.is_finite() && s >= 0.0);
            prop_assert!(s <= 17.0, "score {s} beyond any plausible |ln ratio|");
        }
    }

    #[test]
    fn separate_advertisers_are_independent(
        skew_male in 3_000_000u64..9_000_000,
        campaigns in 4usize..10)
    {
        let base = balanced_base();
        let skewed = measurement(skew_male, 100_000, [500_000; 4]);
        let fair = measurement(1_000_000, 1_000_000, [500_000; 4]);
        let mut monitor = AdvertiserMonitor::new(0.4, 0.5, 3);
        for _ in 0..campaigns {
            monitor.observe("skewco", &skewed, &base);
            monitor.observe("fairco", &fair, &base);
        }
        prop_assert!(monitor.report("skewco").unwrap().flagged);
        prop_assert!(!monitor.report("fairco").unwrap().flagged);
        prop_assert_eq!(monitor.flagged(), vec!["skewco".to_string()]);
    }
}
