//! Property tests for the metric layer: representation ratios, box
//! statistics, inclusion–exclusion, and rounding bounds.

use adcomp_core::{
    four_fifths_band, percentile, ratio_bounds, rep_ratio, BoxStats, SensitiveClass, SkewBand,
    SpecMeasurement, FOUR_FIFTHS_HIGH, FOUR_FIFTHS_LOW,
};
use adcomp_platform::RoundingRule;
use adcomp_population::Gender;
use proptest::prelude::*;

fn arb_measurement() -> impl Strategy<Value = SpecMeasurement> {
    (
        1u64..10_000_000,
        1u64..10_000_000,
        proptest::array::uniform4(1u64..5_000_000),
    )
        .prop_map(|(male, female, ages)| SpecMeasurement {
            total: male + female,
            by_gender: [male, female],
            by_age: ages,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rep_ratio_symmetry(ta_s in 0u64..1_000_000, ta_ns in 1u64..1_000_000,
                          ra_s in 1u64..100_000_000, ra_ns in 1u64..100_000_000) {
        // Swapping the class with its complement inverts the ratio.
        let r = rep_ratio(ta_s, ta_ns, ra_s, ra_ns).unwrap();
        prop_assert!(r >= 0.0);
        if ta_s > 0 {
            let inv = rep_ratio(ta_ns, ta_s, ra_ns, ra_s).unwrap();
            prop_assert!((r * inv - 1.0).abs() < 1e-9, "r={r} inv={inv}");
        }
    }

    #[test]
    fn rep_ratio_scale_invariance(ta_s in 1u64..100_000, ta_ns in 1u64..100_000,
                                  ra_s in 1u64..1_000_000, ra_ns in 1u64..1_000_000,
                                  k in 2u64..50) {
        // Scaling all counts by k leaves the ratio unchanged.
        let r1 = rep_ratio(ta_s, ta_ns, ra_s, ra_ns).unwrap();
        let r2 = rep_ratio(ta_s * k, ta_ns * k, ra_s * k, ra_ns * k).unwrap();
        prop_assert!((r1 - r2).abs() < 1e-9 * r1.max(1.0));
    }

    #[test]
    fn complement_counts_partition(m in arb_measurement()) {
        for class in SensitiveClass::ALL {
            let total: u64 = match class {
                SensitiveClass::Gender(_) => m.by_gender.iter().sum(),
                SensitiveClass::Age(_) => m.by_age.iter().sum(),
            };
            prop_assert_eq!(m.class_count(class) + m.complement_count(class), total);
        }
    }

    #[test]
    fn four_fifths_band_partitions_line(r in 0.0f64..100.0) {
        let band = four_fifths_band(r);
        match band {
            SkewBand::Under => prop_assert!(r < FOUR_FIFTHS_LOW),
            SkewBand::Within => prop_assert!((FOUR_FIFTHS_LOW..=FOUR_FIFTHS_HIGH).contains(&r)),
            SkewBand::Over => prop_assert!(r > FOUR_FIFTHS_HIGH),
        }
    }

    #[test]
    fn box_stats_are_ordered_and_within_range(values in proptest::collection::vec(0.0f64..1e9, 1..200)) {
        let b = BoxStats::from_samples(&values).unwrap();
        prop_assert!(b.min <= b.p10 && b.p10 <= b.p25 && b.p25 <= b.median);
        prop_assert!(b.median <= b.p75 && b.p75 <= b.p90 && b.p90 <= b.max);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(b.min, lo);
        prop_assert_eq!(b.max, hi);
        prop_assert_eq!(b.n, values.len());
    }

    #[test]
    fn percentile_monotone_in_p(values in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&sorted, lo) <= percentile(&sorted, hi) + 1e-9);
    }

    #[test]
    fn rounding_bounds_contain_point_ratio(
        male in 1u64..5_000_000, female in 1u64..5_000_000,
        base_male in 50_000_000u64..150_000_000, base_female in 50_000_000u64..150_000_000)
    {
        // Round exact counts through Facebook's ladder, then the interval
        // reconstruction must contain the exact-data ratio.
        let rule = RoundingRule::facebook();
        let meas = SpecMeasurement {
            total: rule.apply(male + female),
            by_gender: [rule.apply(male), rule.apply(female)],
            by_age: [1, 1, 1, 1],
        };
        let base = SpecMeasurement {
            total: rule.apply(base_male + base_female),
            by_gender: [rule.apply(base_male), rule.apply(base_female)],
            by_age: [1, 1, 1, 1],
        };
        let class = SensitiveClass::Gender(Gender::Male);
        let exact = rep_ratio(male, female, base_male, base_female).unwrap();
        if let Some(b) = ratio_bounds(&meas, &base, class, &rule) {
            prop_assert!(b.lo <= b.hi);
            prop_assert!(
                b.lo <= exact && exact <= b.hi,
                "exact {exact} outside [{}, {}]", b.lo, b.hi
            );
            prop_assert!(b.lo <= b.least_skewed() && b.least_skewed() <= b.hi);
        }
    }
}
