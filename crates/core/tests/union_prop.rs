//! Property tests for inclusion–exclusion union-recall estimation.
//!
//! The mock platform is a 64-individual world where every audience is a
//! `u64` bitmask, so exact union sizes are a `count_ones()` away and the
//! estimator's algebra can be checked against ground truth:
//!
//! * the full-order expansion is **permutation-invariant** in the
//!   composition order (the paper sums over subsets, so order must not
//!   matter);
//! * on exact inputs it reproduces the union exactly, hence the recall
//!   fraction never exceeds 1.0;
//! * on rounded inputs (round-down to a granularity `g`, like the
//!   platforms' ladders) each of the `< 2^k` terms errs by less than
//!   `g`, so the estimate stays within `2^k · g` of the class
//!   population.

use std::sync::Arc;

use adcomp_core::{
    union_recall, AuditTarget, EstimateSource, Selector, SensitiveClass, SourceError,
};
use adcomp_population::{AgeBucket, Gender};
use adcomp_targeting::{AttributeId, FeatureId, TargetingSpec};
use proptest::prelude::*;

const FEMALE: Selector = Selector::Class(SensitiveClass::Gender(Gender::Female));

/// A 64-individual world: attribute memberships and gender are bitmasks,
/// ages cycle `i % 4`, estimates are exact counts rounded *down* to a
/// multiple of `granularity`.
struct MockWorld {
    attrs: Vec<u64>,
    female: u64,
    granularity: u64,
}

impl MockWorld {
    fn age_mask(bucket: AgeBucket) -> u64 {
        0x1111_1111_1111_1111u64 << bucket.index()
    }

    /// The exact audience bitmask of a spec.
    fn audience(&self, spec: &TargetingSpec) -> u64 {
        let mut mask = u64::MAX;
        for group in &spec.include {
            let mut group_mask = 0u64;
            for id in &group.attributes {
                group_mask |= self.attrs[id.0 as usize];
            }
            mask &= group_mask;
        }
        for id in &spec.exclude {
            mask &= !self.attrs[id.0 as usize];
        }
        if let Some(genders) = &spec.demographics.genders {
            let mut allowed = 0u64;
            for g in genders {
                allowed |= match g {
                    Gender::Female => self.female,
                    Gender::Male => !self.female,
                };
            }
            mask &= allowed;
        }
        if let Some(ages) = &spec.demographics.ages {
            let mut allowed = 0u64;
            for a in ages {
                allowed |= MockWorld::age_mask(*a);
            }
            mask &= allowed;
        }
        mask
    }

    /// Exact count of `∪ specs ∧ female`.
    fn exact_union_female(&self, specs: &[TargetingSpec]) -> u64 {
        let mut union = 0u64;
        for spec in specs {
            union |= self.audience(spec);
        }
        (union & self.female).count_ones() as u64
    }
}

impl EstimateSource for MockWorld {
    fn label(&self) -> String {
        "MockWorld".into()
    }

    fn estimate(&self, spec: &TargetingSpec) -> Result<u64, SourceError> {
        let exact = self.audience(spec).count_ones() as u64;
        Ok(exact / self.granularity * self.granularity)
    }

    fn check(&self, _spec: &TargetingSpec) -> Result<(), SourceError> {
        Ok(())
    }

    fn catalog_len(&self) -> u32 {
        self.attrs.len() as u32
    }

    fn attribute_name(&self, id: AttributeId) -> Option<String> {
        (id.0 < self.catalog_len()).then(|| format!("attr-{}", id.0))
    }

    fn attribute_feature(&self, id: AttributeId) -> Option<FeatureId> {
        // Every attribute its own feature: all distinct pairs compose.
        (id.0 < self.catalog_len()).then_some(FeatureId(id.0 as u16))
    }

    fn can_compose(&self, a: AttributeId, b: AttributeId) -> bool {
        a != b && a.0 < self.catalog_len() && b.0 < self.catalog_len()
    }

    fn supports_demographics(&self) -> bool {
        true
    }
}

fn world(attrs: Vec<u64>, female: u64, granularity: u64) -> (AuditTarget, Vec<TargetingSpec>) {
    let k = attrs.len();
    let source = Arc::new(MockWorld {
        attrs,
        female,
        granularity,
    });
    let target = AuditTarget::direct(source);
    // One single-attribute composition per attribute, plus one AND pair
    // when possible — the shapes §4.3 unions over.
    let mut specs: Vec<TargetingSpec> = (0..k)
        .map(|i| TargetingSpec::and_of([AttributeId(i as u32)]))
        .collect();
    if k >= 2 {
        specs.push(TargetingSpec::and_of([AttributeId(0), AttributeId(1)]));
    }
    (target, specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_recall_is_permutation_invariant(
        attrs in proptest::collection::vec(any::<u64>(), 2..5),
        female in any::<u64>(),
        rot in 0usize..6,
        granularity in 1u64..8,
    ) {
        let (target, specs) = world(attrs, female, granularity);
        let base = union_recall(&target, &specs, FEMALE, specs.len()).unwrap();

        let mut reversed = specs.clone();
        reversed.reverse();
        let rev = union_recall(&target, &reversed, FEMALE, reversed.len()).unwrap();
        prop_assert_eq!(rev.recall, base.recall, "reversal changed the estimate");

        let mut rotated = specs.clone();
        let mid = rot % rotated.len();
        rotated.rotate_left(mid);
        let rot_est = union_recall(&target, &rotated, FEMALE, rotated.len()).unwrap();
        prop_assert_eq!(rot_est.recall, base.recall, "rotation changed the estimate");

        // The full expansions also agree term-for-term in query count.
        prop_assert_eq!(rev.queries, base.queries);
        prop_assert_eq!(rot_est.queries, base.queries);
    }

    #[test]
    fn exact_inputs_reproduce_the_union_exactly(
        attrs in proptest::collection::vec(any::<u64>(), 2..5),
        female in any::<u64>(),
    ) {
        let (target, specs) = world(attrs.clone(), female, 1);
        let est = union_recall(&target, &specs, FEMALE, specs.len()).unwrap();
        let mock = MockWorld { attrs, female, granularity: 1 };
        let exact = mock.exact_union_female(&specs);
        prop_assert_eq!(est.recall, exact, "full-order IE must be exact");

        // Recall fraction against the class population never exceeds 1.0.
        let class_pop = female.count_ones() as u64;
        prop_assert!(est.recall <= class_pop.max(1),
                     "union {} exceeds class population {class_pop}", est.recall);
    }

    #[test]
    fn rounded_inputs_stay_within_granularity_slack(
        attrs in proptest::collection::vec(any::<u64>(), 2..5),
        female in any::<u64>(),
        granularity in 1u64..10,
    ) {
        let (target, specs) = world(attrs, female, granularity);
        let est = union_recall(&target, &specs, FEMALE, specs.len()).unwrap();
        // Round-down rounding perturbs each of the < 2^k IE terms by less
        // than g, so the estimate cannot exceed the class population by
        // 2^k · g or more — the recall fraction is bounded by
        // 1 + 2^k·g/pop, approaching 1.0 as granularity shrinks.
        let k = specs.len() as u32;
        let class_pop = female.count_ones() as u64;
        let slack = (1u64 << k) * granularity;
        prop_assert!(
            est.recall <= class_pop + slack,
            "union {} exceeds population {class_pop} + slack {slack}",
            est.recall
        );
    }
}
