//! Second-price auctions over pacing-throttled relevance bids.
//!
//! Each ad opportunity runs one generalized-second-price auction with a
//! single slot: the highest effective bid wins and pays the second
//! highest (or the reserve when unopposed). Effective bids are
//! `max_bid × pacing multiplier × relevance`, floored to integer micros,
//! so the whole auction is exact integer arithmetic over deterministic
//! inputs. Ties break toward the lower campaign id — never toward
//! submission order — which is what makes outcomes permutation-invariant.

/// Reserve price in micro-currency: bids below it are not admitted, and
/// an unopposed winner pays it.
pub const RESERVE_MICROS: u64 = 1_000;

/// One admitted bid: `(bid_micros, roster index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bid {
    /// Effective bid in micros (≥ [`RESERVE_MICROS`]).
    pub amount_micros: u64,
    /// Roster index of the bidding campaign (id order).
    pub campaign: usize,
}

/// Computes the effective bid of one campaign for one opportunity, or
/// `None` when the bid falls below the reserve.
///
/// `relevance` is the creative's predicted engagement probability for
/// this user in `(0, 1)`; `pacing` the campaign's current multiplier.
pub fn effective_bid(max_bid_micros: u64, pacing: f64, relevance: f64) -> Option<u64> {
    let bid = (max_bid_micros as f64 * pacing * relevance).floor() as u64;
    (bid >= RESERVE_MICROS).then_some(bid)
}

/// Resolves one single-slot second-price auction over the admitted bids:
/// returns the winning roster index and the price it pays, or `None`
/// when no bid was admitted.
///
/// The price is the highest competing bid, floored at the reserve; it
/// never exceeds the winner's own bid. The winner is the highest bid,
/// ties broken toward the lower roster index (= lower campaign id).
pub fn resolve_auction(bids: &[Bid]) -> Option<(usize, u64)> {
    let mut best: Option<Bid> = None;
    let mut second: u64 = 0;
    for &bid in bids {
        match best {
            None => best = Some(bid),
            Some(current) => {
                if bid.amount_micros > current.amount_micros
                    || (bid.amount_micros == current.amount_micros
                        && bid.campaign < current.campaign)
                {
                    second = second.max(current.amount_micros);
                    best = Some(bid);
                } else {
                    second = second.max(bid.amount_micros);
                }
            }
        }
    }
    best.map(|winner| (winner.campaign, second.max(RESERVE_MICROS)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(amount: u64, campaign: usize) -> Bid {
        Bid {
            amount_micros: amount,
            campaign,
        }
    }

    #[test]
    fn winner_pays_second_price() {
        let (winner, price) =
            resolve_auction(&[bid(5_000, 0), bid(9_000, 1), bid(3_000, 2)]).expect("bids admitted");
        assert_eq!(winner, 1);
        assert_eq!(price, 5_000);
    }

    #[test]
    fn unopposed_winner_pays_reserve() {
        let (winner, price) = resolve_auction(&[bid(8_000, 3)]).unwrap();
        assert_eq!(winner, 3);
        assert_eq!(price, RESERVE_MICROS);
    }

    #[test]
    fn ties_break_toward_lower_id_any_order() {
        for order in [
            vec![bid(7_000, 2), bid(7_000, 1), bid(4_000, 0)],
            vec![bid(4_000, 0), bid(7_000, 1), bid(7_000, 2)],
            vec![bid(7_000, 1), bid(4_000, 0), bid(7_000, 2)],
        ] {
            let (winner, price) = resolve_auction(&order).unwrap();
            assert_eq!(winner, 1, "order {order:?}");
            assert_eq!(price, 7_000, "tie means price = winning bid");
        }
    }

    #[test]
    fn empty_auction_is_unfilled() {
        assert_eq!(resolve_auction(&[]), None);
    }

    #[test]
    fn price_never_exceeds_winning_bid() {
        let (_, price) = resolve_auction(&[bid(2_000, 0), bid(1_500, 1)]).unwrap();
        assert!(price <= 2_000);
        assert_eq!(price, 1_500);
    }

    #[test]
    fn sub_reserve_bids_rejected_at_the_gate() {
        assert_eq!(effective_bid(10_000, 1.0, 0.05), None);
        assert_eq!(effective_bid(10_000, 0.5, 0.9), Some(4_500));
        assert_eq!(effective_bid(0, 1.0, 0.99), None);
    }
}
