//! Advertiser campaigns and the immutable per-run delivery roster.

use adcomp_bitset::Bitset;
use adcomp_platform::{AdPlatform, PlatformError};
use adcomp_population::AttributeModel;
use adcomp_targeting::TargetingSpec;
use serde::{Deserialize, Serialize};

/// Stable campaign identifier. Auction outcomes are ordered by id, never
/// by submission order, so delivery is permutation-invariant in the
/// order campaigns were handed to [`DeliverySetup::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CampaignId(pub u32);

impl std::fmt::Display for CampaignId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One advertiser campaign competing in the delivery auctions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Campaign {
    /// Unique id; the auction tie-break and the roster order.
    pub id: CampaignId,
    /// Human-readable name (metric labels, tables).
    pub name: String,
    /// Who the advertiser *asked* to reach. The delivery-skew audits use
    /// a neutral spec here on purpose: any skew that remains is the
    /// platform's, not the advertiser's.
    pub targeting: TargetingSpec,
    /// The creative, as the platform's relevance model sees it: loadings
    /// are the creative vector over the latent interest dimensions,
    /// `gender_bias`/`age_biases` the demographic load the delivery
    /// optimizer has learned for this kind of ad.
    pub creative: AttributeModel,
    /// Total budget in micro-currency. Delivery never spends past it.
    pub budget_micros: u64,
    /// Maximum bid per impression in micro-currency; the effective bid is
    /// `max_bid × pacing multiplier × relevance`.
    pub max_bid_micros: u64,
    /// Maximum impressions delivered to any single user.
    pub frequency_cap: u32,
}

/// The immutable inputs of one delivery run: campaigns sorted by id plus
/// each campaign's resolved eligibility audience.
///
/// Sorting here (and tie-breaking auctions by id) is what makes delivery
/// outcomes independent of the order campaigns were submitted in.
pub struct DeliverySetup {
    campaigns: Vec<Campaign>,
    audiences: Vec<Bitset>,
}

impl DeliverySetup {
    /// Builds a roster from `campaigns`, resolving each campaign's
    /// eligibility audience with `resolve` (called in id order, after
    /// sorting).
    ///
    /// # Panics
    /// Panics when two campaigns share an id.
    pub fn new(
        mut campaigns: Vec<Campaign>,
        mut resolve: impl FnMut(&Campaign) -> Bitset,
    ) -> DeliverySetup {
        campaigns.sort_by_key(|c| c.id);
        for pair in campaigns.windows(2) {
            assert!(
                pair[0].id != pair[1].id,
                "duplicate campaign id {}",
                pair[0].id
            );
        }
        let audiences = campaigns.iter().map(&mut resolve).collect();
        DeliverySetup {
            campaigns,
            audiences,
        }
    }

    /// Builds a roster over a simulated platform: eligibility audiences
    /// are the ground-truth audiences of each campaign's targeting spec
    /// (delivery is platform-internal, so unlike the audit pipeline it
    /// legitimately sees exact memberships).
    pub fn for_platform(
        platform: &AdPlatform,
        campaigns: Vec<Campaign>,
    ) -> Result<DeliverySetup, PlatformError> {
        let mut failed = None;
        let setup =
            DeliverySetup::new(campaigns, |c| match platform.exact_audience(&c.targeting) {
                Ok(audience) => audience,
                Err(e) => {
                    failed.get_or_insert(e);
                    Bitset::new()
                }
            });
        match failed {
            Some(e) => Err(e),
            None => Ok(setup),
        }
    }

    /// The campaigns, in id order.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// The eligibility audience of campaign `index` (roster order).
    pub fn audience(&self, index: usize) -> &Bitset {
        &self.audiences[index]
    }

    /// Roster position of a campaign id.
    pub fn index_of(&self, id: CampaignId) -> Option<usize> {
        self.campaigns.binary_search_by_key(&id, |c| c.id).ok()
    }

    /// Number of campaigns.
    pub fn len(&self) -> usize {
        self.campaigns.len()
    }

    /// Whether the roster is empty.
    pub fn is_empty(&self) -> bool {
        self.campaigns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign(id: u32) -> Campaign {
        Campaign {
            id: CampaignId(id),
            name: format!("c{id}"),
            targeting: TargetingSpec::everyone(),
            creative: AttributeModel::new(id as u64),
            budget_micros: 1_000_000,
            max_bid_micros: 10_000,
            frequency_cap: 2,
        }
    }

    #[test]
    fn setup_sorts_by_id() {
        let setup = DeliverySetup::new(vec![campaign(7), campaign(2), campaign(5)], |_| {
            Bitset::new()
        });
        let ids: Vec<u32> = setup.campaigns().iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![2, 5, 7]);
        assert_eq!(setup.index_of(CampaignId(5)), Some(1));
        assert_eq!(setup.index_of(CampaignId(9)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate campaign id")]
    fn duplicate_ids_rejected() {
        DeliverySetup::new(vec![campaign(1), campaign(1)], |_| Bitset::new());
    }
}
