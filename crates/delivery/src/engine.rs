//! The delivery loop: opportunity stream → relevance scoring → auction →
//! settlement, deterministic for any thread count.
//!
//! Each round is one ad opportunity: a user drawn from the traffic pool
//! by the per-unit RNG streams of [`draw_unit_rng`] (a pure function of
//! `(seed, round)` — outcomes never advance the stream). Delivery
//! proceeds in pacing windows; per window:
//!
//! 1. **Score** (parallel): the window's users are drawn and every
//!    `(round, campaign)` relevance is computed. Relevance is a pure
//!    function of the campaign creative and the user's latent vector and
//!    demographics, so this stage can be sharded across any number of
//!    threads without changing a single value.
//! 2. **Settle** (serial): each round's auction is resolved against the
//!    precomputed scores, charging budgets, counting frequency caps, and
//!    appending to the impression log in round order.
//! 3. **Pace** (serial): at the window boundary every campaign's pacing
//!    controller compares cumulative spend against its linear schedule.
//!
//! Because stage 1 is value-identical for any sharding and stages 2–3
//! are serial folds over it, [`deliver`] is byte-identical across thread
//! counts — the delivery analogue of the engine/scheduler equivalence
//! guarantees in `adcomp-core`.

use std::collections::HashMap;

use adcomp_bitset::Bitset;
use adcomp_population::Universe;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::auction::{effective_bid, resolve_auction, Bid, RESERVE_MICROS};
use crate::campaign::{CampaignId, DeliverySetup};
use crate::draw_unit_rng;
use crate::pacing::PacingController;
use crate::DRAW_UNIT;

/// Parameters of one delivery run.
#[derive(Clone, Debug)]
pub struct DeliveryConfig {
    /// Ad opportunities to run.
    pub rounds: u64,
    /// Pacing-window length in rounds (also the scoring block size).
    pub window: u64,
    /// Scoring threads. **Never** changes results, only wall time.
    pub threads: usize,
    /// Seed of the opportunity stream.
    pub seed: u64,
    /// Metric label (`platform` label on `adcomp_delivery_*` series).
    pub label: String,
}

impl DeliveryConfig {
    /// A serial run of `rounds` rounds seeded with `seed`, with a
    /// 1 000-round pacing window.
    pub fn new(rounds: u64, seed: u64) -> DeliveryConfig {
        DeliveryConfig {
            rounds,
            window: 1_000,
            threads: 1,
            seed,
            label: "delivery".to_string(),
        }
    }

    /// Sets the pacing window.
    pub fn window(mut self, window: u64) -> DeliveryConfig {
        assert!(window > 0, "pacing window must be positive");
        self.window = window;
        self
    }

    /// Sets the scoring thread count.
    pub fn threads(mut self, threads: usize) -> DeliveryConfig {
        assert!(threads > 0, "at least one scoring thread");
        self.threads = threads;
        self
    }

    /// Sets the metric label.
    pub fn label(mut self, label: impl Into<String>) -> DeliveryConfig {
        self.label = label.into();
        self
    }
}

/// One won impression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Impression {
    /// Opportunity round.
    pub round: u64,
    /// The user who saw the ad.
    pub user: u32,
    /// The winning campaign.
    pub campaign: CampaignId,
    /// Second-price cost in micros.
    pub price_micros: u64,
}

/// Unique delivered users of one campaign, split by ground-truth
/// demographics (the simulator is the platform, so it may look).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredTally {
    /// Impressions won (with frequency-capped repeats).
    pub impressions: u64,
    /// Unique users reached.
    pub unique_users: u64,
    /// Unique users by gender, indexed by `Gender::index`.
    pub by_gender: [u64; 2],
    /// Unique users by age bucket, indexed by `AgeBucket::index`.
    pub by_age: [u64; 4],
}

/// Everything one delivery run produced.
#[derive(Clone, Debug)]
pub struct DeliveryOutcome {
    /// The impression log, in round order.
    pub impressions: Vec<Impression>,
    /// Rounds run.
    pub rounds: u64,
    /// Rounds no campaign bid on (reserve not met, budgets exhausted,
    /// caps hit, or user outside every audience).
    pub unfilled: u64,
    /// Cumulative spend per campaign (roster order). Never exceeds the
    /// campaign's budget.
    pub spend_micros: Vec<u64>,
    /// Pacing throttles per campaign (roster order).
    pub throttles: Vec<u64>,
    /// Bids suppressed by the frequency cap, per campaign.
    pub cap_hits: Vec<u64>,
}

impl DeliveryOutcome {
    /// FNV-1a digest of the impression log and settlement state — the
    /// byte-identity witness the equivalence tests compare.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.rounds);
        eat(self.unfilled);
        for imp in &self.impressions {
            eat(imp.round);
            eat(u64::from(imp.user));
            eat(u64::from(imp.campaign.0));
            eat(imp.price_micros);
        }
        for &v in self
            .spend_micros
            .iter()
            .chain(&self.throttles)
            .chain(&self.cap_hits)
        {
            eat(v);
        }
        h
    }

    /// The unique delivered users of roster campaign `index`.
    pub fn delivered_users(&self, index: usize, setup: &DeliverySetup) -> Bitset {
        let id = setup.campaigns()[index].id;
        let mut users = Bitset::new();
        for imp in &self.impressions {
            if imp.campaign == id {
                users.insert(imp.user);
            }
        }
        users
    }

    /// Tallies who roster campaign `index` actually reached, by
    /// ground-truth demographics.
    pub fn delivered(
        &self,
        index: usize,
        setup: &DeliverySetup,
        universe: &Universe,
    ) -> DeliveredTally {
        let id = setup.campaigns()[index].id;
        let users = self.delivered_users(index, setup);
        let mut tally = DeliveredTally {
            impressions: self.impressions.iter().filter(|i| i.campaign == id).count() as u64,
            unique_users: users.len(),
            ..DeliveredTally::default()
        };
        for user in users.iter() {
            let demo = universe.demographics(user);
            tally.by_gender[demo.gender.index()] += 1;
            tally.by_age[demo.age.index()] += 1;
        }
        tally
    }
}

/// Draws the users of rounds `[start, end)` from `pool`, reproducing the
/// per-unit streams locally (see [`DRAW_UNIT`]).
fn draw_users(seed: u64, start: u64, end: u64, pool: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity((end - start) as usize);
    let mut unit = start / DRAW_UNIT;
    let mut rng = draw_unit_rng(seed, unit);
    for _ in unit * DRAW_UNIT..start {
        let _ = rng.gen_range(0..pool.len());
    }
    for round in start..end {
        if round / DRAW_UNIT != unit {
            unit = round / DRAW_UNIT;
            rng = draw_unit_rng(seed, unit);
        }
        out.push(pool[rng.gen_range(0..pool.len())]);
    }
    out
}

/// Relevance of every `(round, campaign)` pair of a window, flattened
/// row-major; `-1.0` marks a user outside the campaign's audience.
/// Sharded across `threads`, value-identical for any count.
fn score_window(
    universe: &Universe,
    setup: &DeliverySetup,
    users: &[u32],
    threads: usize,
) -> Vec<f64> {
    let n = setup.len();
    let mut scores = vec![0.0f64; users.len() * n];
    let score_rows = |rows: &mut [f64], users: &[u32]| {
        for (row, &user) in rows.chunks_mut(n).zip(users) {
            let z = universe.latent(user);
            let demo = universe.demographics(user);
            for (slot, (campaign, index)) in row.iter_mut().zip(setup.campaigns().iter().zip(0..n))
            {
                *slot = if setup.audience(index).contains(user) {
                    campaign.creative.probability(z, demo)
                } else {
                    -1.0
                };
            }
        }
    };
    if threads <= 1 || users.len() < 2 {
        score_rows(&mut scores, users);
    } else {
        let chunk_rows = users.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (rows, chunk_users) in scores
                .chunks_mut(chunk_rows * n)
                .zip(users.chunks(chunk_rows))
            {
                scope.spawn(move || score_rows(rows, chunk_users));
            }
        });
    }
    scores
}

/// Runs one delivery: `config.rounds` opportunities drawn from `traffic`
/// are auctioned among `setup`'s campaigns. Pure function of its inputs;
/// `config.threads` changes wall time only.
pub fn deliver(
    universe: &Universe,
    traffic: &Bitset,
    setup: &DeliverySetup,
    config: &DeliveryConfig,
) -> DeliveryOutcome {
    let pool: Vec<u32> = traffic.iter().collect();
    let n = setup.len();
    let mut outcome = DeliveryOutcome {
        impressions: Vec::new(),
        rounds: config.rounds,
        unfilled: 0,
        spend_micros: vec![0; n],
        throttles: vec![0; n],
        cap_hits: vec![0; n],
    };
    if pool.is_empty() || n == 0 || config.rounds == 0 {
        outcome.unfilled = config.rounds;
        record_metrics(&outcome, config);
        return outcome;
    }

    let mut pacing: Vec<PacingController> = setup
        .campaigns()
        .iter()
        .map(|c| PacingController::new(c.budget_micros, config.rounds))
        .collect();
    // Impressions served per (campaign, user), for the frequency cap.
    let mut served: HashMap<u64, u32> = HashMap::new();
    let mut bids: Vec<Bid> = Vec::with_capacity(n);

    let mut start = 0u64;
    while start < config.rounds {
        let end = (start + config.window).min(config.rounds);
        let users = draw_users(config.seed, start, end, &pool);
        let scores = score_window(universe, setup, &users, config.threads);

        for (offset, &user) in users.iter().enumerate() {
            let round = start + offset as u64;
            let row = &scores[offset * n..(offset + 1) * n];
            bids.clear();
            for (index, campaign) in setup.campaigns().iter().enumerate() {
                let relevance = row[index];
                if relevance < 0.0 {
                    continue; // outside the campaign's audience
                }
                if outcome.spend_micros[index] >= campaign.budget_micros {
                    continue; // budget exhausted
                }
                let key = (index as u64) << 32 | u64::from(user);
                if served.get(&key).copied().unwrap_or(0) >= campaign.frequency_cap {
                    outcome.cap_hits[index] += 1;
                    continue;
                }
                if let Some(amount) = effective_bid(
                    campaign.max_bid_micros,
                    pacing[index].multiplier(),
                    relevance,
                ) {
                    bids.push(Bid {
                        amount_micros: amount,
                        campaign: index,
                    });
                }
            }
            match resolve_auction(&bids) {
                Some((winner, price)) => {
                    let campaign = &setup.campaigns()[winner];
                    // Second price, clamped to the remaining budget so
                    // spend can never overshoot it.
                    let charged = price.min(campaign.budget_micros - outcome.spend_micros[winner]);
                    outcome.spend_micros[winner] += charged;
                    *served
                        .entry((winner as u64) << 32 | u64::from(user))
                        .or_insert(0) += 1;
                    outcome.impressions.push(Impression {
                        round,
                        user,
                        campaign: campaign.id,
                        price_micros: charged,
                    });
                }
                None => outcome.unfilled += 1,
            }
        }

        for (index, controller) in pacing.iter_mut().enumerate() {
            controller.on_window(outcome.spend_micros[index], end);
        }
        start = end;
    }

    for (index, controller) in pacing.iter().enumerate() {
        outcome.throttles[index] = controller.throttles();
    }
    record_metrics(&outcome, config);
    outcome
}

/// Publishes one run's `adcomp_delivery_*` series (counters aggregated
/// once per run, keeping the per-round loop allocation- and atomic-free).
fn record_metrics(outcome: &DeliveryOutcome, config: &DeliveryConfig) {
    let registry = adcomp_obs::Registry::global();
    let labels: &[(&str, &str)] = &[("platform", config.label.as_str())];
    registry
        .counter_with("adcomp_delivery_auctions_total", labels)
        .add(outcome.rounds);
    registry
        .counter_with("adcomp_delivery_impressions_total", labels)
        .add(outcome.impressions.len() as u64);
    registry
        .counter_with("adcomp_delivery_unfilled_total", labels)
        .add(outcome.unfilled);
    registry
        .counter_with("adcomp_delivery_pacing_throttles_total", labels)
        .add(outcome.throttles.iter().sum());
    registry
        .counter_with("adcomp_delivery_cap_hits_total", labels)
        .add(outcome.cap_hits.iter().sum());
    let price = registry.histogram_with(
        "adcomp_delivery_price_micros",
        labels,
        vec![
            RESERVE_MICROS,
            5_000,
            10_000,
            25_000,
            50_000,
            100_000,
            250_000,
            1_000_000,
        ],
    );
    for imp in &outcome.impressions {
        price.observe(imp.price_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use adcomp_population::{AttributeModel, DemographicProfile, UniverseConfig};
    use adcomp_targeting::TargetingSpec;
    use std::sync::OnceLock;

    fn universe() -> &'static Universe {
        static U: OnceLock<Universe> = OnceLock::new();
        U.get_or_init(|| {
            Universe::generate(&UniverseConfig {
                n_users: 4_000,
                seed: 11,
                scale: 1.0,
                profile: DemographicProfile::balanced(),
            })
        })
    }

    fn campaign(id: u32, gender_bias: f32) -> Campaign {
        Campaign {
            id: CampaignId(id),
            name: format!("c{id}"),
            targeting: TargetingSpec::everyone(),
            creative: AttributeModel::new(900 + u64::from(id))
                .popularity(0.5)
                .gender_bias(gender_bias),
            budget_micros: 80_000_000,
            max_bid_micros: 100_000,
            frequency_cap: 3,
        }
    }

    fn setup(universe: &Universe) -> DeliverySetup {
        DeliverySetup::new(
            vec![campaign(0, 1.5), campaign(1, 0.0), campaign(2, -0.6)],
            |_| universe.everyone().clone(),
        )
    }

    #[test]
    fn thread_count_never_changes_the_log() {
        let u = universe();
        let s = setup(u);
        let base = DeliveryConfig::new(6_000, 77).window(500);
        let serial = deliver(u, u.everyone(), &s, &base);
        assert!(!serial.impressions.is_empty());
        for threads in [2, 4, 7] {
            let pooled = deliver(u, u.everyone(), &s, &base.clone().threads(threads));
            assert_eq!(pooled.digest(), serial.digest(), "threads={threads}");
            assert_eq!(pooled.impressions, serial.impressions);
        }
    }

    #[test]
    fn same_seed_same_log_different_seed_different_log() {
        let u = universe();
        let s = setup(u);
        let a = deliver(u, u.everyone(), &s, &DeliveryConfig::new(3_000, 5));
        let b = deliver(u, u.everyone(), &s, &DeliveryConfig::new(3_000, 5));
        let c = deliver(u, u.everyone(), &s, &DeliveryConfig::new(3_000, 6));
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest(), "seed must matter");
    }

    #[test]
    fn male_loaded_creative_skews_delivery_male() {
        let u = universe();
        let s = setup(u);
        let outcome = deliver(
            u,
            u.everyone(),
            &s,
            &DeliveryConfig::new(8_000, 42).window(500),
        );
        let job = outcome.delivered(0, &s, u); // gender_bias +1.5
        let neutral = outcome.delivered(1, &s, u);
        assert!(job.unique_users > 0 && neutral.unique_users > 0);
        let male_share = |t: &DeliveredTally| t.by_gender[0] as f64 / t.unique_users as f64;
        assert!(
            male_share(&job) > male_share(&neutral) + 0.15,
            "job {job:?} vs neutral {neutral:?}"
        );
    }

    #[test]
    fn accounting_stays_within_budget_and_caps() {
        let u = universe();
        let mut campaigns = vec![campaign(0, 0.8), campaign(1, 0.0)];
        campaigns[0].budget_micros = 900_000; // tight: must exhaust
        let s = DeliverySetup::new(campaigns, |_| u.everyone().clone());
        let outcome = deliver(
            u,
            u.everyone(),
            &s,
            &DeliveryConfig::new(5_000, 9).window(250),
        );
        for (index, c) in s.campaigns().iter().enumerate() {
            assert!(outcome.spend_micros[index] <= c.budget_micros);
        }
        assert!(outcome.spend_micros[0] == 900_000, "tight budget exhausts");
        let mut per_user: HashMap<(u32, u32), u32> = HashMap::new();
        for imp in &outcome.impressions {
            *per_user.entry((imp.campaign.0, imp.user)).or_insert(0) += 1;
        }
        for (&(campaign, _), &count) in &per_user {
            let cap = s.campaigns()[s.index_of(CampaignId(campaign)).unwrap()].frequency_cap;
            assert!(
                count <= cap,
                "campaign {campaign} served {count} > cap {cap}"
            );
        }
        assert_eq!(
            outcome.impressions.len() as u64 + outcome.unfilled,
            outcome.rounds
        );
    }

    #[test]
    fn empty_roster_or_traffic_is_all_unfilled() {
        let u = universe();
        let empty_roster = DeliverySetup::new(Vec::new(), |_| Bitset::new());
        let outcome = deliver(u, u.everyone(), &empty_roster, &DeliveryConfig::new(10, 1));
        assert_eq!(outcome.unfilled, 10);
        let s = setup(u);
        let outcome = deliver(u, &Bitset::new(), &s, &DeliveryConfig::new(10, 1));
        assert_eq!(outcome.unfilled, 10);
        assert!(outcome.impressions.is_empty());
    }
}
