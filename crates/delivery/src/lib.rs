//! Deterministic ad-delivery simulation: the *second* stage of the ads
//! pipeline, downstream of the targeting surface the paper audits.
//!
//! The paper measures discrimination in *targeting* — who an advertiser
//! **may** reach. The strongest related work (Ali et al., "Discrimination
//! through optimization", arXiv 1904.02095; Imana et al., "Auditing for
//! Discrimination in Algorithms Delivering Job Ads", arXiv 2104.04502)
//! shows the *delivery* stage introduces its own demographic skew even
//! under neutral targeting, because the platform's auction ranks ads by
//! predicted per-user relevance. This crate reproduces that mechanism on
//! the simulated platforms:
//!
//! * [`campaign`] — advertiser campaigns: a targeting spec, a *creative*
//!   modelled as an [`AttributeModel`] (its loadings are the creative
//!   vector, its gender/age biases the demographic load), a budget, a
//!   maximum bid, and a per-user frequency cap;
//! * [`auction`] — per-opportunity second-price auctions over the
//!   campaigns' pacing-throttled relevance bids;
//! * [`pacing`] — multiplicative budget pacing: per-window multipliers
//!   that smooth each campaign's spend across the delivery horizon;
//! * [`engine`] — the delivery loop: a seeded opportunity stream drawn
//!   with the per-shard RNG pattern from `random_compositions`
//!   (stream = pure function of `(seed, round)`, advanced by counters and
//!   never by outcomes), a parallel relevance-scoring stage, and a serial
//!   auction/settlement pass that is byte-identical for any thread count.
//!
//! Everything is integer micro-currency and seeded draws, so a delivery
//! run is a pure function of `(universe, campaigns, config)` — the
//! property the delivery-skew audits in `adcomp-core` rely on when they
//! compare serial, pooled-engine, and sched-distributed runs.
//!
//! Instrumentation: `adcomp_delivery_*` counters and the price histogram
//! (auctions run, impressions won, pacing throttles, frequency-cap hits,
//! unfilled opportunities) via `adcomp-obs`.
//!
//! [`AttributeModel`]: adcomp_population::AttributeModel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod campaign;
pub mod engine;
pub mod pacing;

pub use auction::{resolve_auction, Bid, RESERVE_MICROS};
pub use campaign::{Campaign, CampaignId, DeliverySetup};
pub use engine::{deliver, DeliveredTally, DeliveryConfig, DeliveryOutcome, Impression};
pub use pacing::{PacingController, PACE_DOWN, PACE_MIN, PACE_UP};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rounds per opportunity-draw RNG stream — the same unit size as the
/// `random_compositions` candidate schedule in `adcomp-core`, and for
/// the same reason: round `r` draws its user from stream `r / DRAW_UNIT`,
/// so the opportunity stream is a pure function of `(seed, round)` and a
/// sharded or pooled run reproduces any slice of it locally.
pub const DRAW_UNIT: u64 = 64;

/// Stream domain separating opportunity draws from the other
/// counter-partitioned streams in the workspace (discovery candidates,
/// bootstrap replicates); the per-unit seed derivation itself is
/// `adcomp-infer`'s shared [`stream_seed`](adcomp_infer::stream_seed).
const DRAW_DOMAIN: u64 = 0x0DE1_17E4;

/// The RNG stream for opportunity-draw unit `unit` of a delivery run
/// seeded with `seed`.
pub fn draw_unit_rng(seed: u64, unit: u64) -> StdRng {
    StdRng::seed_from_u64(adcomp_infer::stream_seed(seed, DRAW_DOMAIN, unit))
}
