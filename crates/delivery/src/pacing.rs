//! Multiplicative budget pacing.
//!
//! Real delivery systems smooth a campaign's spend over its flight
//! instead of letting it exhaust the budget in the first minutes. The
//! standard mechanism (and the one modelled here) is a per-campaign
//! *pacing multiplier* applied to every bid: at the end of each pacing
//! window the controller compares actual spend against the linear spend
//! schedule `budget × rounds_elapsed / total_rounds` and nudges the
//! multiplier down when the campaign runs ahead (a *throttle*) or back
//! up when it runs behind. The multiplier is clamped to
//! `[PACE_MIN, 1.0]` — pacing can only throttle, never amplify, a bid.
//!
//! The controller is a pure function of the spend history, so a delivery
//! run's pacing trajectory is deterministic and thread-count independent.

/// Multiplier decay applied when a campaign spends ahead of schedule.
pub const PACE_DOWN: f64 = 0.7;
/// Multiplier growth applied when a campaign spends behind schedule.
pub const PACE_UP: f64 = 1.15;
/// Floor of the pacing multiplier: a throttled campaign keeps bidding a
/// trickle, so it recovers once the schedule catches up.
pub const PACE_MIN: f64 = 0.05;

/// Per-campaign pacing state across one delivery run.
#[derive(Clone, Debug)]
pub struct PacingController {
    budget_micros: u64,
    total_rounds: u64,
    multiplier: f64,
    throttles: u64,
}

impl PacingController {
    /// A controller for a campaign with `budget_micros` over
    /// `total_rounds` rounds, starting unthrottled.
    pub fn new(budget_micros: u64, total_rounds: u64) -> PacingController {
        PacingController {
            budget_micros,
            total_rounds: total_rounds.max(1),
            multiplier: 1.0,
            throttles: 0,
        }
    }

    /// The current bid multiplier in `[PACE_MIN, 1.0]`.
    pub fn multiplier(&self) -> f64 {
        self.multiplier
    }

    /// Times the controller throttled (ran ahead of schedule).
    pub fn throttles(&self) -> u64 {
        self.throttles
    }

    /// The linear spend schedule at `rounds_elapsed`.
    pub fn scheduled_spend(&self, rounds_elapsed: u64) -> u64 {
        ((self.budget_micros as u128 * rounds_elapsed as u128) / self.total_rounds as u128) as u64
    }

    /// Window-boundary update: compares `spent_micros` (cumulative) with
    /// the schedule at `rounds_elapsed` and adjusts the multiplier.
    pub fn on_window(&mut self, spent_micros: u64, rounds_elapsed: u64) {
        let scheduled = self.scheduled_spend(rounds_elapsed);
        if spent_micros > scheduled {
            self.multiplier = (self.multiplier * PACE_DOWN).max(PACE_MIN);
            self.throttles += 1;
        } else if spent_micros < scheduled {
            self.multiplier = (self.multiplier * PACE_UP).min(1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttles_when_ahead_recovers_when_behind() {
        let mut p = PacingController::new(1_000_000, 1_000);
        // Spent the whole budget after 100 rounds: way ahead.
        p.on_window(1_000_000, 100);
        assert!(p.multiplier() < 1.0);
        assert_eq!(p.throttles(), 1);
        let throttled = p.multiplier();
        // Now behind schedule: multiplier recovers but never exceeds 1.
        p.on_window(0, 900);
        assert!(p.multiplier() > throttled);
        for _ in 0..100 {
            p.on_window(0, 999);
        }
        assert!(p.multiplier() <= 1.0);
    }

    #[test]
    fn multiplier_never_leaves_clamp() {
        let mut p = PacingController::new(10, 10);
        for round in 0..1_000u64 {
            p.on_window(u64::from(round % 2 == 0) * 10, round % 10 + 1);
            assert!(p.multiplier() >= PACE_MIN && p.multiplier() <= 1.0);
        }
    }

    #[test]
    fn schedule_is_linear_and_exact_at_the_ends() {
        let p = PacingController::new(999, 7);
        assert_eq!(p.scheduled_spend(0), 0);
        assert_eq!(p.scheduled_spend(7), 999);
        assert!(p.scheduled_spend(3) <= 999 * 3 / 7 + 1);
    }
}
