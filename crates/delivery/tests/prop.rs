//! Property tests for the delivery invariants (ISSUE 9):
//!
//! * total spend never exceeds any campaign's budget;
//! * no user exceeds a campaign's frequency cap;
//! * auction outcomes are permutation-invariant in campaign submission
//!   order;
//! * identical seeds yield identical impression logs.

use std::collections::HashMap;
use std::sync::OnceLock;

use adcomp_delivery::{deliver, Campaign, CampaignId, DeliveryConfig, DeliverySetup};
use adcomp_population::{AttributeModel, DemographicProfile, Universe, UniverseConfig};
use adcomp_targeting::TargetingSpec;
use proptest::prelude::*;

fn universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| {
        Universe::generate(&UniverseConfig {
            n_users: 2_500,
            seed: 404,
            scale: 1.0,
            profile: DemographicProfile::balanced(),
        })
    })
}

/// An arbitrary campaign: budgets tight enough to exhaust, biases wide
/// enough to produce one-sided auctions, caps down to 1.
fn arb_campaign(id: u32) -> impl Strategy<Value = Campaign> {
    (
        50_000u64..4_000_000,
        20_000u64..120_000,
        1u32..4,
        -2.0f32..2.0,
        0.05f64..0.9,
    )
        .prop_map(
            move |(budget, max_bid, cap, gender_bias, popularity)| Campaign {
                id: CampaignId(id),
                name: format!("c{id}"),
                targeting: TargetingSpec::everyone(),
                creative: AttributeModel::new(1_000 + u64::from(id))
                    .popularity(popularity)
                    .gender_bias(gender_bias),
                budget_micros: budget,
                max_bid_micros: max_bid,
                frequency_cap: cap,
            },
        )
}

fn arb_roster() -> impl Strategy<Value = Vec<Campaign>> {
    (
        arb_campaign(0),
        arb_campaign(1),
        arb_campaign(2),
        arb_campaign(3),
    )
        .prop_map(|(a, b, c, d)| vec![a, b, c, d])
}

fn run(
    campaigns: Vec<Campaign>,
    rounds: u64,
    seed: u64,
) -> (DeliverySetup, adcomp_delivery::DeliveryOutcome) {
    let u = universe();
    let setup = DeliverySetup::new(campaigns, |c| {
        // Eligibility audience: the creative's own materialisation — a
        // different deterministic audience per campaign.
        u.materialize(&c.creative)
    });
    let outcome = deliver(
        u,
        u.everyone(),
        &setup,
        &DeliveryConfig::new(rounds, seed).window(200),
    );
    (setup, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spend_never_exceeds_budget(campaigns in arb_roster(), seed in 0u64..1_000) {
        let (setup, outcome) = run(campaigns, 1_500, seed);
        for (index, campaign) in setup.campaigns().iter().enumerate() {
            prop_assert!(
                outcome.spend_micros[index] <= campaign.budget_micros,
                "campaign {} spent {} of budget {}",
                campaign.id,
                outcome.spend_micros[index],
                campaign.budget_micros
            );
        }
        // Settlement also reconciles: spend equals the sum of logged prices.
        let mut logged = vec![0u64; setup.len()];
        for imp in &outcome.impressions {
            logged[setup.index_of(imp.campaign).unwrap()] += imp.price_micros;
        }
        prop_assert_eq!(logged, outcome.spend_micros);
    }

    #[test]
    fn frequency_caps_hold_per_user(campaigns in arb_roster(), seed in 0u64..1_000) {
        let (setup, outcome) = run(campaigns, 1_500, seed);
        let mut per_user: HashMap<(CampaignId, u32), u32> = HashMap::new();
        for imp in &outcome.impressions {
            *per_user.entry((imp.campaign, imp.user)).or_insert(0) += 1;
        }
        for (&(campaign, user), &count) in &per_user {
            let cap = setup.campaigns()[setup.index_of(campaign).unwrap()].frequency_cap;
            prop_assert!(
                count <= cap,
                "campaign {campaign} served user {user} {count} times (cap {cap})"
            );
        }
    }

    #[test]
    fn submission_order_is_irrelevant(campaigns in arb_roster(), rotate in 0usize..4, seed in 0u64..1_000) {
        let mut shuffled = campaigns.clone();
        shuffled.rotate_left(rotate);
        shuffled.reverse();
        let (_, a) = run(campaigns, 1_000, seed);
        let (_, b) = run(shuffled, 1_000, seed);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.impressions, b.impressions);
    }

    #[test]
    fn identical_seeds_identical_logs(campaigns in arb_roster(), seed in 0u64..1_000) {
        let (_, a) = run(campaigns.clone(), 1_000, seed);
        let (_, b) = run(campaigns, 1_000, seed);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.impressions, b.impressions);
        prop_assert_eq!(a.spend_micros, b.spend_micros);
        prop_assert_eq!(a.unfilled, b.unfilled);
    }
}
