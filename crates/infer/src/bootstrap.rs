//! Seeded, counter-driven bootstrap resampling.
//!
//! Replicate `r` of a resample is a pure function of `(seed, r)` — its
//! draws come from [`CounterRng::stream`] keyed on the replicate index,
//! never from a shared stateful generator — so a bootstrap fanned out
//! across any number of workers (or recorded and resumed) reproduces
//! the serial run byte-for-byte, the same discipline the delivery
//! engine's opportunity streams follow.

use crate::interval::Interval;
use crate::rng::CounterRng;

/// Stream domain for bootstrap replicates (disjoint from the discovery
/// schedule's `0x52A4D` and the delivery engine's `0x0DE1_17E4`).
pub const BOOTSTRAP_DOMAIN: u64 = 0x00B0_0757;

/// Bootstrap parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapConfig {
    /// Number of replicates.
    pub replicates: u32,
    /// Two-sided coverage of the percentile interval (e.g. `0.95`).
    pub confidence: f64,
    /// Base seed; replicate `r` uses stream `(seed, BOOTSTRAP_DOMAIN, r)`.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> BootstrapConfig {
        BootstrapConfig {
            replicates: 200,
            confidence: 0.95,
            seed: 0x5EED,
        }
    }
}

/// A binomial draw from the replicate stream. Exact CDF inversion when
/// the distribution is narrow; clamped normal approximation when it is
/// wide (platform-scale counts run into the hundreds of millions, where
/// per-trial sampling is infeasible and the approximation error is far
/// below rounding slack). Deterministic: a pure function of the stream
/// position and `(n, p)`.
pub fn binomial(rng: &mut CounterRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    if var > 100.0 {
        let z = rng.normal_f64();
        let k = (mean + z * var.sqrt()).round();
        return (k.max(0.0) as u64).min(n);
    }
    // Narrow case: walk the CDF. pmf(0) = (1-p)^n via logs to survive
    // large n with tiny p; successive terms by the recurrence
    // pmf(k+1) = pmf(k) · (n-k)/(k+1) · p/(1-p).
    let u = rng.unit_f64();
    let mut pmf = (n as f64 * (1.0 - p).ln()).exp();
    let odds = p / (1.0 - p);
    let mut cdf = pmf;
    let mut k: u64 = 0;
    while cdf < u && k < n {
        pmf *= (n - k) as f64 / (k + 1) as f64 * odds;
        if !pmf.is_finite() || pmf <= 0.0 {
            break;
        }
        cdf += pmf;
        k += 1;
    }
    k
}

/// One multinomial resample of `counts` (replicate `replicate` of base
/// `seed`): draws a new vector with the same total whose cells are
/// multinomially distributed around the observed proportions, via
/// sequential conditional binomials. Zero-total input resamples to
/// itself.
pub fn resample_counts(seed: u64, replicate: u64, counts: &[u64]) -> Vec<u64> {
    let mut rng = CounterRng::stream(seed, BOOTSTRAP_DOMAIN, replicate);
    let total: u64 = counts.iter().sum();
    let mut out = vec![0u64; counts.len()];
    if total == 0 || counts.is_empty() {
        return out;
    }
    let mut remaining_n = total;
    let mut remaining_mass = total;
    for (i, &c) in counts.iter().enumerate() {
        if i + 1 == counts.len() {
            out[i] = remaining_n;
            break;
        }
        if remaining_mass == 0 || remaining_n == 0 {
            break;
        }
        let p = c as f64 / remaining_mass as f64;
        let x = binomial(&mut rng, remaining_n, p);
        out[i] = x;
        remaining_n -= x;
        remaining_mass -= c;
    }
    out
}

/// Linear-interpolated percentile of an ascending-sorted slice
/// (NumPy's default method, matching `adcomp-core`'s `stats`).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The central percentile interval of `samples` at `confidence`
/// coverage, expanded (if necessary) to contain `point` — a bootstrap
/// interval that excluded the statistic it resampled from would be an
/// artefact, so containment holds by construction. Non-finite samples
/// are dropped; with no finite samples the interval is the point.
pub fn percentile_interval(samples: &[f64], confidence: f64, point: f64) -> Interval {
    let mut finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Interval::point(point);
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    Interval::new(percentile(&finite, alpha), percentile(&finite, 1.0 - alpha)).expand_to(point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_preserves_total_and_determinism() {
        let counts = [120_000u64, 80_000, 40_000, 10_000];
        for r in 0..16u64 {
            let a = resample_counts(42, r, &counts);
            assert_eq!(a.iter().sum::<u64>(), counts.iter().sum::<u64>());
            assert_eq!(a, resample_counts(42, r, &counts), "replicate {r}");
        }
        assert_ne!(
            resample_counts(42, 0, &counts),
            resample_counts(42, 1, &counts),
            "replicates differ"
        );
    }

    #[test]
    fn resample_handles_edges() {
        assert_eq!(resample_counts(1, 0, &[]), Vec::<u64>::new());
        assert_eq!(resample_counts(1, 0, &[0, 0]), vec![0, 0]);
        assert_eq!(resample_counts(1, 0, &[7]), vec![7]);
        // A zero cell stays zero in expectation but the total is exact.
        let r = resample_counts(1, 3, &[0, 100]);
        assert_eq!(r.iter().sum::<u64>(), 100);
        assert_eq!(r[0], 0, "p=0 cell draws nothing");
    }

    #[test]
    fn binomial_moments_are_sane() {
        // Wide case (normal approximation).
        let mut rng = CounterRng::new(7);
        let n = 1_000_000u64;
        let p = 0.3;
        let mut sum = 0.0;
        let reps = 400;
        for _ in 0..reps {
            sum += binomial(&mut rng, n, p) as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean / (n as f64 * p) - 1.0).abs() < 0.01, "mean {mean}");
        // Narrow case (CDF walk).
        let mut small = 0.0;
        for _ in 0..reps {
            small += binomial(&mut rng, 50, 0.1) as f64;
        }
        let mean = small / reps as f64;
        assert!((mean - 5.0).abs() < 1.0, "mean {mean}");
        // Degenerate cases.
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn percentile_matches_linear_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn interval_contains_point_by_construction() {
        // Even when every sample sits on one side of the point.
        let samples = [2.0, 2.1, 2.2, 2.3];
        let i = percentile_interval(&samples, 0.95, 1.0);
        assert!(i.contains(1.0) && i.contains(2.2));
        // NaN samples are dropped, empty falls back to the point.
        let i = percentile_interval(&[f64::NAN], 0.95, 3.0);
        assert_eq!(i, Interval::point(3.0));
    }
}
