//! Interval arithmetic for audit estimates.
//!
//! Platform estimates are rounded (to two significant digits, to tiered
//! ladders, to reporting floors), classifiers mislabel, and panels have
//! holes. Each of those turns a point count into a *range* of counts
//! consistent with what was observed; this module propagates such ranges
//! through the representation-ratio formula so a verdict can say how
//! much of its conclusion survives the slack.

/// A closed real interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`, reordering if given backwards.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Smallest interval containing both `self` and `other`.
    pub fn hull(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Grows the interval (if needed) to contain `v`.
    pub fn expand_to(&self, v: f64) -> Interval {
        Interval {
            lo: self.lo.min(v),
            hi: self.hi.max(v),
        }
    }

    /// Interval sum.
    pub fn add(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// Interval difference.
    pub fn sub(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo - other.hi,
            hi: self.hi - other.lo,
        }
    }

    /// Interval product (handles sign changes).
    pub fn mul(&self, other: Interval) -> Interval {
        let cands = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        let mut lo = cands[0];
        let mut hi = cands[0];
        for c in &cands[1..] {
            lo = lo.min(*c);
            hi = hi.max(*c);
        }
        Interval { lo, hi }
    }

    /// Interval quotient. `None` when `other` contains zero — the ratio
    /// is then unbounded, which callers must surface as *indeterminate*
    /// rather than a silently clipped range.
    pub fn div(&self, other: Interval) -> Option<Interval> {
        if other.lo <= 0.0 && other.hi >= 0.0 {
            return None;
        }
        Some(self.mul(Interval::new(1.0 / other.hi, 1.0 / other.lo)))
    }
}

/// A range of exact counts consistent with an observation — the inverse
/// image of a rounded estimate, a count ± missing mass, etc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CountRange {
    /// Smallest consistent exact count.
    pub lo: u64,
    /// Largest consistent exact count.
    pub hi: u64,
}

impl CountRange {
    /// The exact count `v` with no slack.
    pub fn exact(v: u64) -> CountRange {
        CountRange { lo: v, hi: v }
    }

    /// The range `[lo, hi]`, reordering if given backwards.
    pub fn new(lo: u64, hi: u64) -> CountRange {
        if lo <= hi {
            CountRange { lo, hi }
        } else {
            CountRange { lo: hi, hi: lo }
        }
    }

    /// Widens the upper endpoint by `extra` — the "all the missing mass
    /// could be in this cell" direction of a partial-identification
    /// bound.
    pub fn widen_hi(&self, extra: u64) -> CountRange {
        CountRange {
            lo: self.lo,
            hi: self.hi.saturating_add(extra),
        }
    }

    /// The range as a real interval.
    pub fn interval(&self) -> Interval {
        Interval {
            lo: self.lo as f64,
            hi: self.hi as f64,
        }
    }
}

/// All representation ratios consistent with the four count ranges
/// (Equation 1 of the paper: `(ta_s/ra_s) / (ta_not/ra_not)`).
///
/// The ratio is monotone increasing in `ta_s` and `ra_not`, decreasing
/// in `ta_not` and `ra_s`, so the extremes come from the endpoints —
/// the same argument `adcomp-core`'s rounding-only `ratio_bounds` uses.
/// `None` when a denominator can be zero (the ratio is then undefined
/// somewhere in the box).
pub fn rep_ratio_interval(
    ta_s: CountRange,
    ta_not: CountRange,
    ra_s: CountRange,
    ra_not: CountRange,
) -> Option<Interval> {
    let ratio = |ts: u64, tns: u64, rs: u64, rns: u64| -> Option<f64> {
        if rs == 0 || rns == 0 || tns == 0 {
            return None;
        }
        Some((ts as f64 / rs as f64) / (tns as f64 / rns as f64))
    };
    let lo = ratio(ta_s.lo, ta_not.hi, ra_s.hi, ra_not.lo)?;
    let hi = ratio(ta_s.hi, ta_not.lo.max(1), ra_s.lo.max(1), ra_not.hi)?;
    Some(Interval::new(lo, hi))
}

/// Corrects an observed (classifier-labelled) class share for known
/// misclassification rates — the Rogan–Gladen estimator, intervalised.
///
/// `observed_share` is the fraction of labelled units carrying the class
/// label; `sensitivity` is `P(labelled s | truly s)` and `specificity`
/// is `P(labelled ¬s | truly ¬s)`, both as intervals (exact rates are
/// degenerate intervals). The true share is
/// `(observed - (1 - specificity)) / (sensitivity + specificity - 1)`.
///
/// Returns `None` when the denominator interval touches zero — at error
/// rates near one half the observation carries no information about the
/// true share, and the caller must report *indeterminate* instead of a
/// number.
pub fn deconvolve_share(
    observed_share: Interval,
    sensitivity: Interval,
    specificity: Interval,
) -> Option<Interval> {
    let false_pos = Interval::point(1.0).sub(specificity);
    let denom = sensitivity.add(specificity).sub(Interval::point(1.0));
    let raw = observed_share.sub(false_pos).div(denom)?;
    // Shares live in [0, 1]; the linear correction can overshoot.
    Some(Interval::new(
        raw.lo.clamp(0.0, 1.0),
        raw.hi.clamp(0.0, 1.0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_and_contains() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(1.5, 3.0);
        assert_eq!(a.hull(b), Interval::new(1.0, 3.0));
        assert!(a.contains(1.0) && a.contains(2.0) && !a.contains(2.1));
        assert_eq!(Interval::point(5.0).width(), 0.0);
        assert_eq!(a.expand_to(0.5).lo, 0.5);
    }

    #[test]
    fn division_by_zero_straddle_is_none() {
        let num = Interval::new(1.0, 2.0);
        assert!(num.div(Interval::new(-1.0, 1.0)).is_none());
        let q = num.div(Interval::new(2.0, 4.0)).unwrap();
        assert!((q.lo - 0.25).abs() < 1e-12 && (q.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_interval_contains_point_ratio() {
        let r = rep_ratio_interval(
            CountRange::new(900, 1100),
            CountRange::new(1900, 2100),
            CountRange::new(9_500, 10_500),
            CountRange::new(19_000, 21_000),
        )
        .unwrap();
        // Point ratio from the midpoints: (1000/10000)/(2000/20000) = 1.
        assert!(r.contains(1.0), "{r:?}");
        assert!(r.lo > 0.5 && r.hi < 2.0, "{r:?}");
        // Degenerate ranges collapse to the point ratio.
        let p = rep_ratio_interval(
            CountRange::exact(1000),
            CountRange::exact(2000),
            CountRange::exact(10_000),
            CountRange::exact(20_000),
        )
        .unwrap();
        assert!((p.lo - 1.0).abs() < 1e-12 && (p.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_interval_zero_denominator_is_none() {
        assert!(rep_ratio_interval(
            CountRange::exact(10),
            CountRange::exact(0),
            CountRange::exact(100),
            CountRange::exact(100),
        )
        .is_none());
    }

    #[test]
    fn deconvolve_identity_at_zero_error() {
        let obs = Interval::point(0.3);
        let t = deconvolve_share(obs, Interval::point(1.0), Interval::point(1.0)).unwrap();
        assert!((t.lo - 0.3).abs() < 1e-12 && (t.hi - 0.3).abs() < 1e-12);
    }

    #[test]
    fn deconvolve_recovers_known_mixture() {
        // True share 0.2, sensitivity 0.9, specificity 0.8:
        // observed = 0.2*0.9 + 0.8*0.2 = 0.34.
        let obs = Interval::point(0.2 * 0.9 + 0.8 * 0.2);
        let t = deconvolve_share(obs, Interval::point(0.9), Interval::point(0.8)).unwrap();
        assert!((t.lo - 0.2).abs() < 1e-9 && (t.hi - 0.2).abs() < 1e-9);
    }

    #[test]
    fn deconvolve_unidentified_at_half_error() {
        // sensitivity + specificity = 1 → the observation is pure noise.
        assert!(deconvolve_share(
            Interval::point(0.5),
            Interval::point(0.5),
            Interval::point(0.5)
        )
        .is_none());
    }
}
