//! Uncertainty propagation for composition audits (`adcomp-infer`).
//!
//! Every verdict the audit stack emits — representation ratios,
//! four-fifths crossings, drift alerts, delivery-skew tables — is
//! computed from noisy inputs: platform estimates are rounded to
//! coarse ladders, real auditors hold *inferred* (not ground-truth)
//! sensitive attributes, and panels have missing users. This crate is
//! the dependency-free machinery that carries those error sources
//! through to the verdict:
//!
//! * [`rng`] — counter-driven seeded streams (`splitmix64`,
//!   [`stream_seed`], [`CounterRng`]): every draw is a pure function of
//!   `(seed, counter)`, so resampling fan-outs are byte-identical for
//!   any thread count — the shared implementation behind the discovery
//!   schedule's and delivery engine's per-unit streams;
//! * [`bootstrap`] — a seeded multinomial bootstrap
//!   ([`resample_counts`], [`percentile_interval`]) whose replicate `r`
//!   depends only on `(seed, r)`;
//! * [`interval`] — interval arithmetic ([`Interval`], [`CountRange`],
//!   [`rep_ratio_interval`]) folding rounding-ladder slack and
//!   missing-mass bounds into ratio intervals, plus the intervalised
//!   Rogan–Gladen misclassification correction
//!   ([`deconvolve_share`]);
//! * [`ratio`] — [`ConfidentRatio`]: a representation ratio carrying a
//!   confidence interval and a [`RatioVerdict`] against the four-fifths
//!   band, where a straddling interval is `Indeterminate` instead of a
//!   false `Within`.
//!
//! The inferred-attribute *channel* itself (confusion matrices and
//! missingness over a simulated universe) lives in
//! `adcomp-population`; the scenario drivers live in
//! `adcomp-core::experiments::uncertainty_exp`. This crate knows
//! nothing about platforms or populations — only counts, intervals,
//! and seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod interval;
pub mod ratio;
pub mod rng;

pub use bootstrap::{
    binomial, percentile, percentile_interval, resample_counts, BootstrapConfig, BOOTSTRAP_DOMAIN,
};
pub use interval::{deconvolve_share, rep_ratio_interval, CountRange, Interval};
pub use ratio::{ConfidentRatio, RatioVerdict, FOUR_FIFTHS_HIGH, FOUR_FIFTHS_LOW};
pub use rng::{splitmix64, stream_seed, CounterRng};
