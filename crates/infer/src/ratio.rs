//! Confidence-qualified representation ratios.
//!
//! A point ratio answers "is this audience skewed?" with a band; a
//! [`ConfidentRatio`] answers it with a band *and* how much slack —
//! rounding ladders, resampling noise, inference error, missing users —
//! the verdict survives. The fourth verdict, [`RatioVerdict::Indeterminate`],
//! is the honest answer the related work (arXiv 2410.23394, 2605.12273)
//! shows point audits silently get wrong: when the interval straddles a
//! four-fifths edge, the data cannot distinguish compliant from
//! discriminatory.

use crate::interval::Interval;

/// Lower edge of the four-fifths band. Mirrors `adcomp-core`'s
/// `FOUR_FIFTHS_LOW` (this crate is dependency-free, so the constant is
/// restated; a test in `adcomp-core` pins the two together).
pub const FOUR_FIFTHS_LOW: f64 = 0.8;
/// Upper edge of the four-fifths band (`1 / 0.8`).
pub const FOUR_FIFTHS_HIGH: f64 = 1.0 / 0.8;

/// Where a ratio *interval* falls relative to a band.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RatioVerdict {
    /// The whole interval is below the band: under-representation holds
    /// under every consistent value.
    Under,
    /// The whole interval is inside the band.
    Within,
    /// The whole interval is above the band: over-representation holds
    /// under every consistent value.
    Over,
    /// The interval straddles a band edge (or the ratio is not
    /// identified at all): the data cannot support a verdict.
    Indeterminate,
}

impl RatioVerdict {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            RatioVerdict::Under => "Under",
            RatioVerdict::Within => "Within",
            RatioVerdict::Over => "Over",
            RatioVerdict::Indeterminate => "Indeterminate",
        }
    }
}

impl std::fmt::Display for RatioVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A representation ratio carrying its confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidentRatio {
    /// The point estimate (always inside `interval`).
    pub point: f64,
    /// The confidence interval around it.
    pub interval: Interval,
    /// Nominal two-sided coverage of `interval` (e.g. `0.95`).
    pub confidence: f64,
    /// Whether the ratio is identified at all. `false` when inference
    /// error is so high the observation carries no information (the
    /// deconvolution denominator crosses zero) — the verdict is then
    /// [`RatioVerdict::Indeterminate`] regardless of the interval.
    pub identified: bool,
}

impl ConfidentRatio {
    /// A ratio with interval evidence; the interval is expanded (if
    /// needed) to contain the point.
    pub fn new(point: f64, interval: Interval, confidence: f64) -> ConfidentRatio {
        ConfidentRatio {
            point,
            interval: interval.expand_to(point),
            confidence,
            identified: true,
        }
    }

    /// A degenerate ratio with no interval evidence — behaves exactly
    /// like today's point verdicts.
    pub fn from_point(point: f64) -> ConfidentRatio {
        ConfidentRatio {
            point,
            interval: Interval::point(point),
            confidence: 1.0,
            identified: true,
        }
    }

    /// An unidentified ratio (e.g. error rates at one half): the point
    /// is reported for context but the verdict is indeterminate.
    pub fn unidentified(point: f64, confidence: f64) -> ConfidentRatio {
        ConfidentRatio {
            point,
            interval: Interval::point(point),
            confidence,
            identified: false,
        }
    }

    /// Verdict against an arbitrary band `[low, high]`.
    ///
    /// A degenerate (point) interval reduces exactly to the point
    /// banding rule: `< low` under, `> high` over, else within — so at
    /// zero uncertainty confident verdicts match point verdicts.
    pub fn verdict_against(&self, low: f64, high: f64) -> RatioVerdict {
        if !self.identified {
            return RatioVerdict::Indeterminate;
        }
        if self.interval.hi < low {
            RatioVerdict::Under
        } else if self.interval.lo > high {
            RatioVerdict::Over
        } else if self.interval.lo >= low && self.interval.hi <= high {
            RatioVerdict::Within
        } else {
            RatioVerdict::Indeterminate
        }
    }

    /// Verdict against the four-fifths band.
    pub fn verdict(&self) -> RatioVerdict {
        self.verdict_against(FOUR_FIFTHS_LOW, FOUR_FIFTHS_HIGH)
    }

    /// Whether the interval straddles either four-fifths edge — the
    /// "low confidence" tag drift alerts carry.
    pub fn straddles_four_fifths(&self) -> bool {
        let s = |edge: f64| self.interval.lo < edge && self.interval.hi >= edge;
        !self.identified || s(FOUR_FIFTHS_LOW) || s(FOUR_FIFTHS_HIGH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ratio_matches_point_banding() {
        for (v, want) in [
            (0.79, RatioVerdict::Under),
            (0.8, RatioVerdict::Within),
            (1.0, RatioVerdict::Within),
            (1.25, RatioVerdict::Within),
            (1.26, RatioVerdict::Over),
        ] {
            assert_eq!(ConfidentRatio::from_point(v).verdict(), want, "{v}");
        }
    }

    #[test]
    fn straddling_interval_is_indeterminate() {
        let r = ConfidentRatio::new(0.85, Interval::new(0.7, 0.9), 0.95);
        assert_eq!(r.verdict(), RatioVerdict::Indeterminate);
        assert!(r.straddles_four_fifths());
        let r = ConfidentRatio::new(0.5, Interval::new(0.4, 0.6), 0.95);
        assert_eq!(r.verdict(), RatioVerdict::Under);
        assert!(!r.straddles_four_fifths());
        let r = ConfidentRatio::new(2.0, Interval::new(1.5, 3.0), 0.95);
        assert_eq!(r.verdict(), RatioVerdict::Over);
    }

    #[test]
    fn interval_always_contains_point() {
        let r = ConfidentRatio::new(0.5, Interval::new(0.9, 1.1), 0.95);
        assert!(r.interval.contains(0.5));
    }

    #[test]
    fn unidentified_is_always_indeterminate() {
        let r = ConfidentRatio::unidentified(1.0, 0.95);
        assert_eq!(r.verdict(), RatioVerdict::Indeterminate);
        assert!(r.straddles_four_fifths());
    }

    #[test]
    fn band_edges_are_four_fifths() {
        assert_eq!(FOUR_FIFTHS_LOW, 0.8);
        assert!((FOUR_FIFTHS_HIGH - 1.25).abs() < 1e-12);
    }
}
