//! Counter-driven seeded randomness: every draw is a pure function of
//! `(seed, counter)`, never of prior outcomes, so any consumer can
//! reproduce any slice of a stream locally — the property the delivery
//! engine's opportunity streams and the discovery schedule already rely
//! on, extracted here so all three (and the bootstrap) share one
//! implementation.

/// splitmix64 finalizer — the same mixing function `adcomp-core`'s
/// discovery schedule and `adcomp-delivery`'s opportunity streams use
/// (and must keep using byte-for-byte: recorded runs depend on it).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed of per-unit stream `unit` in `domain`, derived from one base
/// seed. Matches the historical per-call-site formula
/// `splitmix64((seed ^ DOMAIN).wrapping_add(unit))` exactly, so callers
/// that migrate here keep their streams byte-identical.
pub fn stream_seed(seed: u64, domain: u64, unit: u64) -> u64 {
    splitmix64((seed ^ domain).wrapping_add(unit))
}

/// A counter-driven RNG: draw `i` is `splitmix64` of `state + i·γ` (the
/// canonical splitmix64 sequence). Unlike a stateful generator whose
/// position depends on how many draws happened before, the stream is a
/// pure function of `(seed, draw index)` — byte-identical for any thread
/// count or work partition.
#[derive(Clone, Debug)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// A stream starting at `seed`.
    pub fn new(seed: u64) -> CounterRng {
        CounterRng { state: seed }
    }

    /// The stream for `unit` of `domain` under one base `seed` — see
    /// [`stream_seed`].
    pub fn stream(seed: u64, domain: u64, unit: u64) -> CounterRng {
        CounterRng::new(stream_seed(seed, domain, unit))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        // Advance by the golden-ratio increment (splitmix64's γ); the
        // finalizer adds it once more internally, which keeps successive
        // inputs well separated.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }

    /// Uniform in `[0, 1)` with 53 bits of precision (the same `>> 11`
    /// construction `adcomp-population`'s hash streams use).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box–Muller (two draws per call).
    pub fn normal_f64(&mut self) -> f64 {
        let mut u1 = self.unit_f64();
        let u2 = self.unit_f64();
        if u1 <= 0.0 {
            u1 = f64::MIN_POSITIVE;
        }
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalizer_matches_reference_vector() {
        // splitmix64(seed = 0) reference sequence (Vigna): the first
        // output is finalize(0 + γ).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn stream_seed_matches_historical_formula() {
        for (seed, domain, unit) in [(2020u64, 0x52A4Du64, 7u64), (1, 0x0DE1_17E4, 63)] {
            assert_eq!(
                stream_seed(seed, domain, unit),
                splitmix64((seed ^ domain).wrapping_add(unit))
            );
        }
    }

    #[test]
    fn counter_stream_is_position_independent() {
        let mut a = CounterRng::stream(9, 0x77, 4);
        let draws: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        // A fresh stream re-reads the same prefix regardless of how the
        // consumer batches its draws.
        let mut b = CounterRng::stream(9, 0x77, 4);
        for d in &draws {
            assert_eq!(*d, b.next_u64());
        }
        // Neighbouring units are decorrelated.
        let mut c = CounterRng::stream(9, 0x77, 5);
        assert_ne!(draws[0], c.next_u64());
    }

    #[test]
    fn unit_f64_in_range_and_normal_finite() {
        let mut rng = CounterRng::new(123);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            let z = rng.normal_f64();
            assert!(z.is_finite());
            sum += z;
        }
        assert!((sum / 1000.0).abs() < 0.2, "normal mean far off: {sum}");
    }
}
