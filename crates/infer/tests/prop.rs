//! Property tests for the bootstrap and interval machinery.

use adcomp_infer::{
    percentile_interval, rep_ratio_interval, resample_counts, ConfidentRatio, CountRange, Interval,
    RatioVerdict,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bootstrap interval always contains the point estimate it was
    /// resampled from — the satellite acceptance property.
    #[test]
    fn bootstrap_interval_contains_point(
        seed in 0u64..1000,
        ta_s in 1_000u64..200_000,
        ta_not in 1_000u64..200_000,
    ) {
        let ra_s = 1_000_000u64;
        let ra_not = 1_100_000u64;
        let point = (ta_s as f64 / ra_s as f64) / (ta_not as f64 / ra_not as f64);
        let mut samples = Vec::new();
        for r in 0..64u64 {
            let cells = resample_counts(seed, r, &[ta_s, ta_not]);
            if cells[1] == 0 {
                continue;
            }
            samples.push((cells[0] as f64 / ra_s as f64) / (cells[1] as f64 / ra_not as f64));
        }
        let interval = percentile_interval(&samples, 0.95, point);
        prop_assert!(interval.contains(point), "{interval:?} vs point {point}");
        // And the ConfidentRatio constructor preserves containment.
        let cr = ConfidentRatio::new(point, interval, 0.95);
        prop_assert!(cr.interval.contains(cr.point));
    }

    /// Resampling preserves the total for any cell vector.
    #[test]
    fn resample_total_invariant(
        seed in 0u64..1000,
        replicate in 0u64..64,
        cells in proptest::collection::vec(0u64..1_000_000, 1..6),
    ) {
        let resampled = resample_counts(seed, replicate, &cells);
        prop_assert_eq!(resampled.len(), cells.len());
        prop_assert_eq!(
            resampled.iter().sum::<u64>(),
            cells.iter().sum::<u64>()
        );
    }

    /// The ratio interval from count ranges always contains the ratio
    /// of any point inside the ranges (spot-checked at the midpoints
    /// and corners).
    #[test]
    fn ratio_interval_contains_inner_points(
        ta_s in 10u64..10_000,
        ta_not in 10u64..10_000,
        slack in 0u64..500,
    ) {
        let (ra_s, ra_not) = (500_000u64, 600_000u64);
        let range = |v: u64| CountRange::new(v.saturating_sub(slack), v + slack);
        let interval = rep_ratio_interval(
            range(ta_s), range(ta_not), range(ra_s), range(ra_not),
        ).expect("denominators are far from zero");
        let point = |ts: u64, tns: u64| {
            (ts as f64 / ra_s as f64) / (tns as f64 / ra_not as f64)
        };
        prop_assert!(interval.contains(point(ta_s, ta_not)));
        // Corner points of the (ta_s, ta_not) box are extreme in the
        // monotone directions and must still be inside.
        let eps = 1e-9;
        for ts in [ta_s.saturating_sub(slack).max(1), ta_s + slack] {
            for tns in [ta_not.saturating_sub(slack).max(1), ta_not + slack] {
                let p = point(ts, tns);
                prop_assert!(
                    interval.lo - eps <= p && p <= interval.hi + eps,
                    "{interval:?} missing corner {p}"
                );
            }
        }
    }

    /// Verdicts are consistent with the interval: a strict subset of a
    /// band region never reports Indeterminate, and a degenerate
    /// interval reduces to the point banding rule.
    #[test]
    fn verdict_consistency(point in 0.01f64..3.0, width in 0.0f64..0.5) {
        let interval = Interval::new(point - width, point + width);
        let cr = ConfidentRatio::new(point, interval, 0.95);
        let verdict = cr.verdict();
        match verdict {
            RatioVerdict::Under => prop_assert!(interval.hi < 0.8),
            RatioVerdict::Over => prop_assert!(interval.lo > 1.25),
            RatioVerdict::Within => {
                prop_assert!(interval.lo >= 0.8 && interval.hi <= 1.25)
            }
            RatioVerdict::Indeterminate => prop_assert!(
                cr.straddles_four_fifths(),
                "indeterminate implies a straddled edge: {interval:?}"
            ),
        }
        let degenerate = ConfidentRatio::from_point(point).verdict();
        prop_assert_ne!(degenerate, RatioVerdict::Indeterminate);
    }
}
