//! Latency attribution: where did an end-to-end request spend its time?
//!
//! A distributed estimate threads one trace through sched's queue, a
//! lease, the wire client, and the remote platform. Each layer opens a
//! span (or emits a `duration_us` event) named `layer:what`. This module
//! folds those records back into per-layer **exclusive** time:
//!
//! * spans contribute their duration minus the duration of their
//!   children (self time);
//! * point events carrying a `duration_us` field (`sched:queue_wait`,
//!   `platform:remote`) count as leaf children of their parent span.
//!
//! Exclusive times are summed per category — the `layer` prefix before
//! `:` — so `queue + lease + wire + platform + root-self` reconstructs
//! the root span's end-to-end duration exactly (up to clamping when
//! concurrent children overlap their parent).
//!
//! Feed it one process's events (a JSONL sink re-parsed with
//! [`TraceEvent::from_json`], or [`Tracer::ring_events`]). Merging
//! client *and* server sinks first double-counts the platform segment:
//! the client already echoes the server's time as `platform:remote`.

use std::collections::BTreeMap;

use crate::trace::{EventKind, TraceEvent, Tracer};

/// Per-trace latency breakdown; see [`latency_attribution`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyAttribution {
    /// The trace this breakdown covers.
    pub trace_id: u64,
    /// Name of the trace's root span.
    pub root: String,
    /// The root span's duration in microseconds (end-to-end latency).
    pub total_us: u64,
    /// Exclusive microseconds per category (the `layer:` prefix),
    /// largest first; the root span's own category holds its self time.
    pub segments: Vec<(String, u64)>,
}

impl LatencyAttribution {
    /// Exclusive time of one category, zero when absent.
    pub fn segment_us(&self, category: &str) -> u64 {
        self.segments
            .iter()
            .find(|(c, _)| c == category)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of all segments — within clamping error of `total_us`.
    pub fn attributed_us(&self) -> u64 {
        self.segments.iter().map(|(_, v)| v).sum()
    }

    /// A human-readable table, largest segment first.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "── latency attribution · trace {} · {} · {} µs ──",
            self.trace_id, self.root, self.total_us
        );
        for (category, us) in &self.segments {
            let pct = if self.total_us > 0 {
                *us as f64 * 100.0 / self.total_us as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "  {category:<12} {us:>10} µs  {pct:>5.1}%");
        }
        out
    }
}

struct Node {
    name: String,
    parent: Option<u64>,
    duration_us: u64,
    child_us: u64,
}

fn category(name: &str) -> &str {
    name.split(':').next().unwrap_or(name)
}

/// Per-trace fold state: the root span's `(name, duration)` once seen,
/// plus exclusive-time sums keyed by span-name category.
type TraceSums = (Option<(String, u64)>, BTreeMap<String, u64>);

/// Folds trace events into one [`LatencyAttribution`] per trace that has
/// a closed root span, ordered by `trace_id`.
pub fn latency_attribution(events: &[TraceEvent]) -> Vec<LatencyAttribution> {
    // span id -> node; span durations arrive on the span_end record
    // (whose parent field is the *start* seq, per the JSONL schema).
    let mut nodes: BTreeMap<u64, Node> = BTreeMap::new();
    let mut leaf_seq = u64::MAX; // synthetic ids for duration events
    for e in events {
        let Some(trace) = e.trace_id else { continue };
        let _ = trace;
        match e.kind {
            EventKind::SpanStart => {
                nodes.insert(
                    e.seq,
                    Node {
                        name: e.name.clone(),
                        parent: e.parent,
                        duration_us: 0,
                        child_us: 0,
                    },
                );
            }
            EventKind::SpanEnd => {
                if let Some(start) = e.parent {
                    if let Some(node) = nodes.get_mut(&start) {
                        node.duration_us = field_u64(e, "duration_us").unwrap_or(0);
                    }
                }
            }
            EventKind::Event => {
                if let Some(us) = field_u64(e, "duration_us") {
                    nodes.insert(
                        leaf_seq,
                        Node {
                            name: e.name.clone(),
                            parent: e.parent,
                            duration_us: us,
                            child_us: 0,
                        },
                    );
                    leaf_seq -= 1;
                }
            }
        }
    }

    // Charge every node's duration to its parent's child total.
    let charges: Vec<(u64, u64)> = nodes
        .values()
        .filter_map(|n| n.parent.map(|p| (p, n.duration_us)))
        .collect();
    for (parent, us) in charges {
        if let Some(p) = nodes.get_mut(&parent) {
            p.child_us += us;
        }
    }

    // Trace id -> (root info, per-category exclusive sums).
    let trace_of: BTreeMap<u64, u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .filter_map(|e| e.trace_id.map(|t| (e.seq, t)))
        .collect();
    let mut per_trace: BTreeMap<u64, TraceSums> = BTreeMap::new();
    for (id, node) in &nodes {
        // Leaf duration events get their trace through their parent span.
        let trace = trace_of
            .get(id)
            .or_else(|| node.parent.as_ref().and_then(|p| trace_of.get(p)))
            .copied();
        let Some(trace) = trace else { continue };
        let entry = per_trace.entry(trace).or_default();
        let exclusive = node.duration_us.saturating_sub(node.child_us);
        *entry.1.entry(category(&node.name).to_string()).or_default() += exclusive;
        let is_root = node.parent.map(|p| !nodes.contains_key(&p)).unwrap_or(true);
        if is_root && node.duration_us > 0 && trace_of.contains_key(id) {
            entry.0 = Some((node.name.clone(), node.duration_us));
        }
    }

    per_trace
        .into_iter()
        .filter_map(|(trace_id, (root, categories))| {
            let (root, total_us) = root?;
            let mut segments: Vec<(String, u64)> =
                categories.into_iter().filter(|(_, v)| *v > 0).collect();
            segments.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            Some(LatencyAttribution {
                trace_id,
                root,
                total_us,
                segments,
            })
        })
        .collect()
}

/// [`latency_attribution`] over a tracer's current ring contents.
pub fn ring_attribution(tracer: &Tracer) -> Vec<LatencyAttribution> {
    latency_attribution(&tracer.ring_events())
}

fn field_u64(e: &TraceEvent, key: &str) -> Option<u64> {
    e.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        seq: u64,
        kind: EventKind,
        name: &str,
        trace: u64,
        parent: Option<u64>,
        duration: Option<u64>,
    ) -> TraceEvent {
        TraceEvent {
            seq,
            ts_us: 0,
            kind,
            name: name.to_string(),
            trace_id: Some(trace),
            parent,
            fields: duration
                .map(|d| vec![("duration_us".to_string(), d.to_string())])
                .unwrap_or_default(),
        }
    }

    #[test]
    fn exclusive_times_reconstruct_the_root() {
        // audit (1000) > lease span (700) > wire span (500) +
        // queue_wait event (100) under the root.
        let events = vec![
            ev(1, EventKind::SpanStart, "audit:estimate", 1, None, None),
            ev(2, EventKind::SpanStart, "sched:lease", 1, Some(1), None),
            ev(3, EventKind::SpanStart, "wire:rtt", 1, Some(2), None),
            ev(
                4,
                EventKind::Event,
                "platform:remote",
                1,
                Some(3),
                Some(300),
            ),
            ev(5, EventKind::SpanEnd, "wire:rtt", 1, Some(3), Some(500)),
            ev(6, EventKind::SpanEnd, "sched:lease", 1, Some(2), Some(700)),
            ev(
                7,
                EventKind::Event,
                "sched:queue_wait",
                1,
                Some(1),
                Some(100),
            ),
            ev(
                8,
                EventKind::SpanEnd,
                "audit:estimate",
                1,
                Some(1),
                Some(1000),
            ),
        ];
        let reports = latency_attribution(&events);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.root, "audit:estimate");
        assert_eq!(r.total_us, 1000);
        // audit self = 1000 - 700 - 100; sched = (700-500) + 100;
        // wire = 500 - 300; platform = 300.
        assert_eq!(r.segment_us("audit"), 200);
        assert_eq!(r.segment_us("sched"), 300);
        assert_eq!(r.segment_us("wire"), 200);
        assert_eq!(r.segment_us("platform"), 300);
        assert_eq!(r.attributed_us(), r.total_us);
        assert!(r.render().contains("platform"));
    }

    #[test]
    fn traces_do_not_bleed_into_each_other() {
        let events = vec![
            ev(1, EventKind::SpanStart, "a:x", 1, None, None),
            ev(2, EventKind::SpanEnd, "a:x", 1, Some(1), Some(10)),
            ev(3, EventKind::SpanStart, "b:y", 3, None, None),
            ev(4, EventKind::SpanEnd, "b:y", 3, Some(3), Some(20)),
        ];
        let reports = latency_attribution(&events);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].trace_id, 1);
        assert_eq!(reports[0].total_us, 10);
        assert_eq!(reports[1].trace_id, 3);
        assert_eq!(reports[1].segment_us("b"), 20);
    }

    #[test]
    fn unclosed_roots_are_skipped() {
        let events = vec![ev(1, EventKind::SpanStart, "a:x", 1, None, None)];
        assert!(latency_attribution(&events).is_empty());
    }

    #[test]
    fn remote_continuation_spans_do_not_hide_the_root() {
        // A server-side span parented to a foreign (absent) id is
        // treated as a root of its own in that process's events.
        let events = vec![
            ev(
                10,
                EventKind::SpanStart,
                "platform:estimate",
                1,
                Some(999),
                None,
            ),
            ev(
                11,
                EventKind::SpanEnd,
                "platform:estimate",
                1,
                Some(10),
                Some(42),
            ),
        ];
        let reports = latency_attribution(&events);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].total_us, 42);
        assert_eq!(reports[0].segment_us("platform"), 42);
    }
}
