//! Injected monotonic time.
//!
//! Everything in this crate that needs a timestamp takes it through
//! [`Clock`], following the `TokenBucket`/`CircuitBreaker` idiom of the
//! platform crate: time is a monotonic [`Duration`] relative to an
//! arbitrary epoch. Production code uses [`MonotonicClock`]; tests use
//! [`ManualClock`] and advance it by hand, so every emitted timestamp is
//! reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source, relative to an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// Wall clock: [`Instant`] elapsed since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.nanos
            .fetch_add(delta.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute offset from its epoch.
    pub fn set(&self, at: Duration) {
        self.nanos.store(at.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        c.advance(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(12));
        c.set(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(1));
    }

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
