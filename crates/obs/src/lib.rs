//! Observability for the audit pipeline: metrics, tracing, logging.
//!
//! A >80 000-query measurement campaign (the paper's §3–§4 workload) is
//! only as trustworthy as the visibility into how its queries were
//! actually issued: retries and rate-limit waits bias latency, skipped
//! specs bias the sample, reconnects mark the flaky stretches. This
//! crate makes all of that observable with **zero external
//! dependencies** (consistent with the workspace's shims policy):
//!
//! * [`metrics`] — lock-cheap counters, gauges, and fixed-bucket
//!   histograms behind a [`Registry`](metrics::Registry); Prometheus
//!   text exposition and a human-readable summary;
//! * [`trace`] — span-based structured tracing into a bounded ring plus
//!   an optional JSONL sink for post-hoc campaign analysis; spans carry
//!   a [`TraceContext`] that propagates across threads and (via
//!   adcomp-wire) processes;
//! * [`attribution`] — folds a trace's span tree into a
//!   [`LatencyAttribution`] report: which layer (queue, lease, wire,
//!   platform) the end-to-end latency went to;
//! * [`log`] — a levelled facade replacing scattered
//!   `println!`/`eprintln!`, so `--quiet` means quiet;
//! * [`progress`] — an every-N-queries heartbeat with injected clock
//!   (no wall-clock reads on the hot path);
//! * [`report`] — the end-of-run report stitching the above together;
//! * [`clock`] — the injected-time trait shared by all of it.
//!
//! Every layer of the workspace reports into the global registry and
//! tracer; `adcomp-bench` binaries snapshot them next to their TSVs.
//!
//! # Overhead
//!
//! Hot-path updates are one relaxed atomic load (the
//! [`enabled`]/[`set_enabled`] kill switch) plus one relaxed RMW. The
//! `obs_overhead` binary in `adcomp-bench` measures the end-to-end cost
//! on the estimate path and records it in `BENCH_obs_overhead.json`;
//! the budget is <5 %.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod clock;
pub mod log;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use attribution::{latency_attribution, LatencyAttribution};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{
    duration_us_buckets, size_buckets, Counter, Gauge, Histogram, HistogramData, HistogramSummary,
    MetricKey, Registry, Snapshot,
};
pub use progress::ProgressReporter;
pub use report::RunReport;
pub use trace::{
    current_context, ContextGuard, EventKind, SpanGuard, TraceContext, TraceEvent, Tracer,
};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation is recording (true by default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Pauses or resumes all recording. Used by the overhead baseline; a
/// paused run skips every counter add, histogram observe, and trace
/// emit, leaving only the relaxed load + branch you cannot avoid.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Serialises tests that toggle or depend on the global kill switch.
#[cfg(test)]
pub(crate) fn test_enabled_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_pauses_recording() {
        let _guard = test_enabled_lock();
        let c = Counter::new();
        c.inc();
        set_enabled(false);
        c.inc();
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2, "the paused increment was dropped");
    }
}
