//! A minimal levelled logging facade.
//!
//! Diagnostics across the workspace route through here instead of bare
//! `println!`/`eprintln!`, so a `--quiet` run is actually quiet: the
//! binaries set the level once ([`set_level`]) and every layer honours
//! it. Lines go to stderr (stdout is reserved for machine-readable TSV
//! blocks) and, at `Warn` and above, also into the global trace ring as
//! events — a degraded campaign leaves its warnings in the JSONL record.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered: `Error` < `Warn` < `Info` < `Debug`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The run is broken.
    Error = 0,
    /// The run degraded (skipped specs, low budget, sampling shortfall).
    Warn = 1,
    /// Progress and phase diagnostics (the default).
    Info = 2,
    /// Per-query noise.
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the maximum level that gets printed.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Quiet mode: only `Error` and `Warn` reach stderr.
pub fn set_quiet(quiet: bool) {
    set_level(if quiet { Level::Warn } else { Level::Info });
}

/// Whether `level` would currently be printed.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Logs one line at `level`. Prefer the [`info!`](crate::info),
/// [`warn!`](crate::warn), [`error!`](crate::error) and
/// [`debug!`](crate::debug) macros.
pub fn log(level: Level, message: &str) {
    if enabled(level) {
        eprintln!("[{}] {message}", level.tag());
    }
    if level <= Level::Warn {
        crate::trace::Tracer::global().event(
            match level {
                Level::Error => "log:error",
                _ => "log:warn",
            },
            &[("message", message.to_string())],
        );
    }
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, &format!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, &format!($($arg)*))
    };
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, &format!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, &format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_quiet(true);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_quiet(false);
        assert!(enabled(Level::Info));
    }

    #[test]
    fn warnings_land_in_the_trace_ring() {
        let _guard = crate::test_enabled_lock();
        crate::warn!("degraded: {} specs skipped", 3);
        let ring = crate::trace::Tracer::global().ring_events();
        assert!(ring.iter().any(|e| {
            e.name == "log:warn"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "message" && v.contains("3 specs skipped"))
        }));
    }
}
