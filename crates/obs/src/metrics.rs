//! Lock-cheap metrics: counters, gauges, and fixed-bucket histograms.
//!
//! The hot path never takes a lock: instruments are plain atomics behind
//! `Arc` handles, resolved once from a [`Registry`] (one mutex acquisition
//! at registration) and then updated with relaxed atomic ops. A global
//! kill switch ([`crate::set_enabled`]) turns every update into a single
//! relaxed load + branch, which is what the `obs_overhead` baseline
//! measures against.
//!
//! Exposition comes in two flavours: [`Registry::render_prometheus`]
//! (the standard text format, one snapshot per campaign next to its TSV)
//! and [`Registry::render_report`] (a human-readable end-of-run summary
//! with p50/p95/p99 for histograms).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive) for a latency histogram in microseconds:
/// 50 µs … 10 s, roughly 1-2.5-5 per decade.
pub fn duration_us_buckets() -> Vec<u64> {
    vec![
        50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
        1_000_000, 2_500_000, 10_000_000,
    ]
}

/// Upper bounds (inclusive) for a size histogram: powers of ten up to
/// 10 B (covers audience estimates and frame byte counts alike).
pub fn size_buckets() -> Vec<u64> {
    (1..=10).map(|d| 10u64.pow(d)).collect()
}

/// A fixed-bucket histogram with atomic buckets.
///
/// Observations are cumulative-bucketed at read time; percentiles are
/// reported as the upper bound of the bucket holding the requested
/// quantile (the usual Prometheus-style approximation).
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing; an explicit +Inf
    /// bucket follows as the last entry of `buckets`.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Observations that overflowed the top finite bound into +Inf.
    saturated: AtomicU64,
}

/// The process-wide count of histogram observations that landed in a
/// +Inf bucket — a saturated histogram's percentiles are clipped to its
/// top bound, so a nonzero value here means some bounds need widening.
fn histogram_saturated_total() -> &'static Counter {
    static TOTAL: OnceLock<Arc<Counter>> = OnceLock::new();
    TOTAL.get_or_init(|| Registry::global().counter("adcomp_obs_histogram_saturated_total"))
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            saturated: AtomicU64::new(0),
        }
    }

    /// Records one observation. Values above the top finite bound land
    /// in the +Inf bucket and count as saturated (here and in the global
    /// `adcomp_obs_histogram_saturated_total` counter).
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        if idx == self.bounds.len() {
            self.saturated.fetch_add(1, Ordering::Relaxed);
            histogram_saturated_total().inc();
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Observations that overflowed the top finite bound.
    pub fn saturated(&self) -> u64 {
        self.saturated.load(Ordering::Relaxed)
    }

    /// A plain-data copy of this histogram, mergeable with copies of
    /// identically-bounded histograms from other processes.
    pub fn data(&self) -> HistogramData {
        HistogramData {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            saturated: self.saturated(),
        }
    }

    /// The upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (`None` when empty; the last finite bound when the quantile lands
    /// in the +Inf bucket).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(match self.bounds.get(i) {
                    Some(&b) => b,
                    None => *self.bounds.last().expect("non-empty bounds"),
                });
            }
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// Per-bucket cumulative counts paired with their upper bounds
    /// (`None` = +Inf), for exposition.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                acc += b.load(Ordering::Relaxed);
                (self.bounds.get(i).copied(), acc)
            })
            .collect()
    }
}

/// A histogram's full state as plain data: the unit of histogram
/// aggregation across a fleet. Two `HistogramData` with identical
/// bounds merge bucketwise; mismatched bounds refuse to merge (the
/// caller keeps them as separate per-source series instead).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramData {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries,
    /// the last being the +Inf bucket.
    pub buckets: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Observations that overflowed into +Inf.
    pub saturated: u64,
}

impl HistogramData {
    /// Adds `other` into `self` bucketwise. Returns `false` (leaving
    /// `self` untouched) when the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramData) -> bool {
        if self.bounds != other.bounds || self.buckets.len() != other.buckets.len() {
            return false;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.saturated += other.saturated;
        true
    }

    /// The upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (`None` when empty; the last finite bound when the quantile lands
    /// in the +Inf bucket), mirroring [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || self.bounds.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Some(match self.bounds.get(i) {
                    Some(&b) => b,
                    None => *self.bounds.last().expect("non-empty bounds"),
                });
            }
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// Per-bucket cumulative counts paired with their upper bounds
    /// (`None` = +Inf), for Prometheus exposition.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                acc += b;
                (self.bounds.get(i).copied(), acc)
            })
            .collect()
    }
}

/// A metric name plus its label pairs, e.g.
/// `("adcomp_retries_total", [("class", "transient")])`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus conventions: snake_case, unit suffix).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key with sorted labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{label="v",...}` in Prometheus series syntax.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }

    /// [`render`](MetricKey::render) with one extra label appended
    /// (`le` for buckets, `source` for fleet aggregation).
    pub fn render_with(&self, extra: (&str, &str)) -> String {
        let mut labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        labels.push(format!("{}=\"{}\"", extra.0, extra.1));
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time copy of every instrument in a registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histogram `(count, sum, p50, p95, p99)` summaries.
    pub histograms: Vec<(MetricKey, HistogramSummary)>,
}

/// Summary statistics of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: Option<u64>,
    /// 95th percentile.
    pub p95: Option<u64>,
    /// 99th percentile.
    pub p99: Option<u64>,
}

impl Snapshot {
    /// The value of a counter, summed across every label combination of
    /// `name`.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// The value of a gauge with exactly this name and no labels, if
    /// registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && k.labels.is_empty())
            .map(|(_, v)| *v)
    }
}

/// A named collection of instruments.
///
/// Registration (get-or-create) takes one mutex; the returned `Arc`
/// handles are lock-free to update. Use [`Registry::global`] for the
/// process-wide registry every layer of the stack reports into.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<MetricKey, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Gets or creates an unlabelled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Gets or creates a labelled counter.
    ///
    /// # Panics
    /// Panics when `name` (with these labels) is already registered as a
    /// different instrument kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered as a non-counter"),
        }
    }

    /// Gets or creates an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Gets or creates a labelled gauge.
    ///
    /// # Panics
    /// Panics on an instrument-kind clash, as
    /// [`counter_with`](Registry::counter_with) does.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered as a non-gauge"),
        }
    }

    /// Gets or creates an unlabelled histogram with the given bounds
    /// (bounds are fixed by the first registration).
    pub fn histogram(&self, name: &str, bounds: Vec<u64>) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// Gets or creates a labelled histogram.
    ///
    /// # Panics
    /// Panics on an instrument-kind clash, as
    /// [`counter_with`](Registry::counter_with) does.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<u64>,
    ) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::with_bounds(bounds))))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered as a non-histogram"),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, Instrument>> {
        self.instruments
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Full [`HistogramData`] for every histogram — the mergeable form
    /// a telemetry pusher ships to an aggregator (the [`Snapshot`]
    /// summary keeps only quantiles, which do not merge).
    pub fn export_histograms(&self) -> Vec<(MetricKey, HistogramData)> {
        let map = self.lock();
        map.iter()
            .filter_map(|(key, inst)| match inst {
                Instrument::Histogram(h) => Some((key.clone(), h.data())),
                _ => None,
            })
            .collect()
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        let mut snap = Snapshot::default();
        for (key, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => snap.counters.push((key.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((key.clone(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((
                    key.clone(),
                    HistogramSummary {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                    },
                )),
            }
        }
        snap
    }

    /// Prometheus text exposition of every instrument.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let map = self.lock();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (key, inst) in map.iter() {
            let kind = match inst {
                Instrument::Counter(_) => "counter",
                Instrument::Gauge(_) => "gauge",
                Instrument::Histogram(_) => "histogram",
            };
            if typed.insert(key.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {kind}", key.name);
            }
            match inst {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{} {}", key.render(), c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", key.render(), g.get());
                }
                Instrument::Histogram(h) => {
                    let bucket_key = MetricKey {
                        name: format!("{}_bucket", key.name),
                        labels: key.labels.clone(),
                    };
                    for (bound, cum) in h.cumulative() {
                        let le = match bound {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(out, "{} {cum}", bucket_key.render_with(("le", &le)));
                    }
                    let _ = writeln!(out, "{}_sum{} {}", key.name, labels_only(key), h.sum());
                    let _ = writeln!(out, "{}_count{} {}", key.name, labels_only(key), h.count());
                }
            }
        }
        out
    }

    /// A human-readable end-of-run summary: counters and gauges aligned,
    /// histograms with count/mean/p50/p95/p99. Zero-valued counters are
    /// elided so the report shows what actually happened.
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let snap = self.snapshot();
        let mut out = String::new();
        let _ = writeln!(out, "── metrics ──");
        for (key, value) in &snap.counters {
            if *value > 0 {
                let _ = writeln!(out, "  {:<58} {value}", key.render());
            }
        }
        for (key, value) in &snap.gauges {
            let _ = writeln!(out, "  {:<58} {value}", key.render());
        }
        for (key, s) in &snap.histograms {
            if s.count == 0 {
                continue;
            }
            let mean = s.sum as f64 / s.count as f64;
            let _ = writeln!(
                out,
                "  {:<58} n={} mean={mean:.0} p50≤{} p95≤{} p99≤{}",
                key.render(),
                s.count,
                s.p50.unwrap_or(0),
                s.p95.unwrap_or(0),
                s.p99.unwrap_or(0),
            );
        }
        out
    }
}

fn labels_only(key: &MetricKey) -> String {
    if key.labels.is_empty() {
        return String::new();
    }
    let labels: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    format!("{{{}}}", labels.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_atomically() {
        let r = Registry::new();
        let c = r.counter("test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same key resolves to the same instrument.
        assert_eq!(r.counter("test_total").get(), 5);
        let g = r.gauge("test_gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn labels_distinguish_instruments() {
        let r = Registry::new();
        r.counter_with("x_total", &[("class", "a")]).add(1);
        r.counter_with("x_total", &[("class", "b")]).add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x_total"), 3);
        assert_eq!(snap.counters.len(), 2);
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let h = Histogram::with_bounds(vec![10, 100, 1_000]);
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..9 {
            h.observe(50);
        }
        h.observe(5_000); // +Inf bucket
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.95), Some(100));
        assert_eq!(h.quantile(0.999), Some(1_000), "+Inf reports last bound");
        assert_eq!(Histogram::with_bounds(vec![1]).quantile(0.5), None);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = Registry::new();
        r.counter_with("req_total", &[("platform", "LinkedIn")])
            .add(3);
        r.gauge("budget_remaining").set(17);
        let h = r.histogram("rtt_us", vec![100, 1_000]);
        h.observe(40);
        h.observe(400);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{platform=\"LinkedIn\"} 3"));
        assert!(text.contains("budget_remaining 17"));
        assert!(text.contains("rtt_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("rtt_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rtt_us_sum 440"));
        assert!(text.contains("rtt_us_count 2"));
    }

    #[test]
    fn report_elides_zero_counters() {
        let r = Registry::new();
        r.counter("never_fired_total");
        r.counter("fired_total").inc();
        let report = r.render_report();
        assert!(report.contains("fired_total"));
        assert!(!report.contains("never_fired_total"));
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_clash_panics() {
        let r = Registry::new();
        let _ = r.gauge("clash");
        let _ = r.counter("clash");
    }

    #[test]
    fn bucket_helpers_are_increasing() {
        for bounds in [duration_us_buckets(), size_buckets()] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn saturation_at_the_boundary() {
        let h = Histogram::with_bounds(vec![10, 100]);
        let global_before = histogram_saturated_total().get();
        h.observe(100); // exactly the top bound: last finite bucket
        assert_eq!(h.saturated(), 0, "top bound is inclusive");
        h.observe(101); // one past: +Inf, saturated
        h.observe(u64::MAX);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.count(), 3);
        let data = h.data();
        assert_eq!(data.buckets, vec![0, 1, 2], "+Inf bucket holds overflow");
        assert!(
            histogram_saturated_total().get() >= global_before + 2,
            "global saturation counter advanced"
        );
        let text = {
            let r = Registry::new();
            let rh = r.histogram("sat_us", vec![10, 100]);
            rh.observe(101);
            r.render_prometheus()
        };
        assert!(text.contains("sat_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("sat_us_bucket{le=\"100\"} 0"));
    }

    #[test]
    fn histogram_data_merges_bucketwise() {
        let a = Histogram::with_bounds(vec![10, 100]);
        let b = Histogram::with_bounds(vec![10, 100]);
        a.observe(5);
        a.observe(50);
        b.observe(50);
        b.observe(500);
        let mut merged = a.data();
        assert!(merged.merge(&b.data()));
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 605);
        assert_eq!(merged.buckets, vec![1, 2, 1]);
        assert_eq!(merged.saturated, 1);
        assert_eq!(merged.quantile(0.5), Some(100));
        // Mismatched bounds refuse to merge and leave self untouched.
        let other = Histogram::with_bounds(vec![1, 2]).data();
        let before = merged.clone();
        assert!(!merged.merge(&other));
        assert_eq!(merged, before);
    }

    #[test]
    fn registry_concurrent_register_and_render_is_race_free() {
        let r = std::sync::Arc::new(Registry::new());
        let threads = 8;
        let iters = 200;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..iters {
                        let class = ["a", "b", "c", "d"][i % 4];
                        r.counter_with("stress_total", &[("class", class)]).inc();
                        r.gauge("stress_gauge").set(t as i64);
                        r.histogram_with("stress_us", &[("class", class)], vec![10, 100])
                            .observe((i as u64) % 150);
                        if i % 16 == 0 {
                            let _ = r.render_prometheus();
                            let _ = r.snapshot();
                            let _ = r.export_histograms();
                        }
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("stress_total"),
            (threads * iters) as u64,
            "duplicate-name registration resolved to the same instrument"
        );
        assert_eq!(snap.counters.len(), 4, "one series per label value");
        let total: u64 = r.export_histograms().iter().map(|(_, d)| d.count).sum();
        assert_eq!(total, (threads * iters) as u64);
    }
}
