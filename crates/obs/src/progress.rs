//! Periodic progress reporting for long query campaigns.
//!
//! The paper's granularity study alone is >80 000 queries; operators
//! need a heartbeat without a wall-clock read per query. A
//! [`ProgressReporter`] ticks on a relaxed atomic counter — the *only*
//! work on the hot path — and consults its injected [`Clock`] just on
//! the every-N boundary, where it logs a line (rate included) and drops
//! a `progress` event into the trace ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::clock::{Clock, MonotonicClock};
use crate::log::{log, Level};
use crate::trace::Tracer;

/// Emits a progress line every `every` ticks.
pub struct ProgressReporter {
    label: String,
    every: u64,
    count: AtomicU64,
    /// Clock time at the previous report (µs), for rate computation.
    last_report_us: AtomicU64,
    clock: Arc<dyn Clock>,
}

impl ProgressReporter {
    /// A reporter labelled `label`, reporting every `every` ticks on the
    /// wall clock.
    ///
    /// # Panics
    /// Panics when `every` is zero.
    pub fn new(label: &str, every: u64) -> Self {
        ProgressReporter::with_clock(label, every, Arc::new(MonotonicClock::new()))
    }

    /// A reporter with an injected clock (deterministic in tests).
    pub fn with_clock(label: &str, every: u64, clock: Arc<dyn Clock>) -> Self {
        assert!(every > 0, "progress interval must be positive");
        ProgressReporter {
            label: label.to_string(),
            every,
            count: AtomicU64::new(0),
            last_report_us: AtomicU64::new(clock.now().as_micros() as u64),
            clock,
        }
    }

    /// Ticks are cheap: one relaxed `fetch_add` plus a modulo; the clock
    /// is only read on a reporting boundary. Returns `true` when this
    /// tick emitted a report.
    pub fn tick(&self) -> bool {
        let n = self.count.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.every) {
            return false;
        }
        let now_us = self.clock.now().as_micros() as u64;
        let prev_us = self.last_report_us.swap(now_us, Ordering::Relaxed);
        let window = Duration::from_micros(now_us.saturating_sub(prev_us));
        let rate = if window.is_zero() {
            f64::INFINITY
        } else {
            self.every as f64 / window.as_secs_f64()
        };
        log(
            Level::Info,
            &format!("{}: {n} done ({rate:.0}/s over the last {})", self.label, {
                let secs = window.as_secs_f64();
                if secs >= 1.0 {
                    format!("{secs:.1}s")
                } else {
                    format!("{:.0}ms", secs * 1e3)
                }
            }),
        );
        Tracer::global().event(
            "progress",
            &[
                ("label", self.label.clone()),
                ("done", n.to_string()),
                ("rate_per_s", format!("{rate:.1}")),
            ],
        );
        true
    }

    /// Ticks completed so far.
    pub fn done(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn reports_exactly_on_the_boundary() {
        let clock = Arc::new(ManualClock::new());
        let p = ProgressReporter::with_clock("test", 5, clock.clone());
        crate::log::set_level(Level::Error); // keep test output clean
        let mut reports = 0;
        for i in 0..23 {
            clock.advance(Duration::from_millis(10));
            if p.tick() {
                reports += 1;
                assert_eq!((i + 1) % 5, 0);
            }
        }
        crate::log::set_level(Level::Info);
        assert_eq!(reports, 4, "23 ticks at every=5 gives 4 reports");
        assert_eq!(p.done(), 23);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = ProgressReporter::new("x", 0);
    }
}
