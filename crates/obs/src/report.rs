//! End-of-run reporting.
//!
//! A [`RunReport`] assembles everything an auditor should read before
//! trusting a campaign's numbers: the metrics summary (retries absorbed,
//! rate-limit waits, reconnects, faults injected), the phases the trace
//! covered, and — front and centre — the degradations that would
//! otherwise hide in return values: skipped specs, sampling-shortfall
//! warnings, budget near-exhaustion.

use crate::metrics::Registry;
use crate::trace::Tracer;

/// A human-readable end-of-run report builder.
#[derive(Default)]
pub struct RunReport {
    title: String,
    degradations: Vec<String>,
    notes: Vec<String>,
}

impl RunReport {
    /// A report titled `title` (e.g. the campaign or binary name).
    pub fn new(title: &str) -> Self {
        RunReport {
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Records a degradation (skipped spec, shortfall, low budget) that
    /// must not go unnoticed. These render under a ⚠ header.
    pub fn degradation(&mut self, what: impl Into<String>) -> &mut Self {
        self.degradations.push(what.into());
        self
    }

    /// Records a neutral note.
    pub fn note(&mut self, what: impl Into<String>) -> &mut Self {
        self.notes.push(what.into());
        self
    }

    /// Whether any degradation was recorded.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// Renders the report against the global registry and tracer.
    pub fn render(&self) -> String {
        self.render_with(Registry::global(), Tracer::global())
    }

    /// Renders against explicit observability state (for tests).
    pub fn render_with(&self, registry: &Registry, tracer: &Tracer) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "═══ run report: {} ═══", self.title);
        if self.degradations.is_empty() {
            let _ = writeln!(out, "no degradations recorded");
        } else {
            let _ = writeln!(
                out,
                "⚠ {} degradation(s) — treat results with care:",
                self.degradations.len()
            );
            for d in &self.degradations {
                let _ = writeln!(out, "  ⚠ {d}");
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "  · {n}");
        }
        let spans = tracer.span_names();
        if !spans.is_empty() {
            let _ = writeln!(out, "── phases traced ──");
            for s in &spans {
                let _ = writeln!(out, "  {s}");
            }
        }
        out.push_str(&registry.render_report());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_degradations_and_metrics() {
        let registry = Registry::new();
        registry.counter("report_test_total").add(4);
        let tracer = Tracer::new(8);
        {
            let _s = tracer.span("phase:one");
        }
        let mut report = RunReport::new("unit");
        report.degradation("2 specs skipped");
        report.note("seed 2020");
        assert!(report.degraded());
        let text = report.render_with(&registry, &tracer);
        assert!(text.contains("run report: unit"));
        assert!(text.contains("⚠ 2 specs skipped"));
        assert!(text.contains("· seed 2020"));
        assert!(text.contains("phase:one"));
        assert!(text.contains("report_test_total"));
    }

    #[test]
    fn clean_report_says_so() {
        let registry = Registry::new();
        let tracer = Tracer::new(8);
        let text = RunReport::new("clean").render_with(&registry, &tracer);
        assert!(text.contains("no degradations recorded"));
    }
}
