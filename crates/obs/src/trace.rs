//! Span-based structured tracing.
//!
//! A [`Tracer`] records [`TraceEvent`]s into a bounded in-memory ring
//! (cheap, always on, oldest events evicted first) and, when a sink is
//! installed, appends each event as one JSON object per line — the JSONL
//! record a campaign is analysed from after the fact.
//!
//! Spans follow RAII: [`Tracer::span`] emits a `span_start` event and
//! returns a [`SpanGuard`] that emits the matching `span_end` (with
//! `duration_us`) when dropped. Nesting is by `parent` sequence number.
//!
//! The JSONL schema (documented in EXPERIMENTS.md) is:
//!
//! ```text
//! {"seq":12,"ts_us":51234,"kind":"span_start","name":"experiment:table1","parent":3,"fields":{...}}
//! {"seq":19,"ts_us":99120,"kind":"span_end","name":"experiment:table1","parent":3,"fields":{"duration_us":"47886"}}
//! {"seq":20,"ts_us":99130,"kind":"event","name":"budget:low","fields":{"remaining":"12"}}
//! ```

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::clock::{Clock, MonotonicClock};

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed.
    SpanEnd,
    /// A point event.
    Event,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Event => "event",
        }
    }
}

/// One structured trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (also the span id of a `span_start`).
    pub seq: u64,
    /// Microseconds since the tracer's clock epoch.
    pub ts_us: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Event or span name, `layer:what` by convention
    /// (`experiment:table1`, `probe:granularity`, `budget:low`).
    pub name: String,
    /// Enclosing span's `seq`, when nested.
    pub parent: Option<u64>,
    /// Free-form string fields.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// The event as one JSON object (the JSONL line format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_us\":{},\"kind\":\"{}\",\"name\":\"{}\"",
            self.seq,
            self.ts_us,
            self.kind.as_str(),
            escape(&self.name)
        ));
        if let Some(p) = self.parent {
            out.push_str(&format!(",\"parent\":{p}"));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Sink {
    writer: Box<dyn std::io::Write + Send>,
}

/// Records trace events into a bounded ring and an optional JSONL sink.
pub struct Tracer {
    clock: Box<dyn Clock>,
    seq: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    sink: Mutex<Option<Sink>>,
}

/// Default ring capacity: enough for every phase of a full campaign
/// without ever growing.
pub const DEFAULT_RING_CAPACITY: usize = 4_096;

impl Tracer {
    /// A tracer with the given ring capacity and clock.
    pub fn with_clock(capacity: usize, clock: Box<dyn Clock>) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Tracer {
            clock,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            sink: Mutex::new(None),
        }
    }

    /// A tracer on the wall clock.
    pub fn new(capacity: usize) -> Self {
        Tracer::with_clock(capacity, Box::new(MonotonicClock::new()))
    }

    /// The process-wide tracer (wall clock, default capacity).
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(|| Tracer::new(DEFAULT_RING_CAPACITY))
    }

    /// Streams every subsequent event to `path` as JSON lines
    /// (truncating an existing file). Returns the previous sink's
    /// presence for curiosity's sake.
    pub fn install_jsonl(&self, path: &Path) -> std::io::Result<bool> {
        let file = std::fs::File::create(path)?;
        let old = self
            .lock_sink()
            .replace(Sink {
                writer: Box::new(std::io::BufWriter::new(file)),
            })
            .is_some();
        Ok(old)
    }

    /// Stops streaming to the JSONL sink, flushing it.
    pub fn remove_sink(&self) {
        if let Some(mut sink) = self.lock_sink().take() {
            let _ = sink.writer.flush();
        }
    }

    /// Flushes the JSONL sink without removing it.
    pub fn flush(&self) {
        if let Some(sink) = self.lock_sink().as_mut() {
            let _ = sink.writer.flush();
        }
    }

    fn lock_sink(&self) -> std::sync::MutexGuard<'_, Option<Sink>> {
        self.sink
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceEvent>> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn emit(
        &self,
        kind: EventKind,
        name: &str,
        parent: Option<u64>,
        fields: &[(&str, String)],
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if !crate::enabled() {
            return seq;
        }
        let event = TraceEvent {
            seq,
            ts_us: self.clock.now().as_micros() as u64,
            kind,
            name: name.to_string(),
            parent,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        if let Some(sink) = self.lock_sink().as_mut() {
            let _ = writeln!(sink.writer, "{}", event.to_json());
        }
        let mut ring = self.lock_ring();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
        seq
    }

    /// Records a point event.
    pub fn event(&self, name: &str, fields: &[(&str, String)]) {
        self.emit(EventKind::Event, name, None, fields);
    }

    /// Opens a span; the returned guard closes it on drop.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_with(name, &[])
    }

    /// Opens a span with fields.
    pub fn span_with(&self, name: &str, fields: &[(&str, String)]) -> SpanGuard<'_> {
        let start = self.clock.now();
        let seq = self.emit(EventKind::SpanStart, name, None, fields);
        SpanGuard {
            tracer: self,
            name: name.to_string(),
            seq,
            start,
        }
    }

    /// A copy of the ring's current contents, oldest first.
    pub fn ring_events(&self) -> Vec<TraceEvent> {
        self.lock_ring().iter().cloned().collect()
    }

    /// Span names seen in the ring (`span_start` events), oldest first,
    /// deduplicated — "did the trace cover phase X?" in one call.
    pub fn span_names(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut names = Vec::new();
        for e in self.lock_ring().iter() {
            if e.kind == EventKind::SpanStart && seen.insert(e.name.clone()) {
                names.push(e.name.clone());
            }
        }
        names
    }
}

/// Closes its span (emitting `span_end` with `duration_us`) on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: String,
    seq: u64,
    start: std::time::Duration,
}

impl SpanGuard<'_> {
    /// The span's id (its `span_start` sequence number).
    pub fn id(&self) -> u64 {
        self.seq
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let duration = self.tracer.clock.now().saturating_sub(self.start);
        self.tracer.emit(
            EventKind::SpanEnd,
            &self.name,
            Some(self.seq),
            &[("duration_us", (duration.as_micros() as u64).to_string())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc;
    use std::time::Duration;

    fn manual_tracer(capacity: usize) -> (Tracer, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        struct Shared(Arc<ManualClock>);
        impl Clock for Shared {
            fn now(&self) -> Duration {
                self.0.now()
            }
        }
        (
            Tracer::with_clock(capacity, Box::new(Shared(clock.clone()))),
            clock,
        )
    }

    #[test]
    fn spans_nest_and_report_duration() {
        let (tracer, clock) = manual_tracer(16);
        {
            let _outer = tracer.span("outer");
            clock.advance(Duration::from_micros(250));
            tracer.event("ping", &[("k", "v".to_string())]);
            clock.advance(Duration::from_micros(750));
        }
        let events = tracer.ring_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[1].kind, EventKind::Event);
        assert_eq!(events[2].kind, EventKind::SpanEnd);
        assert_eq!(events[2].parent, Some(events[0].seq));
        assert_eq!(
            events[2].fields,
            vec![("duration_us".to_string(), "1000".to_string())]
        );
        assert_eq!(tracer.span_names(), vec!["outer".to_string()]);
    }

    #[test]
    fn ring_is_bounded() {
        let (tracer, _) = manual_tracer(3);
        for i in 0..10 {
            tracer.event(&format!("e{i}"), &[]);
        }
        let events = tracer.ring_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "e7", "oldest evicted first");
        assert_eq!(events[2].name, "e9");
    }

    #[test]
    fn jsonl_lines_are_valid_and_escaped() {
        let e = TraceEvent {
            seq: 7,
            ts_us: 1234,
            kind: EventKind::Event,
            name: "with \"quotes\"\nand newline".to_string(),
            parent: Some(3),
            fields: vec![("path".to_string(), "a\\b".to_string())],
        };
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"seq\":7,\"ts_us\":1234,\"kind\":\"event\",\
             \"name\":\"with \\\"quotes\\\"\\nand newline\",\"parent\":3,\
             \"fields\":{\"path\":\"a\\\\b\"}}"
        );
    }

    #[test]
    fn jsonl_sink_receives_every_event() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("adcomp-obs-trace-{}.jsonl", std::process::id()));
        let (tracer, _) = manual_tracer(8);
        tracer.install_jsonl(&path).unwrap();
        {
            let _span = tracer.span("phase");
            tracer.event("inside", &[]);
        }
        tracer.remove_sink();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[1].contains("\"name\":\"inside\""));
        assert!(lines[2].contains("\"duration_us\""));
        let _ = std::fs::remove_file(&path);
    }
}
