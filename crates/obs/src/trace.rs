//! Span-based structured tracing with cross-process context propagation.
//!
//! A [`Tracer`] records [`TraceEvent`]s into a bounded in-memory ring
//! (cheap, always on, oldest events evicted first) and, when a sink is
//! installed, appends each event as one JSON object per line — the JSONL
//! record a campaign is analysed from after the fact.
//!
//! Spans follow RAII: [`Tracer::span`] emits a `span_start` event and
//! returns a [`SpanGuard`] that emits the matching `span_end` (with
//! `duration_us`) when dropped. Nesting is by `parent` sequence number,
//! resolved from a thread-local ambient context stack: opening a span
//! inside another span (on the same thread) parents it automatically,
//! and point events inherit the enclosing span the same way.
//!
//! # Distributed traces
//!
//! Every root span allocates a `trace_id`; children inherit it. A span's
//! identity can be captured as a [`TraceContext`] (`trace_id`, `span_id`,
//! `parent`) and shipped to another thread or process:
//!
//! * [`TraceContext::enter`] adopts a captured context on the current
//!   thread (worker pools), so spans and events emitted there join the
//!   originating trace.
//! * [`Tracer::continue_span`] opens a span parented to a remote context
//!   (the server side of a wire call), so client and server JSONL sinks
//!   share one `trace_id` and merge into a single connected span tree.
//!
//! Span ids must therefore be unique *across* processes: each tracer
//! draws its sequence numbers from a random 24-bit base (derived from
//! pid + wall time) shifted into the high bits, leaving 2^40 events per
//! tracer before any overlap is possible.
//!
//! The JSONL schema (documented in EXPERIMENTS.md) is:
//!
//! ```text
//! {"seq":12,"ts_us":51234,"kind":"span_start","name":"experiment:table1","trace":12,"fields":{...}}
//! {"seq":19,"ts_us":99120,"kind":"span_end","name":"experiment:table1","trace":12,"parent":12,"fields":{"duration_us":"47886"}}
//! {"seq":20,"ts_us":99130,"kind":"event","name":"budget:low","trace":12,"parent":12,"fields":{"remaining":"12"}}
//! ```
//!
//! (`trace` and `parent` are omitted for events outside any span.)

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::clock::{Clock, MonotonicClock};

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed.
    SpanEnd,
    /// A point event.
    Event,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Event => "event",
        }
    }
}

/// One structured trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (also the span id of a `span_start`).
    pub seq: u64,
    /// Microseconds since the tracer's clock epoch.
    pub ts_us: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Event or span name, `layer:what` by convention
    /// (`experiment:table1`, `probe:granularity`, `budget:low`).
    pub name: String,
    /// Trace this event belongs to (the root span's id), when inside a
    /// trace.
    pub trace_id: Option<u64>,
    /// Enclosing span's `seq`, when nested.
    pub parent: Option<u64>,
    /// Free-form string fields.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// The event as one JSON object (the JSONL line format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_us\":{},\"kind\":\"{}\",\"name\":\"{}\"",
            self.seq,
            self.ts_us,
            self.kind.as_str(),
            escape(&self.name)
        ));
        if let Some(t) = self.trace_id {
            out.push_str(&format!(",\"trace\":{t}"));
        }
        if let Some(p) = self.parent {
            out.push_str(&format!(",\"parent\":{p}"));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line back into an event (the inverse of
    /// [`to_json`](TraceEvent::to_json) for lines this module wrote).
    /// Returns `None` on anything that does not look like a trace line.
    pub fn from_json(line: &str) -> Option<TraceEvent> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let seq = json_u64(line, "seq")?;
        let ts_us = json_u64(line, "ts_us")?;
        let kind = match json_str(line, "kind")?.as_str() {
            "span_start" => EventKind::SpanStart,
            "span_end" => EventKind::SpanEnd,
            "event" => EventKind::Event,
            _ => return None,
        };
        let name = json_str(line, "name")?;
        let trace_id = json_u64(line, "trace");
        let parent = json_u64(line, "parent");
        let fields = json_fields(line);
        Some(TraceEvent {
            seq,
            ts_us,
            kind,
            name,
            trace_id,
            parent,
            fields,
        })
    }
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn json_fields(line: &str) -> Vec<(String, String)> {
    let Some(at) = line.find("\"fields\":{") else {
        return Vec::new();
    };
    let mut fields = Vec::new();
    let mut rest = &line[at + "\"fields\":{".len()..];
    // Peel escaped "key":"value" pairs one quoted string at a time.
    while let Some(ks) = rest.find('"') {
        let (key, after_key) = match take_quoted(&rest[ks..]) {
            Some(x) => x,
            None => break,
        };
        let after = after_key.trim_start();
        if !after.starts_with(':') {
            break;
        }
        let after = after[1..].trim_start();
        let Some((value, after_value)) = take_quoted(after) else {
            break;
        };
        fields.push((key, value));
        rest = after_value;
        if !rest.trim_start().starts_with(',') {
            break;
        }
    }
    fields
}

fn take_quoted(s: &str) -> Option<(String, &str)> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut hex = String::new();
                    for _ in 0..4 {
                        hex.push(chars.next()?.1);
                    }
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The identity of a span, compact enough to ship across threads and
/// processes (it rides on adcomp-wire `Request::Traced` frames).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this span belongs to (the root span's id).
    pub trace_id: u64,
    /// The span's own id.
    pub span_id: u64,
    /// The span's parent span id, when it has one.
    pub parent: Option<u64>,
}

thread_local! {
    static AMBIENT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost ambient [`TraceContext`] on this thread, if any — what
/// a new span or event would be parented to.
pub fn current_context() -> Option<TraceContext> {
    AMBIENT.with(|stack| stack.borrow().last().copied())
}

fn push_context(ctx: TraceContext) {
    AMBIENT.with(|stack| stack.borrow_mut().push(ctx));
}

fn pop_context(span_id: u64) {
    AMBIENT.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|c| c.span_id == span_id) {
            stack.remove(pos);
        }
    });
}

impl TraceContext {
    /// Adopts this context on the current thread until the returned
    /// guard drops: spans and events emitted meanwhile join this trace,
    /// parented to `span_id`. The mechanism worker pools use to keep a
    /// batch's units inside the submitting span.
    pub fn enter(self) -> ContextGuard {
        push_context(self);
        ContextGuard {
            span_id: self.span_id,
            _not_send: std::marker::PhantomData,
        }
    }
}

/// Removes the context its [`TraceContext::enter`] pushed, on drop.
pub struct ContextGuard {
    span_id: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_context(self.span_id);
    }
}

struct Sink {
    writer: Box<dyn std::io::Write + Send>,
}

/// Records trace events into a bounded ring and an optional JSONL sink.
pub struct Tracer {
    clock: Box<dyn Clock>,
    seq: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    sink: Mutex<Option<Sink>>,
}

/// Default ring capacity: enough for every phase of a full campaign
/// without ever growing.
pub const DEFAULT_RING_CAPACITY: usize = 4_096;

/// A fresh sequence base whose top 24 bits are unique per tracer with
/// overwhelming probability, so span ids never collide when traces from
/// several processes are merged.
fn tracer_seq_base() -> u64 {
    static INSTANCES: AtomicU64 = AtomicU64::new(0);
    static PROCESS_SEED: OnceLock<u64> = OnceLock::new();
    let seed = *PROCESS_SEED.get_or_init(|| {
        let pid = std::process::id() as u64;
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in pid.to_le_bytes().iter().chain(nanos.to_le_bytes().iter()) {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    });
    let inst = INSTANCES.fetch_add(1, Ordering::Relaxed);
    let mixed = seed ^ inst.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // 24 bits of identity, 40 bits of room for the running sequence.
    ((mixed >> 8) & 0xff_ffff) << 40
}

impl Tracer {
    /// A tracer with the given ring capacity and clock.
    pub fn with_clock(capacity: usize, clock: Box<dyn Clock>) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Tracer {
            clock,
            seq: AtomicU64::new(tracer_seq_base()),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            sink: Mutex::new(None),
        }
    }

    /// A tracer on the wall clock.
    pub fn new(capacity: usize) -> Self {
        Tracer::with_clock(capacity, Box::new(MonotonicClock::new()))
    }

    /// The process-wide tracer (wall clock, default capacity).
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(|| Tracer::new(DEFAULT_RING_CAPACITY))
    }

    /// Streams every subsequent event to `path` as JSON lines
    /// (truncating an existing file).
    ///
    /// Re-installing atomically swaps the sink: the previous sink (if
    /// any) is flushed and closed under the same lock that guards event
    /// emission, so no event is lost between the two files. Returns
    /// `true` when a previous sink was replaced, `false` on first
    /// install.
    pub fn install_jsonl(&self, path: &Path) -> std::io::Result<bool> {
        let file = std::fs::File::create(path)?;
        let mut guard = self.lock_sink();
        let old = guard.replace(Sink {
            writer: Box::new(std::io::BufWriter::new(file)),
        });
        drop(guard);
        match old {
            Some(mut sink) => {
                let _ = sink.writer.flush();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Stops streaming to the JSONL sink, flushing it.
    pub fn remove_sink(&self) {
        if let Some(mut sink) = self.lock_sink().take() {
            let _ = sink.writer.flush();
        }
    }

    /// Flushes the JSONL sink without removing it.
    pub fn flush(&self) {
        if let Some(sink) = self.lock_sink().as_mut() {
            let _ = sink.writer.flush();
        }
    }

    fn lock_sink(&self) -> std::sync::MutexGuard<'_, Option<Sink>> {
        self.sink
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceEvent>> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn emit(
        &self,
        kind: EventKind,
        name: &str,
        trace_id: Option<u64>,
        parent: Option<u64>,
        fields: &[(&str, String)],
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if crate::enabled() {
            self.record(TraceEvent {
                seq,
                ts_us: self.clock.now().as_micros() as u64,
                kind,
                name: name.to_string(),
                trace_id,
                parent,
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
        seq
    }

    fn record(&self, event: TraceEvent) {
        if let Some(sink) = self.lock_sink().as_mut() {
            let _ = writeln!(sink.writer, "{}", event.to_json());
        }
        let mut ring = self.lock_ring();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Records a point event, parented to the ambient span when inside
    /// one.
    pub fn event(&self, name: &str, fields: &[(&str, String)]) {
        let ctx = current_context();
        self.emit(
            EventKind::Event,
            name,
            ctx.map(|c| c.trace_id),
            ctx.map(|c| c.span_id),
            fields,
        );
    }

    /// Opens a span; the returned guard closes it on drop.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.span_with(name, &[])
    }

    /// Opens a span with fields. Inside an ambient span (same thread, or
    /// one adopted via [`TraceContext::enter`]) the new span is parented
    /// to it and inherits its trace; otherwise it roots a fresh trace
    /// whose `trace_id` is the span's own id.
    pub fn span_with(&self, name: &str, fields: &[(&str, String)]) -> SpanGuard<'_> {
        self.open_span(name, current_context(), fields)
    }

    /// Opens a span that continues a context captured elsewhere —
    /// typically on the far side of a wire call, where the client's
    /// `TraceContext` arrived on the request frame. The span joins the
    /// remote trace and is parented to the remote span, so the two
    /// processes' JSONL sinks merge into one connected tree.
    pub fn continue_span(
        &self,
        ctx: TraceContext,
        name: &str,
        fields: &[(&str, String)],
    ) -> SpanGuard<'_> {
        self.open_span(name, Some(ctx), fields)
    }

    fn open_span(
        &self,
        name: &str,
        inherit: Option<TraceContext>,
        fields: &[(&str, String)],
    ) -> SpanGuard<'_> {
        let start = self.clock.now();
        let enabled = crate::enabled();
        let parent = inherit.map(|c| c.span_id);
        // A root span names its own trace with its span id, so the seq
        // is reserved before the start event is built.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let trace_id = inherit.map(|c| c.trace_id).unwrap_or(seq);
        if enabled {
            self.record(TraceEvent {
                seq,
                ts_us: start.as_micros() as u64,
                kind: EventKind::SpanStart,
                name: name.to_string(),
                trace_id: Some(trace_id),
                parent,
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
        let pushed = enabled;
        if pushed {
            push_context(TraceContext {
                trace_id,
                span_id: seq,
                parent,
            });
        }
        SpanGuard {
            tracer: self,
            name: name.to_string(),
            seq,
            trace_id,
            parent,
            start,
            pushed,
        }
    }

    /// A copy of the ring's current contents, oldest first.
    pub fn ring_events(&self) -> Vec<TraceEvent> {
        self.lock_ring().iter().cloned().collect()
    }

    /// Span names seen in the ring (`span_start` events), oldest first,
    /// deduplicated — "did the trace cover phase X?" in one call.
    pub fn span_names(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut names = Vec::new();
        for e in self.lock_ring().iter() {
            if e.kind == EventKind::SpanStart && seen.insert(e.name.clone()) {
                names.push(e.name.clone());
            }
        }
        names
    }
}

/// Closes its span (emitting `span_end` with `duration_us`) on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: String,
    seq: u64,
    trace_id: u64,
    parent: Option<u64>,
    start: std::time::Duration,
    pushed: bool,
}

impl SpanGuard<'_> {
    /// The span's id (its `span_start` sequence number).
    pub fn id(&self) -> u64 {
        self.seq
    }

    /// The span's identity as a shippable [`TraceContext`].
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.seq,
            parent: self.parent,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.pushed {
            pop_context(self.seq);
        }
        let duration = self.tracer.clock.now().saturating_sub(self.start);
        self.tracer.emit(
            EventKind::SpanEnd,
            &self.name,
            Some(self.trace_id),
            Some(self.seq),
            &[("duration_us", (duration.as_micros() as u64).to_string())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc;
    use std::time::Duration;

    fn manual_tracer(capacity: usize) -> (Tracer, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        struct Shared(Arc<ManualClock>);
        impl Clock for Shared {
            fn now(&self) -> Duration {
                self.0.now()
            }
        }
        (
            Tracer::with_clock(capacity, Box::new(Shared(clock.clone()))),
            clock,
        )
    }

    #[test]
    fn spans_nest_and_report_duration() {
        let (tracer, clock) = manual_tracer(16);
        {
            let _outer = tracer.span("outer");
            clock.advance(Duration::from_micros(250));
            tracer.event("ping", &[("k", "v".to_string())]);
            clock.advance(Duration::from_micros(750));
        }
        let events = tracer.ring_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[1].kind, EventKind::Event);
        assert_eq!(events[2].kind, EventKind::SpanEnd);
        assert_eq!(events[2].parent, Some(events[0].seq));
        assert_eq!(
            events[2].fields,
            vec![("duration_us".to_string(), "1000".to_string())]
        );
        assert_eq!(tracer.span_names(), vec!["outer".to_string()]);
        // The event inherited the ambient span and its trace.
        assert_eq!(events[1].parent, Some(events[0].seq));
        assert_eq!(events[1].trace_id, Some(events[0].seq));
    }

    #[test]
    fn nested_spans_share_a_trace() {
        let (tracer, _) = manual_tracer(16);
        let root_id;
        {
            let outer = tracer.span("outer");
            root_id = outer.id();
            let inner = tracer.span("inner");
            assert_eq!(inner.context().trace_id, root_id, "trace inherited");
            assert_eq!(inner.context().parent, Some(root_id), "parented to outer");
        }
        let events = tracer.ring_events();
        let inner_start = events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.name == "inner")
            .unwrap();
        assert_eq!(inner_start.parent, Some(root_id));
        assert_eq!(inner_start.trace_id, Some(root_id));
    }

    #[test]
    fn contexts_transfer_across_threads() {
        let (tracer, _) = manual_tracer(16);
        let tracer = Arc::new(tracer);
        let root = tracer.span("root");
        let ctx = root.context();
        let t2 = tracer.clone();
        std::thread::spawn(move || {
            let _guard = ctx.enter();
            t2.event("remote", &[]);
        })
        .join()
        .unwrap();
        drop(root);
        let remote = tracer
            .ring_events()
            .into_iter()
            .find(|e| e.name == "remote")
            .unwrap();
        assert_eq!(remote.parent, Some(ctx.span_id));
        assert_eq!(remote.trace_id, Some(ctx.trace_id));
        assert_eq!(current_context(), None, "guard popped");
    }

    #[test]
    fn continue_span_joins_the_remote_trace() {
        let (client, _) = manual_tracer(16);
        let (server, _) = manual_tracer(16);
        let root = client.span("wire:rtt");
        let ctx = root.context();
        {
            let _server_span = server.continue_span(ctx, "platform:estimate", &[]);
        }
        drop(root);
        let start = server
            .ring_events()
            .into_iter()
            .find(|e| e.kind == EventKind::SpanStart)
            .unwrap();
        assert_eq!(start.trace_id, Some(ctx.trace_id), "same trace id");
        assert_eq!(start.parent, Some(ctx.span_id), "parented across tracers");
        assert_ne!(start.seq, ctx.span_id, "distinct id spaces");
    }

    #[test]
    fn tracer_bases_are_distinct() {
        let (a, _) = manual_tracer(4);
        let (b, _) = manual_tracer(4);
        a.event("x", &[]);
        b.event("x", &[]);
        let sa = a.ring_events()[0].seq;
        let sb = b.ring_events()[0].seq;
        assert_ne!(sa >> 40, sb >> 40, "24-bit tracer identities differ");
    }

    #[test]
    fn ring_is_bounded() {
        let (tracer, _) = manual_tracer(3);
        for i in 0..10 {
            tracer.event(&format!("e{i}"), &[]);
        }
        let events = tracer.ring_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "e7", "oldest evicted first");
        assert_eq!(events[2].name, "e9");
    }

    #[test]
    fn jsonl_lines_are_valid_and_escaped() {
        let e = TraceEvent {
            seq: 7,
            ts_us: 1234,
            kind: EventKind::Event,
            name: "with \"quotes\"\nand newline".to_string(),
            trace_id: None,
            parent: Some(3),
            fields: vec![("path".to_string(), "a\\b".to_string())],
        };
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"seq\":7,\"ts_us\":1234,\"kind\":\"event\",\
             \"name\":\"with \\\"quotes\\\"\\nand newline\",\"parent\":3,\
             \"fields\":{\"path\":\"a\\\\b\"}}"
        );
        assert_eq!(TraceEvent::from_json(&json).unwrap(), e, "roundtrips");
    }

    #[test]
    fn json_roundtrip_with_trace_id() {
        let e = TraceEvent {
            seq: 42,
            ts_us: 99,
            kind: EventKind::SpanStart,
            name: "wire:rtt".to_string(),
            trace_id: Some(41),
            parent: Some(40),
            fields: vec![("endpoint".to_string(), "a:1".to_string())],
        };
        let json = e.to_json();
        assert!(json.contains("\"trace\":41"));
        assert_eq!(TraceEvent::from_json(&json).unwrap(), e);
    }

    #[test]
    fn jsonl_sink_receives_every_event() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("adcomp-obs-trace-{}.jsonl", std::process::id()));
        let (tracer, _) = manual_tracer(8);
        tracer.install_jsonl(&path).unwrap();
        {
            let _span = tracer.span("phase");
            tracer.event("inside", &[]);
        }
        tracer.remove_sink();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[1].contains("\"name\":\"inside\""));
        assert!(lines[2].contains("\"duration_us\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reinstall_swaps_sink_and_flushes_old() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let first = dir.join(format!("adcomp-obs-swap-a-{pid}.jsonl"));
        let second = dir.join(format!("adcomp-obs-swap-b-{pid}.jsonl"));
        let (tracer, _) = manual_tracer(8);
        assert!(!tracer.install_jsonl(&first).unwrap(), "first install");
        tracer.event("early", &[]);
        assert!(tracer.install_jsonl(&second).unwrap(), "re-install swaps");
        tracer.event("late", &[]);
        tracer.remove_sink();
        let a = std::fs::read_to_string(&first).unwrap();
        let b = std::fs::read_to_string(&second).unwrap();
        assert!(a.contains("early"), "old sink flushed on swap");
        assert!(!a.contains("late"), "old sink stops receiving");
        assert!(b.contains("late") && !b.contains("early"));
        let _ = std::fs::remove_file(&first);
        let _ = std::fs::remove_file(&second);
    }
}
