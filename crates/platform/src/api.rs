//! The serving-side abstraction over a platform.
//!
//! [`PlatformApi`] is exactly the surface a serving layer (the wire
//! server, or any other transport) needs from a platform: describe,
//! browse, validate, estimate, count. [`AdPlatform`] implements it
//! directly; [`FaultyPlatform`](crate::FaultyPlatform) implements it by
//! delegating through a fault plan — so a server can expose either
//! without knowing which it holds.

use adcomp_targeting::TargetingSpec;

use crate::catalog::Catalog;
use crate::estimate::SizeEstimate;
use crate::interface::{AdPlatform, EstimateRequest, PlatformConfig, PlatformError};
use crate::ratelimit::QueryStats;

/// What a serving layer may ask of a platform.
pub trait PlatformApi: Send + Sync {
    /// Interface configuration (capabilities, rounding, objectives).
    fn config(&self) -> &PlatformConfig;

    /// The browsable attribute catalog.
    fn catalog(&self) -> &Catalog;

    /// The advertiser-visible reach estimate.
    fn reach_estimate(&self, request: &EstimateRequest) -> Result<SizeEstimate, PlatformError>;

    /// Validates a spec without estimating.
    fn check(&self, spec: &TargetingSpec) -> Result<(), PlatformError>;

    /// Snapshot of the query counters.
    fn stats(&self) -> QueryStats;

    /// Records a rate-limited request (called by the serving layer).
    fn note_rate_limited(&self);

    /// Report label ("Facebook", "FB-restricted", …).
    fn label(&self) -> &'static str {
        self.config().kind.label()
    }
}

impl PlatformApi for AdPlatform {
    fn config(&self) -> &PlatformConfig {
        AdPlatform::config(self)
    }

    fn catalog(&self) -> &Catalog {
        AdPlatform::catalog(self)
    }

    fn reach_estimate(&self, request: &EstimateRequest) -> Result<SizeEstimate, PlatformError> {
        AdPlatform::reach_estimate(self, request)
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), PlatformError> {
        AdPlatform::check(self, spec)
    }

    fn stats(&self) -> QueryStats {
        AdPlatform::stats(self)
    }

    fn note_rate_limited(&self) {
        AdPlatform::note_rate_limited(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimScale, Simulation};
    use std::sync::Arc;

    #[test]
    fn adplatform_serves_through_the_trait() {
        let sim = Simulation::build(91, SimScale::Test);
        let api: Arc<dyn PlatformApi> = sim.linkedin.clone();
        assert_eq!(api.label(), "LinkedIn");
        assert!(!api.catalog().is_empty());
        let req = EstimateRequest::new(TargetingSpec::everyone(), api.config().default_objective);
        assert!(api.reach_estimate(&req).unwrap().value > 0);
        assert_eq!(api.stats().estimates, 1);
    }
}
