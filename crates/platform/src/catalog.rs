//! Synthetic targeting-attribute catalogs.
//!
//! A catalog is the platform's browsable list of attribute-based targeting
//! options (and, for Google, placement topics). Each entry carries the
//! generative [`AttributeModel`] that defines its audience in the
//! universe. Entry skews are drawn per *category*: a category has a mean
//! demographic lean (Games lean male, Beauty leans female, Retirement
//! leans old, …) plus per-attribute noise and an occasional heavy-tail
//! draw — this mixture is what produces the paper's long-tailed
//! representation-ratio distributions.

use adcomp_population::{AttributeModel, LATENT_DIMS};
use adcomp_targeting::{AttributeId, CatalogView, FeatureId};

use crate::names::pool;

/// How a category's attributes skew, on average.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkewProfile {
    /// Mean of the direct gender bias (positive = male).
    pub gender_mean: f32,
    /// Std-dev of the per-attribute gender-bias noise.
    pub gender_sigma: f32,
    /// Mean of the age lean (positive = old; mapped onto the age-bias
    /// vector as `lean * bucket.signal()`).
    pub age_mean: f32,
    /// Std-dev of the per-attribute age-lean noise.
    pub age_sigma: f32,
    /// Probability that an attribute gets an extra heavy-tail demographic
    /// bias (models the "Interested in Marie Claire"-style outliers).
    pub heavy_tail_prob: f64,
    /// Magnitude of the heavy-tail bias.
    pub heavy_tail_scale: f32,
    /// Popularity is log-uniform in this range.
    pub popularity_range: (f64, f64),
    /// Std-dev of loadings on the neutral topic axes.
    pub topic_sigma: f32,
}

impl SkewProfile {
    /// A neutral default profile.
    pub fn neutral() -> Self {
        SkewProfile {
            gender_mean: 0.0,
            gender_sigma: 0.28,
            age_mean: 0.0,
            age_sigma: 0.26,
            heavy_tail_prob: 0.05,
            heavy_tail_scale: 0.7,
            popularity_range: (0.004, 0.25),
            topic_sigma: 0.6,
        }
    }

    /// Shifts the mean gender lean (positive = male).
    pub fn lean_male(mut self, shift: f32) -> Self {
        self.gender_mean += shift;
        self
    }

    /// Shifts the mean age lean (positive = old).
    pub fn lean_old(mut self, shift: f32) -> Self {
        self.age_mean += shift;
        self
    }
}

/// Recipe for one catalog category.
#[derive(Clone, Debug)]
pub struct CategorySpec {
    /// Display name ("Interests", "Job Functions", …).
    pub name: &'static str,
    /// Name-pool domain (see the crate-private `names` module).
    pub domain: &'static str,
    /// Feature family, for platforms that restrict same-feature ANDs.
    pub feature: FeatureId,
    /// Number of attributes to generate.
    pub count: u32,
    /// Demographic skew profile.
    pub skew: SkewProfile,
}

/// One catalog entry.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// Platform-local id (dense, equal to the entry's index).
    pub id: AttributeId,
    /// Human-readable name, `"Category — Phrase"`.
    pub name: String,
    /// Category display name.
    pub category: &'static str,
    /// Feature family.
    pub feature: FeatureId,
    /// Generative audience model.
    pub model: AttributeModel,
}

/// A platform's attribute catalog.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// Generates a catalog from category recipes.
    ///
    /// Deterministic in `(seed, specs)`. Attribute ids are dense in
    /// generation order, so a category's entries are contiguous.
    pub fn generate(seed: u64, specs: &[CategorySpec]) -> Catalog {
        use adcomp_population::hash_api::{normal, uniform};

        let mut entries = Vec::new();
        for (cat_idx, spec) in specs.iter().enumerate() {
            let names = pool(spec.domain);
            assert!(
                (spec.count as usize) <= names.capacity(),
                "category {} wants {} names but the {} pool holds {}",
                spec.name,
                spec.count,
                spec.domain,
                names.capacity()
            );
            let cat_seed = seed ^ ((cat_idx as u64 + 1) << 32);
            for i in 0..spec.count {
                let id = AttributeId(entries.len() as u32);
                let s = spec.skew;
                let a = i as u64;

                // Popularity: log-uniform.
                let (lo, hi) = s.popularity_range;
                let u = uniform(cat_seed, a, 1);
                let popularity = (lo.ln() + u * (hi.ln() - lo.ln())).exp();

                // Direct demographic biases.
                let mut gender_bias = s.gender_mean + s.gender_sigma * normal(cat_seed, a, 2);
                let mut age_lean = s.age_mean + s.age_sigma * normal(cat_seed, a, 3);
                if uniform(cat_seed, a, 4) < s.heavy_tail_prob {
                    // Heavy tail hits gender or age, signed.
                    let sign = if uniform(cat_seed, a, 5) < 0.5 {
                        -1.0
                    } else {
                        1.0
                    };
                    if uniform(cat_seed, a, 6) < 0.5 {
                        gender_bias += sign * s.heavy_tail_scale;
                    } else {
                        age_lean += sign * s.heavy_tail_scale;
                    }
                }

                // Latent loadings: small on the demographic axes (0, 1) so
                // facially-neutral attributes still correlate, larger on
                // 1–3 random topic axes.
                let mut loadings = [0f32; LATENT_DIMS];
                loadings[0] = 0.15 * normal(cat_seed, a, 7);
                loadings[1] = 0.15 * normal(cat_seed, a, 8);
                let n_topics = 1 + (uniform(cat_seed, a, 9) * 3.0) as usize;
                for t in 0..n_topics {
                    let axis = 2
                        + ((uniform(cat_seed, a, 10 + t as u64) * (LATENT_DIMS - 2) as f64)
                            as usize)
                            .min(LATENT_DIMS - 3);
                    loadings[axis] += s.topic_sigma * normal(cat_seed, a, 20 + t as u64);
                }

                let age_biases = [
                    age_lean * adcomp_population::AgeBucket::A18_24.signal(),
                    age_lean * adcomp_population::AgeBucket::A25_34.signal(),
                    age_lean * adcomp_population::AgeBucket::A35_54.signal(),
                    age_lean * adcomp_population::AgeBucket::A55Plus.signal(),
                ];

                let model = AttributeModel::new(cat_seed.wrapping_add(a))
                    .popularity(popularity)
                    .loadings(loadings)
                    .gender_bias(gender_bias)
                    .age_biases(age_biases);

                entries.push(CatalogEntry {
                    id,
                    name: format!("{} — {}", spec.name, names.phrase(i as usize)),
                    category: spec.name,
                    feature: spec.feature,
                    model,
                });
            }
        }
        Catalog { entries }
    }

    /// Builds a catalog from explicit entries (ids are reassigned densely).
    /// Used to derive the restricted interface's sanitized subset.
    pub fn from_entries(mut entries: Vec<CatalogEntry>) -> Catalog {
        for (i, e) in entries.iter_mut().enumerate() {
            e.id = AttributeId(i as u32);
        }
        Catalog { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry lookup.
    pub fn get(&self, id: AttributeId) -> Option<&CatalogEntry> {
        self.entries.get(id.0 as usize)
    }

    /// All entries in id order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// All attribute ids.
    pub fn ids(&self) -> impl Iterator<Item = AttributeId> + '_ {
        (0..self.entries.len() as u32).map(AttributeId)
    }

    /// A *sanitization score*: how demographically loaded an entry's model
    /// is on paper-visible axes. The restricted interface keeps the
    /// lowest-scoring entries, mirroring Facebook removing the most
    /// obviously skewed options after the settlement.
    pub fn sanitization_score(entry: &CatalogEntry) -> f32 {
        let m = &entry.model;
        let age_mag = m.age_biases.iter().map(|b| b.abs()).fold(0f32, f32::max);
        m.gender_bias.abs() + age_mag + 0.5 * (m.loadings[0].abs() + m.loadings[1].abs())
    }

    /// Derives the sanitized subset of `self` with the `keep` least
    /// demographically loaded entries (the restricted-interface catalog).
    /// Also returns, for each kept entry, its id in the *parent* catalog,
    /// so audits can translate restricted specs onto the full interface
    /// (the paper measures restricted targetings' demographics through
    /// Facebook's normal interface, which still exposes age/gender).
    pub fn sanitized(&self, keep: usize) -> (Catalog, Vec<AttributeId>) {
        assert!(
            keep <= self.entries.len(),
            "cannot keep more entries than exist"
        );
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            Catalog::sanitization_score(&self.entries[a])
                .partial_cmp(&Catalog::sanitization_score(&self.entries[b]))
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        let mut kept: Vec<usize> = order.into_iter().take(keep).collect();
        kept.sort_unstable(); // preserve original ordering for readability
        let parents: Vec<AttributeId> = kept.iter().map(|&i| AttributeId(i as u32)).collect();
        let entries: Vec<CatalogEntry> = kept.iter().map(|&i| self.entries[i].clone()).collect();
        (Catalog::from_entries(entries), parents)
    }
}

impl CatalogView for Catalog {
    fn exists(&self, id: AttributeId) -> bool {
        (id.0 as usize) < self.entries.len()
    }
    fn feature_of(&self, id: AttributeId) -> Option<FeatureId> {
        self.get(id).map(|e| e.feature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<CategorySpec> {
        vec![
            CategorySpec {
                name: "Games",
                domain: "games",
                feature: FeatureId(0),
                count: 30,
                skew: SkewProfile::neutral().lean_male(0.8),
            },
            CategorySpec {
                name: "Beauty",
                domain: "beauty",
                feature: FeatureId(0),
                count: 25,
                skew: SkewProfile::neutral().lean_male(-0.8),
            },
            CategorySpec {
                name: "Topics",
                domain: "media",
                feature: FeatureId(1),
                count: 40,
                skew: SkewProfile::neutral(),
            },
        ]
    }

    #[test]
    fn generation_is_deterministic_and_dense() {
        let a = Catalog::generate(7, &specs());
        let b = Catalog::generate(7, &specs());
        assert_eq!(a.len(), 95);
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.name, y.name);
            assert_eq!(x.model, y.model);
        }
        for (i, e) in a.entries().iter().enumerate() {
            assert_eq!(e.id.0 as usize, i);
        }
    }

    #[test]
    fn names_unique_and_prefixed() {
        let c = Catalog::generate(7, &specs());
        let mut seen = std::collections::HashSet::new();
        for e in c.entries() {
            assert!(seen.insert(e.name.clone()), "duplicate name {}", e.name);
            assert!(e.name.starts_with(e.category));
            assert!(e.name.contains(" — "));
        }
    }

    #[test]
    fn category_lean_shows_in_mean_bias() {
        let c = Catalog::generate(7, &specs());
        let mean = |cat: &str| {
            let biases: Vec<f32> = c
                .entries()
                .iter()
                .filter(|e| e.category == cat)
                .map(|e| e.model.gender_bias)
                .collect();
            biases.iter().sum::<f32>() / biases.len() as f32
        };
        assert!(mean("Games") > 0.3, "games should lean male");
        assert!(mean("Beauty") < -0.3, "beauty should lean female");
    }

    #[test]
    fn catalog_view_impl() {
        let c = Catalog::generate(7, &specs());
        assert!(c.exists(AttributeId(0)));
        assert!(!c.exists(AttributeId(95)));
        assert_eq!(c.feature_of(AttributeId(0)), Some(FeatureId(0)));
        assert_eq!(c.feature_of(AttributeId(94)), Some(FeatureId(1)));
        assert_eq!(c.feature_of(AttributeId(200)), None);
    }

    #[test]
    fn sanitized_keeps_least_skewed_and_maps_parents() {
        let c = Catalog::generate(7, &specs());
        let (sub, parents) = c.sanitized(40);
        assert_eq!(sub.len(), 40);
        assert_eq!(parents.len(), 40);
        // Parent mapping points at entries with identical models.
        for (e, p) in sub.entries().iter().zip(&parents) {
            assert_eq!(e.model, c.get(*p).unwrap().model);
            assert_eq!(e.name, c.get(*p).unwrap().name);
        }
        // Mean |gender bias| of kept entries is below the full catalog's.
        let mean_abs = |cat: &Catalog| {
            cat.entries()
                .iter()
                .map(|e| e.model.gender_bias.abs())
                .sum::<f32>()
                / cat.len() as f32
        };
        assert!(mean_abs(&sub) < mean_abs(&c), "sanitized must be milder");
        // Dense re-ids.
        for (i, e) in sub.entries().iter().enumerate() {
            assert_eq!(e.id.0 as usize, i);
        }
    }

    #[test]
    #[should_panic(expected = "cannot keep more")]
    fn sanitized_rejects_oversize() {
        let c = Catalog::generate(7, &specs());
        let _ = c.sanitized(1000);
    }

    #[test]
    fn popularity_within_configured_range() {
        let c = Catalog::generate(9, &specs());
        for e in c.entries() {
            // Recover popularity from the intercept: σ(bias).
            let p = 1.0 / (1.0 + (-e.model.bias as f64).exp());
            assert!(
                (0.003..=0.26).contains(&p),
                "popularity {p} out of range for {}",
                e.name
            );
        }
    }
}
