//! PII-based custom audiences (paper §2.1).
//!
//! All three platforms let an advertiser upload personally identifying
//! information — email addresses, names — which the platform matches
//! against its user base to form a *custom audience* ("Customer Match"
//! on Google, "Custom Audience from a Customer List" on Facebook,
//! "Contact Targeting" on LinkedIn). Activity-based audiences (site
//! visitors collected by a tracking pixel) behave identically once the
//! visitor list exists, so the same machinery models both.
//!
//! The simulation gives every user a deterministic pseudonymous *contact
//! hash* (the stand-in for a normalised, hashed email address). An
//! advertiser's list is a set of hashes; matching finds the users whose
//! hash appears in the list. Real platforms match only a fraction of any
//! list (stale addresses, users without accounts); the simulator models
//! that with a deterministic per-(platform, hash) match failure rate.
//!
//! Custom audiences matter to the discrimination study because they are
//! *seeds*: a biased customer list fed into lookalike expansion
//! (see [`crate::AdPlatform::lookalike`]) reproduces its bias at scale,
//! restricted interface or not.

use adcomp_bitset::Bitset;
use adcomp_population::hash_api;

use crate::interface::AdPlatform;

/// A pseudonymous contact identifier (hashed email stand-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContactHash(pub u64);

/// Result of matching an uploaded list.
#[derive(Clone, Debug)]
pub struct MatchedAudience {
    /// Users whose contact hash matched.
    pub audience: Bitset,
    /// Hashes submitted (after deduplication).
    pub submitted: usize,
    /// Hashes that matched a user account.
    pub matched: usize,
}

impl MatchedAudience {
    /// Fraction of the submitted list that matched.
    pub fn match_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.matched as f64 / self.submitted as f64
        }
    }
}

/// Stream tag separating contact hashes from every other per-user draw.
const CONTACT_STREAM: u64 = 0xC0417AC7;
/// Stream tag for the per-platform match-failure draw.
const MATCH_STREAM: u64 = 0x3A7C4;

/// Fraction of genuinely-present hashes that still fail to match
/// (account without that address, opted out, …). Real-world match rates
/// run 40–80 %; we model the platform-side loss at 25 %.
const MATCH_FAILURE: f64 = 0.25;

impl AdPlatform {
    /// The contact hash of one simulated user — what a *first-party data
    /// owner* would hold for that person. Deterministic per universe.
    pub fn contact_hash(&self, user: u32) -> ContactHash {
        let seed = self.universe().config().seed;
        ContactHash(
            (hash_api::uniform(seed ^ CONTACT_STREAM, user as u64, 0) * u64::MAX as f64) as u64 | 1, // never zero, so 0 can be used as a sentinel in tests
        )
    }

    /// Matches an uploaded contact list into a custom audience.
    ///
    /// Deterministic: the same list always matches the same users on the
    /// same platform. Unknown hashes and a per-hash simulated match
    /// failure reduce the match rate, as on the real platforms.
    pub fn match_customer_list(&self, hashes: &[ContactHash]) -> MatchedAudience {
        let mut submitted: Vec<ContactHash> = hashes.to_vec();
        submitted.sort_unstable();
        submitted.dedup();

        // Index the universe's hashes once per call. n is small enough
        // (10⁵–10⁶) that a rebuild beats holding a permanent index alive.
        let n = self.universe().n_users();
        let mut index: std::collections::HashMap<u64, u32> =
            std::collections::HashMap::with_capacity(n as usize);
        for user in 0..n {
            index.insert(self.contact_hash(user).0, user);
        }

        let seed = self.universe().config().seed;
        let mut members: Vec<u32> = Vec::new();
        for h in &submitted {
            let Some(&user) = index.get(&h.0) else {
                continue;
            };
            // Platform-side match failure, deterministic per (seed, hash).
            if hash_api::uniform(seed ^ MATCH_STREAM, h.0, 1) < MATCH_FAILURE {
                continue;
            }
            members.push(user);
        }
        members.sort_unstable();
        let matched = members.len();
        MatchedAudience {
            audience: Bitset::from_sorted_iter(members),
            submitted: submitted.len(),
            matched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{SimScale, Simulation};
    use adcomp_population::Gender;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(49, SimScale::Test))
    }

    #[test]
    fn contact_hashes_are_distinct_and_stable() {
        let fb = &sim().facebook;
        let mut seen = std::collections::HashSet::new();
        for user in 0..5_000u32 {
            let h = fb.contact_hash(user);
            assert!(seen.insert(h.0), "duplicate hash for user {user}");
            assert_eq!(h, fb.contact_hash(user), "hash must be stable");
            assert_ne!(h.0, 0);
        }
    }

    #[test]
    fn matching_finds_only_submitted_users() {
        let fb = &sim().facebook;
        let users: Vec<u32> = (0..2_000).step_by(3).collect();
        let hashes: Vec<ContactHash> = users.iter().map(|&u| fb.contact_hash(u)).collect();
        let result = fb.match_customer_list(&hashes);
        assert_eq!(result.submitted, hashes.len());
        // Every matched user was in the uploaded list.
        for user in result.audience.iter() {
            assert!(users.contains(&user));
        }
        // Match rate reflects the simulated platform-side loss.
        let rate = result.match_rate();
        assert!(
            (0.6..=0.9).contains(&rate),
            "match rate {rate} should be ~{}",
            1.0 - MATCH_FAILURE
        );
        assert_eq!(result.matched as u64, result.audience.len());
    }

    #[test]
    fn unknown_hashes_do_not_match() {
        let fb = &sim().facebook;
        let bogus: Vec<ContactHash> = (0..500u64).map(|i| ContactHash(i * 2 + 2)).collect();
        let result = fb.match_customer_list(&bogus);
        assert_eq!(result.matched, 0);
        assert!(result.audience.is_empty());
        assert_eq!(result.match_rate(), 0.0);
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let fb = &sim().facebook;
        let h = fb.contact_hash(7);
        let result = fb.match_customer_list(&[h, h, h]);
        assert_eq!(result.submitted, 1);
        assert!(result.matched <= 1);
    }

    #[test]
    fn matching_is_deterministic() {
        let fb = &sim().facebook;
        let hashes: Vec<ContactHash> = (0..1_000).map(|u| fb.contact_hash(u)).collect();
        let a = fb.match_customer_list(&hashes);
        let b = fb.match_customer_list(&hashes);
        assert_eq!(a.audience, b.audience);
        assert_eq!(a.matched, b.matched);
    }

    #[test]
    fn biased_customer_list_seeds_biased_lookalike() {
        // End-to-end §2.1 → §2.2 story: upload a male-only customer list,
        // match it, expand it — the expansion inherits the bias.
        let fb = &sim().facebook;
        let u = fb.universe();
        let male_users: Vec<u32> = u.gender_audience(Gender::Male).iter().take(2_000).collect();
        let hashes: Vec<ContactHash> = male_users
            .iter()
            .map(|&user| fb.contact_hash(user))
            .collect();
        let matched = fb.match_customer_list(&hashes);
        assert!(matched.audience.len() >= super::super::lookalike::MIN_SEED);

        let lal = fb
            .lookalike(
                &matched.audience,
                &crate::lookalike::LookalikeConfig::default(),
            )
            .unwrap();
        let males = u.gender_audience(Gender::Male);
        let male_frac = lal.intersection_len(males) as f64 / lal.len() as f64;
        let base_frac = males.len() as f64 / u.n_users() as f64;
        assert!(
            male_frac > base_frac + 0.05,
            "lookalike of a male list must be male-heavy ({male_frac:.2} vs {base_frac:.2})"
        );
    }
}
