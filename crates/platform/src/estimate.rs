//! Audience-size estimate rounding, reproducing each platform's ladder.
//!
//! The paper characterises the granularity of the size estimates the
//! targeting UIs return (§3, "Understanding size estimates"):
//!
//! * **Facebook** — two significant digits, minimum returned value 1 000;
//! * **Google** — one significant digit up to 100 000, two significant
//!   digits thereafter, minimum 40, `0` below the minimum;
//! * **LinkedIn** — two significant digits starting at 300, `0` below.
//!
//! The audit pipeline computes all of its metrics from these *rounded*
//! values only, exactly as the paper had to; the granularity probe
//! (`adcomp-core`) re-infers these ladders black-box as a self-check.

use serde::{Deserialize, Serialize};

/// What a platform's estimate counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimateKind {
    /// Count of eligible users (Facebook, LinkedIn).
    Users,
    /// Theoretical impressions (Google Display); depends on the campaign's
    /// frequency-capping setting.
    Impressions,
}

/// A rounded audience-size estimate as shown to advertisers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SizeEstimate {
    /// Rounded value at platform scale.
    pub value: u64,
    /// Users or impressions.
    pub kind: EstimateKind,
}

/// A platform's rounding ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundingRule {
    /// Fixed number of significant digits with a floor: values below
    /// `minimum` are *clamped up* to it (Facebook's behaviour — the UI
    /// never shows less than 1 000 for a non-empty audience).
    SignificantClamped {
        /// Number of significant digits.
        digits: u32,
        /// Smallest value ever returned for a non-empty audience.
        minimum: u64,
    },
    /// Significant digits that switch at a threshold, with `0` returned
    /// below a minimum (Google: 1 digit below `switch_at`, 2 at or above;
    /// LinkedIn is expressed with equal digit counts).
    SignificantTiered {
        /// Digits below `switch_at`.
        digits_low: u32,
        /// Digits at or above `switch_at`.
        digits_high: u32,
        /// Tier boundary.
        switch_at: u64,
        /// Values below this round to 0.
        minimum: u64,
    },
    /// No rounding (ground-truth mode for ablations).
    Exact,
}

impl RoundingRule {
    /// Facebook's ladder.
    pub fn facebook() -> Self {
        RoundingRule::SignificantClamped {
            digits: 2,
            minimum: 1_000,
        }
    }

    /// Google's ladder.
    pub fn google() -> Self {
        RoundingRule::SignificantTiered {
            digits_low: 1,
            digits_high: 2,
            switch_at: 100_000,
            minimum: 40,
        }
    }

    /// LinkedIn's ladder.
    pub fn linkedin() -> Self {
        RoundingRule::SignificantTiered {
            digits_low: 2,
            digits_high: 2,
            switch_at: 300,
            minimum: 300,
        }
    }

    /// Rounds an exact platform-scale value.
    pub fn apply(&self, exact: u64) -> u64 {
        match *self {
            RoundingRule::Exact => exact,
            RoundingRule::SignificantClamped { digits, minimum } => {
                if exact == 0 {
                    0
                } else if exact < minimum {
                    minimum
                } else {
                    round_significant(exact, digits)
                }
            }
            RoundingRule::SignificantTiered {
                digits_low,
                digits_high,
                switch_at,
                minimum,
            } => {
                if exact < minimum {
                    0
                } else {
                    let digits = if exact < switch_at {
                        digits_low
                    } else {
                        digits_high
                    };
                    round_significant(exact, digits)
                }
            }
        }
    }

    /// The interval of exact values that would round to `rounded`
    /// (inclusive bounds), used by the rounding-robustness analysis: the
    /// paper confirms skew conclusions hold "even allowing for the
    /// representation ratios to take their least skewed values (subject to
    /// the rounding ranges)".
    ///
    /// Computed by binary search over [`RoundingRule::apply`], which is
    /// monotone, so the result is exact for every ladder — including the
    /// asymmetric preimages at decade and tier boundaries (e.g. Facebook's
    /// 10 000 000 collects [9 950 000, 10 499 999]).
    ///
    /// Returns `None` for values this rule can never return.
    pub fn inverse_interval(&self, rounded: u64) -> Option<(u64, u64)> {
        // A value is producible iff it is a fixed point of `apply`…
        if self.apply(rounded) != rounded {
            // …except the clamped minimum, whose bucket also swallows the
            // values below it (and 0 is always producible as "empty").
            if let RoundingRule::SignificantClamped { minimum, .. } = *self {
                if rounded == minimum {
                    // handled below
                } else {
                    return None;
                }
            } else {
                return None;
            }
        }
        // Monotone predicate boundaries via binary search.
        let first_geq = |target: u64| -> u64 {
            let (mut lo, mut hi) = (0u64, target.saturating_mul(2).max(1024));
            while self.apply(hi) < target {
                hi = hi.saturating_mul(2).max(hi + 1);
            }
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if self.apply(mid) >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        };
        let lo = first_geq(rounded);
        if self.apply(lo) != rounded {
            return None;
        }
        let hi = match rounded.checked_add(1) {
            Some(next) => first_geq(next).saturating_sub(1),
            None => u64::MAX,
        };
        Some((lo, hi))
    }
}

/// Rounds to `digits` significant (decimal) digits, half away from zero.
pub fn round_significant(value: u64, digits: u32) -> u64 {
    assert!(digits > 0, "need at least one significant digit");
    if value == 0 {
        return 0;
    }
    let magnitude = (value as f64).log10().floor() as u32;
    if magnitude < digits {
        return value;
    }
    let scale = 10u64.pow(magnitude + 1 - digits);
    let half = scale / 2;
    (value + half) / scale * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_significant_basics() {
        assert_eq!(round_significant(0, 2), 0);
        assert_eq!(round_significant(7, 2), 7);
        assert_eq!(round_significant(99, 2), 99);
        assert_eq!(round_significant(123, 2), 120);
        assert_eq!(round_significant(125, 2), 130); // half away from zero
        assert_eq!(round_significant(999, 2), 1000);
        assert_eq!(round_significant(123_456, 1), 100_000);
        assert_eq!(round_significant(987_654, 2), 990_000);
        assert_eq!(round_significant(123_456, 3), 123_000);
    }

    #[test]
    fn facebook_ladder() {
        let r = RoundingRule::facebook();
        assert_eq!(r.apply(0), 0);
        assert_eq!(r.apply(1), 1_000);
        assert_eq!(r.apply(999), 1_000);
        assert_eq!(r.apply(1_000), 1_000);
        assert_eq!(r.apply(1_449), 1_400);
        assert_eq!(r.apply(1_450), 1_500);
        assert_eq!(r.apply(5_200_000), 5_200_000);
        assert_eq!(r.apply(5_234_567), 5_200_000);
    }

    #[test]
    fn google_ladder() {
        let r = RoundingRule::google();
        assert_eq!(r.apply(0), 0);
        assert_eq!(r.apply(39), 0);
        assert_eq!(r.apply(40), 40);
        assert_eq!(r.apply(44), 40);
        assert_eq!(r.apply(45), 50);
        assert_eq!(r.apply(94_999), 90_000);
        assert_eq!(r.apply(95_000), 100_000); // 1 digit below 100k rounds up
        assert_eq!(r.apply(123_456), 120_000); // 2 digits at/above 100k
        assert_eq!(r.apply(1_700_000), 1_700_000);
    }

    #[test]
    fn linkedin_ladder() {
        let r = RoundingRule::linkedin();
        assert_eq!(r.apply(299), 0);
        assert_eq!(r.apply(300), 300);
        assert_eq!(r.apply(304), 300);
        assert_eq!(r.apply(305), 310);
        assert_eq!(r.apply(46_123), 46_000);
    }

    #[test]
    fn exact_rule_is_identity() {
        let r = RoundingRule::Exact;
        for v in [0u64, 1, 999, 123_456_789] {
            assert_eq!(r.apply(v), v);
            assert_eq!(r.inverse_interval(v), Some((v, v)));
        }
    }

    #[test]
    fn inverse_interval_contains_exactly_the_preimage() {
        // Exhaustive check over a range for each ladder.
        for rule in [
            RoundingRule::facebook(),
            RoundingRule::google(),
            RoundingRule::linkedin(),
        ] {
            for exact in 0u64..5_000 {
                let rounded = rule.apply(exact);
                let (lo, hi) = rule
                    .inverse_interval(rounded)
                    .unwrap_or_else(|| panic!("{rule:?} produced unmapped {rounded}"));
                assert!(
                    (lo..=hi).contains(&exact),
                    "{rule:?}: {exact} -> {rounded}, interval [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn inverse_interval_rejects_impossible_values() {
        let fb = RoundingRule::facebook();
        assert_eq!(fb.inverse_interval(1_234), None); // 3 sig digits
        assert_eq!(fb.inverse_interval(500), None); // below minimum
        let go = RoundingRule::google();
        assert_eq!(go.inverse_interval(41), None); // 2 sig digits below switch
        assert_eq!(go.inverse_interval(125_000), None); // 3 sig digits above
    }

    #[test]
    fn interval_tightness_spot_checks() {
        let fb = RoundingRule::facebook();
        // 1_400 at two digits: scale 100, half 50 -> [1350, 1449].
        assert_eq!(fb.inverse_interval(1_400), Some((1_350, 1_449)));
        // Minimum bucket swallows everything below.
        assert_eq!(fb.inverse_interval(1_000), Some((1, 1_049)));
        let go = RoundingRule::google();
        assert_eq!(go.inverse_interval(0), Some((0, 39)));
    }

    #[test]
    #[should_panic(expected = "at least one significant digit")]
    fn zero_digits_rejected() {
        let _ = round_significant(5, 0);
    }
}
