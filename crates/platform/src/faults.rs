//! Deterministic fault injection for resilience testing.
//!
//! Live audits face throttling, transient API failures, dropped
//! connections, and even drifting estimates. To test the audit
//! pipeline's resilience *deterministically*, this module models all of
//! them as data:
//!
//! * [`FaultPlan`] — a seedable schedule mapping a call index to an
//!   optional [`FaultKind`]; identical plans replay identical fault
//!   sequences, so a "flaky" run is exactly reproducible;
//! * [`FaultyPlatform`] — wraps an [`AdPlatform`] and applies the
//!   plan's *platform-level* faults (transient errors, rate-limit
//!   rejections, latency, estimate noise/drift) to each estimate call,
//!   while implementing the same [`PlatformApi`] surface;
//! * [`FaultKind::Drop`] — *transport-level* faults the platform cannot
//!   express; the wire server consults the plan for them (indexed by
//!   request count) and kills connections, optionally mid-frame.
//!
//! Platform-level schedules are evaluated against the **estimate-call
//! index**; drop schedules against the **transport request index**.
//! Keeping the two channels separate keeps both deterministic even when
//! retries change how many transport requests one estimate needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adcomp_obs::metrics::{Counter, Registry};
use adcomp_targeting::TargetingSpec;
use parking_lot::Mutex;

use crate::api::PlatformApi;
use crate::catalog::Catalog;
use crate::estimate::SizeEstimate;
use crate::interface::{AdPlatform, EstimateRequest, PlatformConfig, PlatformError};
use crate::ratelimit::QueryStats;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Fail the call with a transient (retryable) platform error.
    Transient,
    /// Reject the call as rate-limited, advertising a retry delay.
    RateLimit {
        /// The advertised back-off.
        retry_after: Duration,
    },
    /// Delay the call, then serve it normally.
    Latency(Duration),
    /// Serve a perturbed estimate: the true value scaled by a
    /// deterministic factor in `[1 - amplitude, 1 + amplitude]`, then
    /// re-rounded through the platform ladder. Models obfuscated or
    /// noisy estimate endpoints (what the consistency probe exists to
    /// catch).
    Noise {
        /// Maximum relative perturbation (e.g. `0.2` = ±20 %).
        amplitude: f64,
    },
    /// Serve an estimate inflated by `1 + rate · call_index` — a slow
    /// monotone drift, as when a platform's audience grows mid-audit.
    Drift {
        /// Relative growth per call.
        rate: f64,
    },
    /// Kill the connection instead of answering. Ignored by
    /// [`FaultyPlatform`] (a platform cannot drop a socket); honoured by
    /// the wire server's fault hook.
    Drop {
        /// Send a torn partial frame before killing, instead of closing
        /// at a frame boundary.
        mid_frame: bool,
    },
}

/// When a fault fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Fires on every index with `index % period == offset`.
    EveryNth {
        /// Cycle length (must be non-zero).
        period: u64,
        /// Position within the cycle.
        offset: u64,
    },
    /// Fires exactly once, at the given index.
    Once {
        /// The index.
        at: u64,
    },
    /// Fires pseudo-randomly with the given probability, derived from a
    /// hash of the plan seed and the index — deterministic per plan.
    Random {
        /// Fire probability in `[0, 1]`.
        probability: f64,
    },
}

/// A scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRule {
    /// What happens.
    pub kind: FaultKind,
    /// When it happens.
    pub schedule: Schedule,
}

/// A deterministic, seedable fault schedule.
///
/// The plan is pure data: [`FaultPlan::action_at`] is a function of
/// `(seed, rules, index)` only, so two components holding clones of one
/// plan (a [`FaultyPlatform`] and a wire-server drop hook) see identical
/// schedules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = (a ^ b.rotate_left(32)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style). Earlier rules win when several match
    /// one index.
    pub fn with(mut self, kind: FaultKind, schedule: Schedule) -> Self {
        if let Schedule::EveryNth { period, .. } = schedule {
            assert!(period > 0, "period must be non-zero");
        }
        if let Schedule::Random { probability } = schedule {
            assert!(
                (0.0..=1.0).contains(&probability),
                "probability out of [0,1]"
            );
        }
        self.rules.push(FaultRule { kind, schedule });
        self
    }

    /// The fault (if any) scheduled for call `index`.
    pub fn action_at(&self, index: u64) -> Option<FaultKind> {
        self.rules
            .iter()
            .find(|r| self.fires(r.schedule, index))
            .map(|r| r.kind)
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    fn fires(&self, schedule: Schedule, index: u64) -> bool {
        match schedule {
            Schedule::EveryNth { period, offset } => index % period == offset % period,
            Schedule::Once { at } => index == at,
            Schedule::Random { probability } => {
                let unit = (mix(self.seed, index) >> 11) as f64 / (1u64 << 53) as f64;
                unit < probability
            }
        }
    }

    /// Deterministic perturbation factor in `[1 - amplitude,
    /// 1 + amplitude]` for call `index`.
    pub fn noise_factor(&self, index: u64, amplitude: f64) -> f64 {
        let unit = (mix(self.seed ^ 0x4E01, index) >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + amplitude * (2.0 * unit - 1.0)
    }
}

/// Counters of faults actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls failed with a transient error.
    pub transient: u64,
    /// Calls rejected as rate-limited.
    pub rate_limited: u64,
    /// Calls delayed.
    pub delayed: u64,
    /// Calls served with a perturbed (noise or drift) estimate.
    pub perturbed: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.transient + self.rate_limited + self.delayed + self.perturbed
    }
}

/// An [`AdPlatform`] behind a deterministic fault injector.
///
/// Every estimate call consumes one index of the plan; validation,
/// catalog browsing, and stats pass through unfaulted (matching real
/// platforms, where the cheap metadata endpoints are far more reliable
/// than the estimate endpoint).
pub struct FaultyPlatform {
    inner: Arc<AdPlatform>,
    plan: FaultPlan,
    calls: AtomicU64,
    injected: Mutex<FaultStats>,
    /// `adcomp_faults_injected_total{kind}` handles, one per platform-level
    /// fault kind, resolved at construction.
    injected_total: [Arc<Counter>; 5],
}

/// Index into [`FaultyPlatform::injected_total`] per fault kind.
const FAULT_KINDS: [&str; 5] = ["transient", "rate_limit", "latency", "noise", "drift"];

impl FaultyPlatform {
    /// Wraps `inner` behind `plan`.
    pub fn new(inner: Arc<AdPlatform>, plan: FaultPlan) -> Self {
        let injected_total = FAULT_KINDS.map(|kind| {
            Registry::global().counter_with("adcomp_faults_injected_total", &[("kind", kind)])
        });
        FaultyPlatform {
            inner,
            plan,
            calls: AtomicU64::new(0),
            injected: Mutex::new(FaultStats::default()),
            injected_total,
        }
    }

    /// Estimate calls seen so far (= the next call's plan index).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Counters of faults injected so far.
    pub fn injected(&self) -> FaultStats {
        *self.injected.lock()
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &Arc<AdPlatform> {
        &self.inner
    }

    /// The plan (e.g. to build a matching wire-server drop hook).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl PlatformApi for FaultyPlatform {
    fn config(&self) -> &PlatformConfig {
        self.inner.config()
    }

    fn catalog(&self) -> &Catalog {
        self.inner.catalog()
    }

    fn reach_estimate(&self, request: &EstimateRequest) -> Result<SizeEstimate, PlatformError> {
        let index = self.calls.fetch_add(1, Ordering::SeqCst);
        match self.plan.action_at(index) {
            Some(FaultKind::Transient) => {
                self.injected.lock().transient += 1;
                self.injected_total[0].inc();
                Err(PlatformError::Transient(format!(
                    "injected transient fault at call #{index}"
                )))
            }
            Some(FaultKind::RateLimit { retry_after }) => {
                self.injected.lock().rate_limited += 1;
                self.injected_total[1].inc();
                self.inner.note_rate_limited();
                Err(PlatformError::RateLimited { retry_after })
            }
            Some(FaultKind::Latency(delay)) => {
                self.injected.lock().delayed += 1;
                self.injected_total[2].inc();
                std::thread::sleep(delay);
                self.inner.reach_estimate(request)
            }
            Some(FaultKind::Noise { amplitude }) => {
                let est = self.inner.reach_estimate(request)?;
                self.injected.lock().perturbed += 1;
                self.injected_total[3].inc();
                let perturbed = est.value as f64 * self.plan.noise_factor(index, amplitude);
                Ok(SizeEstimate {
                    value: self
                        .config()
                        .rounding
                        .apply(perturbed.round().max(0.0) as u64),
                    kind: est.kind,
                })
            }
            Some(FaultKind::Drift { rate }) => {
                let est = self.inner.reach_estimate(request)?;
                self.injected.lock().perturbed += 1;
                self.injected_total[4].inc();
                let drifted = est.value as f64 * (1.0 + rate * index as f64);
                Ok(SizeEstimate {
                    value: self
                        .config()
                        .rounding
                        .apply(drifted.round().max(0.0) as u64),
                    kind: est.kind,
                })
            }
            // Transport faults are the serving layer's business.
            Some(FaultKind::Drop { .. }) | None => self.inner.reach_estimate(request),
        }
    }

    fn check(&self, spec: &TargetingSpec) -> Result<(), PlatformError> {
        self.inner.check(spec)
    }

    fn stats(&self) -> QueryStats {
        self.inner.stats()
    }

    fn note_rate_limited(&self) {
        self.inner.note_rate_limited()
    }
}

impl std::fmt::Debug for FaultyPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyPlatform")
            .field("inner", &self.inner)
            .field("rules", &self.plan.rules.len())
            .field("calls", &self.calls())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimScale, Simulation};
    use adcomp_targeting::TargetingSpec;
    use std::sync::OnceLock;

    fn sim() -> &'static Simulation {
        static SIM: OnceLock<Simulation> = OnceLock::new();
        SIM.get_or_init(|| Simulation::build(92, SimScale::Test))
    }

    fn request() -> EstimateRequest<'static> {
        EstimateRequest::new(
            TargetingSpec::everyone(),
            sim().linkedin.config().default_objective,
        )
    }

    #[test]
    fn plans_are_deterministic() {
        let a = FaultPlan::new(9)
            .with(
                FaultKind::Transient,
                Schedule::EveryNth {
                    period: 3,
                    offset: 1,
                },
            )
            .with(FaultKind::Transient, Schedule::Random { probability: 0.25 });
        let b = a.clone();
        for i in 0..200 {
            assert_eq!(a.action_at(i), b.action_at(i));
        }
        // Different seeds give different random schedules.
        let c =
            FaultPlan::new(10).with(FaultKind::Transient, Schedule::Random { probability: 0.25 });
        let a_only_random =
            FaultPlan::new(9).with(FaultKind::Transient, Schedule::Random { probability: 0.25 });
        assert!(
            (0..200).any(|i| a_only_random.action_at(i) != c.action_at(i)),
            "seeds must matter"
        );
    }

    #[test]
    fn schedules_fire_where_declared() {
        let once = FaultKind::Latency(Duration::from_millis(1));
        let plan = FaultPlan::new(0).with(once, Schedule::Once { at: 5 }).with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 4,
                offset: 2,
            },
        );
        assert_eq!(plan.action_at(5), Some(once));
        assert_eq!(plan.action_at(2), Some(FaultKind::Transient));
        assert_eq!(plan.action_at(6), Some(FaultKind::Transient));
        assert_eq!(plan.action_at(0), None);
        assert_eq!(plan.action_at(1), None);
    }

    #[test]
    fn transient_and_rate_limit_faults_fail_calls() {
        let plan = FaultPlan::new(1)
            .with(FaultKind::Transient, Schedule::Once { at: 0 })
            .with(
                FaultKind::RateLimit {
                    retry_after: Duration::from_millis(10),
                },
                Schedule::Once { at: 1 },
            );
        let p = FaultyPlatform::new(sim().linkedin.clone(), plan);
        assert!(matches!(
            p.reach_estimate(&request()),
            Err(PlatformError::Transient(_))
        ));
        assert!(matches!(
            p.reach_estimate(&request()),
            Err(PlatformError::RateLimited { retry_after }) if retry_after == Duration::from_millis(10)
        ));
        // Index 2 has no fault: identical to the unwrapped platform.
        let clean = sim().linkedin.reach_estimate(&request()).unwrap();
        assert_eq!(p.reach_estimate(&request()).unwrap(), clean);
        assert_eq!(
            p.injected(),
            FaultStats {
                transient: 1,
                rate_limited: 1,
                ..Default::default()
            }
        );
        assert_eq!(p.calls(), 3);
    }

    #[test]
    fn noise_perturbs_but_stays_on_the_rounding_ladder() {
        let plan = FaultPlan::new(2).with(
            FaultKind::Noise { amplitude: 0.3 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let p = FaultyPlatform::new(sim().linkedin.clone(), plan.clone());
        let clean = sim().linkedin.reach_estimate(&request()).unwrap().value;
        let mut saw_difference = false;
        for i in 0..10u64 {
            let noisy = p.reach_estimate(&request()).unwrap().value;
            let factor = plan.noise_factor(i, 0.3);
            assert!((0.7..=1.3).contains(&factor));
            // Re-rounded through the platform ladder: consistent with it.
            assert_eq!(noisy, p.config().rounding.apply(noisy), "on-ladder");
            if noisy != clean {
                saw_difference = true;
            }
        }
        assert!(
            saw_difference,
            "±30 % noise must move a large estimate off its value"
        );
        assert_eq!(p.injected().perturbed, 10);
    }

    #[test]
    fn drift_grows_with_call_index() {
        let plan = FaultPlan::new(3).with(
            FaultKind::Drift { rate: 0.5 },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let p = FaultyPlatform::new(sim().linkedin.clone(), plan);
        let v0 = p.reach_estimate(&request()).unwrap().value;
        for _ in 0..8 {
            let _ = p.reach_estimate(&request()).unwrap();
        }
        let v9 = p.reach_estimate(&request()).unwrap().value;
        assert!(
            v9 > v0,
            "50 %/call drift must dominate rounding after 9 calls"
        );
    }

    #[test]
    fn metadata_passes_through_unfaulted() {
        let plan = FaultPlan::new(4).with(
            FaultKind::Transient,
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let p = FaultyPlatform::new(sim().linkedin.clone(), plan);
        assert_eq!(p.label(), "LinkedIn");
        assert_eq!(p.catalog().len(), sim().linkedin.catalog().len());
        assert!(p.check(&TargetingSpec::everyone()).is_ok());
        // But estimates always fault under an every-call plan.
        assert!(p.reach_estimate(&request()).is_err());
    }

    #[test]
    fn drop_faults_are_transparent_at_platform_level() {
        let plan = FaultPlan::new(5).with(
            FaultKind::Drop { mid_frame: true },
            Schedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let p = FaultyPlatform::new(sim().linkedin.clone(), plan);
        let clean = sim().linkedin.reach_estimate(&request()).unwrap();
        assert_eq!(p.reach_estimate(&request()).unwrap(), clean);
        assert_eq!(p.injected().total(), 0);
    }
}
